#include "rs/reed_solomon.h"

#include <algorithm>
#include <array>

#include "gf/gf256.h"
#include "gf/poly.h"
#include "obs/metrics.h"
#include "util/math.h"
#include "util/require.h"

namespace lemons::rs {

std::vector<uint8_t>
Share::toBytes() const
{
    std::vector<uint8_t> out;
    out.reserve(payload.size() + 1);
    out.push_back(index);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::optional<Share>
Share::fromBytes(const std::vector<uint8_t> &bytes)
{
    if (bytes.empty())
        return std::nullopt;
    Share share;
    share.index = bytes[0];
    share.payload.assign(bytes.begin() + 1, bytes.end());
    return share;
}

RsCode::RsCode(size_t k, size_t n) : threshold(k), total(n)
{
    requireArg(k >= 1, "RsCode: k must be at least 1");
    requireArg(n >= k, "RsCode: n must be at least k");
    requireArg(n <= 255, "RsCode: n must be at most 255 over GF(2^8)");
}

size_t
RsCode::shareSize(size_t messageSize) const
{
    if (messageSize == 0)
        return 0;
    return static_cast<size_t>(
        ceilDiv(static_cast<uint64_t>(messageSize),
                static_cast<uint64_t>(threshold)));
}

std::vector<Share>
RsCode::encode(const std::vector<uint8_t> &data) const
{
    LEMONS_OBS_INCREMENT("rs.encode.calls");
    LEMONS_OBS_COUNT("rs.encode.bytes", data.size());
    const size_t chunk = shareSize(data.size());
    std::vector<Share> shares(total);
    for (size_t i = 0; i < total; ++i) {
        shares[i].index = static_cast<uint8_t>(i + 1);
        shares[i].payload.assign(chunk, 0);
    }

    // Systematic part: share i (1-based index i+1 <= k) holds chunk i.
    for (size_t i = 0; i < threshold; ++i) {
        for (size_t j = 0; j < chunk; ++j) {
            const size_t src = i * chunk + j;
            shares[i].payload[j] = src < data.size() ? data[src] : 0;
        }
    }

    // Parity: per byte position interpolate through the k data points
    // and evaluate at the parity indices.
    if (total > threshold) {
        std::vector<gf::Point> points(threshold);
        for (size_t j = 0; j < chunk; ++j) {
            for (size_t i = 0; i < threshold; ++i)
                points[i] = {static_cast<uint8_t>(i + 1),
                             shares[i].payload[j]};
            const gf::Poly p = gf::interpolate(points);
            for (size_t i = threshold; i < total; ++i)
                shares[i].payload[j] = p.eval(static_cast<uint8_t>(i + 1));
        }
    }
    return shares;
}

bool
RsCode::sharesUsable(const std::vector<Share> &shares) const
{
    if (shares.size() < threshold)
        return false;
    std::array<bool, 256> seen{};
    const size_t chunk = shares.front().payload.size();
    for (const Share &share : shares) {
        if (share.index == 0 || share.index > total)
            return false;
        if (seen[share.index])
            return false;
        seen[share.index] = true;
        if (share.payload.size() != chunk)
            return false;
    }
    return true;
}

std::optional<std::vector<uint8_t>>
RsCode::decode(const std::vector<Share> &shares, size_t messageSize) const
{
    LEMONS_OBS_INCREMENT("rs.decode.calls");
    if (messageSize == 0)
        return std::vector<uint8_t>{};
    if (!sharesUsable(shares))
        return std::nullopt;
    if (!verifyConsistent(shares))
        return std::nullopt;

    const size_t chunk = shares.front().payload.size();
    if (chunk != shareSize(messageSize))
        return std::nullopt;

    std::vector<uint8_t> padded(threshold * chunk, 0);
    std::vector<gf::Point> points(threshold);
    for (size_t j = 0; j < chunk; ++j) {
        for (size_t i = 0; i < threshold; ++i)
            points[i] = {shares[i].index, shares[i].payload[j]};
        const gf::Poly p = gf::interpolate(points);
        for (size_t i = 0; i < threshold; ++i)
            padded[i * chunk + j] = p.eval(static_cast<uint8_t>(i + 1));
    }
    padded.resize(messageSize);
    return padded;
}

bool
RsCode::verifyConsistent(const std::vector<Share> &shares) const
{
    if (!sharesUsable(shares))
        return false;
    if (shares.size() == threshold)
        return true; // nothing to cross-check against

    const size_t chunk = shares.front().payload.size();
    std::vector<gf::Point> points(threshold);
    for (size_t j = 0; j < chunk; ++j) {
        for (size_t i = 0; i < threshold; ++i)
            points[i] = {shares[i].index, shares[i].payload[j]};
        const gf::Poly p = gf::interpolate(points);
        for (size_t i = threshold; i < shares.size(); ++i) {
            if (p.eval(shares[i].index) != shares[i].payload[j])
                return false;
        }
    }
    return true;
}

} // namespace lemons::rs
