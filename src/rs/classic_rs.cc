#include "rs/classic_rs.h"

#include <algorithm>

#include "gf/gf256.h"
#include "obs/metrics.h"
#include "util/require.h"

namespace lemons::rs {

namespace {

/**
 * Polynomials here are coefficient vectors, low-order first:
 * p[j] is the coefficient of x^j.
 */
using Poly = std::vector<uint8_t>;

uint8_t
polyEval(const Poly &p, uint8_t x)
{
    uint8_t acc = 0;
    for (auto it = p.rbegin(); it != p.rend(); ++it)
        acc = gf::add(gf::mul(acc, x), *it);
    return acc;
}

Poly
polyMul(const Poly &a, const Poly &b)
{
    if (a.empty() || b.empty())
        return {};
    Poly out(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < b.size(); ++j)
            out[i + j] = gf::add(out[i + j], gf::mul(a[i], b[j]));
    }
    return out;
}

/** Formal derivative over GF(2^m): only odd-power terms survive. */
Poly
polyDerivative(const Poly &p)
{
    Poly out;
    for (size_t j = 1; j < p.size(); j += 2) {
        out.resize(j, 0);
        out[j - 1] = p[j];
    }
    return out;
}

} // namespace

ClassicRsCodec::ClassicRsCodec(size_t n, size_t k) : length(n), dimension(k)
{
    requireArg(k >= 1, "ClassicRsCodec: k must be at least 1");
    requireArg(n > k, "ClassicRsCodec: n must exceed k");
    requireArg(n <= 255, "ClassicRsCodec: n must be at most 255");

    // g(x) = prod_{i=1}^{n-k} (x - a^i), built low-order first.
    generator = {1};
    for (size_t i = 1; i <= n - k; ++i)
        generator = polyMul(generator, {gf::exp(static_cast<unsigned>(i)),
                                        1});
}

std::vector<uint8_t>
ClassicRsCodec::encode(const std::vector<uint8_t> &message) const
{
    LEMONS_OBS_INCREMENT("rs.classic.encode.calls");
    requireArg(message.size() == dimension,
               "ClassicRsCodec::encode: message must be exactly k bytes");
    // Systematic encoding: C(x) = M(x) x^(n-k) + (M(x) x^(n-k) mod g),
    // computed by synthetic division. The codeword vector stores the
    // highest-degree coefficient first: message, then parity.
    const size_t parityLen = parity();
    std::vector<uint8_t> remainder(parityLen, 0);
    for (uint8_t symbol : message) {
        const uint8_t factor = gf::add(symbol, remainder[0]);
        // Shift remainder left by one and fold in factor * g.
        for (size_t j = 0; j + 1 < parityLen; ++j) {
            remainder[j] = gf::add(
                remainder[j + 1],
                gf::mul(factor, generator[parityLen - 1 - j]));
        }
        remainder[parityLen - 1] = gf::mul(factor, generator[0]);
    }

    std::vector<uint8_t> codeword(message);
    codeword.insert(codeword.end(), remainder.begin(), remainder.end());
    return codeword;
}

std::vector<uint8_t>
ClassicRsCodec::syndromes(const std::vector<uint8_t> &word) const
{
    // S_j = R(a^j) where the vector position p carries the coefficient
    // of x^(n-1-p). Horner from the front does exactly that.
    std::vector<uint8_t> result(parity());
    bool allZero = true;
    for (size_t j = 1; j <= parity(); ++j) {
        const uint8_t point = gf::exp(static_cast<unsigned>(j));
        uint8_t acc = 0;
        for (uint8_t symbol : word)
            acc = gf::add(gf::mul(acc, point), symbol);
        result[j - 1] = acc;
        if (acc != 0)
            allZero = false;
    }
    if (allZero)
        result.clear();
    return result;
}

bool
ClassicRsCodec::isCodeword(const std::vector<uint8_t> &word) const
{
    return word.size() == length && syndromes(word).empty();
}

std::optional<ClassicRsCodec::DecodeResult>
ClassicRsCodec::decode(const std::vector<uint8_t> &received,
                       const std::vector<size_t> &erasurePositions) const
{
    LEMONS_OBS_INCREMENT("rs.classic.decode.calls");
    requireArg(received.size() == length,
               "ClassicRsCodec::decode: received word must be n bytes");
    for (size_t pos : erasurePositions)
        requireArg(pos < length,
                   "ClassicRsCodec::decode: erasure position out of range");
    {
        std::vector<size_t> sorted = erasurePositions;
        std::sort(sorted.begin(), sorted.end());
        requireArg(std::adjacent_find(sorted.begin(), sorted.end()) ==
                       sorted.end(),
                   "ClassicRsCodec::decode: duplicate erasure position");
    }

    const size_t numErasures = erasurePositions.size();
    if (numErasures > parity())
        return std::nullopt;

    const std::vector<uint8_t> synd = syndromes(received);
    std::vector<uint8_t> corrected = received;
    if (synd.empty()) {
        // Already a codeword; nothing to fix (erasures were benign).
        DecodeResult result;
        result.message.assign(corrected.begin(),
                              corrected.begin() +
                                  static_cast<std::ptrdiff_t>(dimension));
        return result;
    }

    // Erasure locators X_i = a^(n-1-pos).
    std::vector<uint8_t> erasureLocators;
    erasureLocators.reserve(numErasures);
    for (size_t pos : erasurePositions) {
        erasureLocators.push_back(
            gf::exp(static_cast<unsigned>(length - 1 - pos)));
    }

    // Forney syndromes: fold each erasure out of the syndrome sequence
    // so Berlekamp-Massey sees an errors-only problem.
    std::vector<uint8_t> forneySynd = synd;
    for (uint8_t x : erasureLocators) {
        for (size_t i = 0; i + 1 < forneySynd.size(); ++i) {
            forneySynd[i] = gf::add(gf::mul(x, forneySynd[i]),
                                    forneySynd[i + 1]);
        }
        forneySynd.pop_back();
    }

    // Berlekamp-Massey on the Forney syndromes.
    Poly lambda = {1};
    Poly prev = {1};
    size_t l = 0;
    size_t m = 1;
    uint8_t b = 1;
    for (size_t i = 0; i < forneySynd.size(); ++i) {
        uint8_t delta = forneySynd[i];
        for (size_t j = 1; j <= l && j < lambda.size(); ++j)
            delta = gf::add(delta, gf::mul(lambda[j], forneySynd[i - j]));
        if (delta == 0) {
            ++m;
            continue;
        }
        const uint8_t coefficient = gf::div(delta, b);
        Poly shifted(m, 0);
        shifted.insert(shifted.end(), prev.begin(), prev.end());
        Poly updated = lambda;
        updated.resize(std::max(updated.size(), shifted.size()), 0);
        for (size_t j = 0; j < shifted.size(); ++j) {
            updated[j] = gf::add(updated[j],
                                 gf::mul(coefficient, shifted[j]));
        }
        if (2 * l <= i) {
            prev = lambda;
            b = delta;
            l = i + 1 - l;
            m = 1;
        } else {
            ++m;
        }
        lambda = std::move(updated);
    }
    while (!lambda.empty() && lambda.back() == 0)
        lambda.pop_back();
    const size_t numErrors = lambda.size() - 1;
    if (2 * numErrors + numErasures > parity())
        return std::nullopt; // beyond guaranteed capacity

    // Combined locator: psi(x) = Lambda(x) * prod (1 + X_i x).
    Poly psi = lambda;
    for (uint8_t x : erasureLocators)
        psi = polyMul(psi, {1, x});

    // Chien search: position p is corrupt iff psi(X_p^{-1}) == 0.
    std::vector<size_t> corruptPositions;
    for (size_t pos = 0; pos < length; ++pos) {
        const uint8_t locator =
            gf::exp(static_cast<unsigned>(length - 1 - pos));
        if (polyEval(psi, gf::inv(locator)) == 0)
            corruptPositions.push_back(pos);
    }
    if (corruptPositions.size() != psi.size() - 1)
        return std::nullopt; // locator degree != root count: failure

    // Error evaluator Omega(x) = S(x) psi(x) mod x^(n-k).
    Poly omega = polyMul(synd, psi);
    omega.resize(parity());
    const Poly psiPrime = polyDerivative(psi);

    // Forney's algorithm: magnitude at X is Omega(X^{-1}) / psi'(X^{-1}).
    for (size_t pos : corruptPositions) {
        const uint8_t locator =
            gf::exp(static_cast<unsigned>(length - 1 - pos));
        const uint8_t xInv = gf::inv(locator);
        const uint8_t denominator = polyEval(psiPrime, xInv);
        if (denominator == 0)
            return std::nullopt;
        const uint8_t magnitude =
            gf::div(polyEval(omega, xInv), denominator);
        corrected[pos] = gf::add(corrected[pos], magnitude);
    }

    if (!syndromes(corrected).empty())
        return std::nullopt; // correction did not land on a codeword

    DecodeResult result;
    result.message.assign(corrected.begin(),
                          corrected.begin() +
                              static_cast<std::ptrdiff_t>(dimension));
    result.correctedErasures = numErasures;
    result.correctedErrors =
        corruptPositions.size() >= numErasures
            ? corruptPositions.size() - numErasures
            : 0;
    return result;
}

} // namespace lemons::rs
