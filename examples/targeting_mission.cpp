/**
 * @file
 * The limited-use targeting system (paper Section 5): a launch station
 * that can decrypt at most ~100 targeting commands, ever.
 *
 * Simulates a mission: the command-and-control authority issues
 * encrypted, authenticated commands over the link; the station
 * executes them through its wearout-gated mission key. Then three
 * abuse cases: a forged command, a replayed command, and post-mission
 * overreach — all bounded or rejected by the hardware.
 *
 * Build & run:  ./build/examples/targeting_mission
 */

#include <iostream>
#include <string>

#include "lemons/lemons.h"

using namespace lemons;
using namespace lemons::core;

int
main()
{
    std::cout << "=== Limited-use targeting system ===\n\n";

    // Mission profile: 100 expected commands, strict degradation (we
    // do not want a single unintentional command executed past the
    // bound).
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    std::cout << "Station key hardware: " << formatCount(design.totalDevices)
              << " NEMS switches (" << design.copies << " copies x "
              << design.width << ")\n\n";

    const wearout::DeviceFactory factory({10.0, 12.0},
                                         wearout::ProcessVariation::none());
    const std::vector<uint8_t> missionKey(32, 0x91);
    Rng rng(314159);
    CommandAuthority c2(missionKey);
    LaunchStation station(design, factory, missionKey, rng);

    // --- The mission ---
    std::cout << "--- mission: 100 targeting commands ---\n";
    int executed = 0;
    for (int i = 1; i <= 100; ++i) {
        const auto cmd = c2.issueCommand(
            "ENGAGE grid " + std::to_string(1000 + i));
        if (station.executeCommand(cmd))
            ++executed;
    }
    std::cout << executed << "/100 commands executed.\n\n";

    // --- Abuse case 1: forged command from a network intruder ---
    std::cout << "--- abuse: forged command ---\n";
    TargetingCommand forged;
    forged.nonce = 9999;
    forged.ciphertext = {0x41, 0x42, 0x43};
    forged.mac.fill(0xee);
    std::cout << "forged command "
              << (station.executeCommand(forged) ? "EXECUTED?!"
                                                 : "rejected (bad MAC)")
              << " — but the decryption attempt burned hardware life.\n\n";

    // --- Abuse case 2: replay of a real command ---
    std::cout << "--- abuse: replayed command ---\n";
    const auto legit = c2.issueCommand("ENGAGE grid 1100");
    (void)station.executeCommand(legit);
    std::cout << "replay "
              << (station.executeCommand(legit)
                      ? "EXECUTED?!"
                      : "rejected (stale nonce)")
              << "\n\n";

    // --- Abuse case 3: post-mission overreach ---
    std::cout << "--- abuse: post-mission overreach ---\n";
    uint64_t overreach = 0;
    while (!station.decommissioned()) {
        std::string order = "OVERREACH ";
        order += std::to_string(overreach);
        (void)station.executeCommand(c2.issueCommand(order));
        ++overreach;
    }
    std::cout << "station hardware retired itself after " << overreach
              << " post-mission attempts (total attempts "
              << station.attemptCount() << ").\n";
    std::cout << "political alliances may change; this station's "
                 "commands cannot (Section 5).\n";
    return 0;
}
