/**
 * @file
 * Quickstart: design, fabricate, and exercise a limited-use secret
 * gate in ~60 lines.
 *
 *   1. describe the device technology (Weibull alpha/beta),
 *   2. solve for an architecture meeting a usage bound,
 *   3. fabricate a simulated gate protecting a secret,
 *   4. watch legitimate use succeed and wearout stop an attacker.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "lemons/lemons.h"

int
main()
{
    using namespace lemons;

    // 1. Device technology: NEMS switches lasting ~10 cycles with
    //    consistent wearout (shape beta = 12).
    core::DesignRequest request;
    request.device = {10.0, 12.0};         // Weibull alpha, beta
    request.legitimateAccessBound = 100;   // uses we must support
    request.kFraction = 0.1;               // Shamir k = 10% of n

    // 2. Solve for the cheapest architecture meeting the criteria
    //    (>= 99 % reliable for all 100 uses, <= 1 % alive afterwards).
    const core::Design design = core::DesignSolver(request).solve();
    if (!design.feasible) {
        std::cerr << "no feasible design for this technology\n";
        return 1;
    }
    std::cout << "Design: " << design.copies << " copies x "
              << design.width << " switches (threshold k = "
              << design.threshold << "), " << design.totalDevices
              << " NEMS switches total.\n"
              << "Each copy serves " << design.perCopyBound
              << " accesses with reliability "
              << design.reliabilityAtBound << ", then dies ("
              << design.reliabilityPastBound
              << " residual at the next access).\n\n";

    // 3. Fabricate a gate protecting a 16-byte secret.
    const wearout::DeviceFactory factory(request.device,
                                         wearout::ProcessVariation::none());
    Rng rng(42);
    const std::vector<uint8_t> secret = {0, 1, 2, 3, 4, 5, 6, 7,
                                         8, 9, 10, 11, 12, 13, 14, 15};
    core::LimitedUseGate gate(design, factory, secret, rng);

    // 4a. The legitimate user: 100 accesses, every one succeeds.
    int delivered = 0;
    for (int i = 0; i < 100; ++i) {
        if (gate.access() == secret)
            ++delivered;
    }
    std::cout << "Legitimate use: " << delivered
              << "/100 accesses delivered the secret.\n";

    // 4b. The attacker keeps hammering: the hardware wears out within
    //     a handful of extra accesses and the secret is gone forever.
    int extra = 0;
    while (gate.access().has_value())
        ++extra;
    std::cout << "Attacker got " << extra
              << " extra accesses before the hardware wore out.\n"
              << "Gate exhausted: " << std::boolalpha << gate.exhausted()
              << " — the secret is now physically unreachable.\n";
    return 0;
}
