/**
 * @file
 * The paper's motivating scenario (Section 4): a smartphone whose
 * storage decryption key sits behind a limited-use connection.
 *
 * Walks through the full lifecycle:
 *  - design a connection for 50 unlocks/day over 5 years (scaled down
 *    1000x here so the simulation runs instantly; pass --full-scale to
 *    design, but not fabricate, the real 91,250-access instance),
 *  - provision it with the user's passcode,
 *  - a normal day: unlocks, a typo, a passcode change,
 *  - the phone is stolen: a professional attacker with the empirical
 *    password-popularity list hammers the connection until the
 *    hardware bricks itself,
 *  - an M-way replicated variant for a heavy user.
 *
 * Build & run:  ./build/examples/smartphone_unlock [--full-scale]
 */

#include <iostream>
#include <string>

#include "lemons/lemons.h"

using namespace lemons;
using namespace lemons::core;

namespace {

Design
designConnection(uint64_t lab)
{
    DesignRequest request;
    request.device = {10.0, 12.0}; // ~10-cycle NEMS, tight wearout
    request.legitimateAccessBound = lab;
    request.kFraction = 0.1;
    return DesignSolver(request).solve();
}

void
printDesign(const char *label, const Design &d)
{
    std::cout << label << ": " << formatCount(d.totalDevices)
              << " NEMS switches (" << formatCount(d.copies)
              << " copies x " << d.width << " wide, k = " << d.threshold
              << ", " << d.perCopyBound << " accesses/copy)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool fullScale =
        argc > 1 && std::string(argv[1]) == "--full-scale";

    std::cout << "=== Smartphone unlock behind a limited-use connection "
                 "===\n\n";

    if (fullScale) {
        // 50/day * 365 * 5 = 91,250 legitimate unlocks.
        const Design full = designConnection(91250);
        printDesign("Full-scale design (LAB 91,250)", full);
        std::cout << "(fabricating 91,250 accesses of simulated hardware "
                     "takes a while; the walkthrough below uses the "
                     "scaled-down instance)\n\n";
    }

    // Scaled instance: ~91 unlocks of life.
    const Design design = designConnection(91);
    printDesign("Scaled design (LAB 91)", design);
    std::cout << "\n";

    const wearout::DeviceFactory factory({10.0, 12.0},
                                         wearout::ProcessVariation::none());
    Rng rng(7);
    const std::vector<uint8_t> storageKey(32, 0xd5);
    LimitedUseConnection phone(design, factory, "rosebud99",
                               storageKey, rng);

    // --- A normal week ---
    std::cout << "--- normal usage ---\n";
    for (int day = 1; day <= 3; ++day) {
        const auto key = phone.unlock("rosebud99");
        std::cout << "day " << day << ": unlock "
                  << (key ? "OK (storage key recovered)" : "FAILED")
                  << "\n";
    }
    std::cout << "typo: unlock "
              << (phone.unlock("rosebud9") ? "OK?!" : "rejected")
              << " (attempt still consumed hardware life)\n";
    std::cout << "passcode change: "
              << (phone.changePasscode("rosebud99", "xkcd-936-horse")
                      ? "done"
                      : "failed")
              << "\n";
    std::cout << "unlock with new passcode: "
              << (phone.unlock("xkcd-936-horse") ? "OK" : "FAILED")
              << "\n";
    std::cout << "attempts so far: " << phone.attemptCount() << "\n\n";

    // --- The phone is stolen ---
    std::cout << "--- stolen: professional brute force ---\n";
    const crypto::PasswordModel passwords;
    uint64_t guesses = 0;
    while (!phone.bricked()) {
        // Attacker tries passwords in empirical popularity order; the
        // real passcode is unpopular, so every guess misses.
        (void)phone.unlock("popular-guess-" + std::to_string(guesses));
        ++guesses;
    }
    std::cout << "hardware bricked after " << guesses
              << " brute-force attempts\n";
    std::cout << "attacker success probability within that budget: "
              << formatSci(passwords.attackSuccessProbability(
                               phone.attemptCount()),
                           2)
              << " (full-scale budget ~91k attempts -> < 1%)\n";
    std::cout << "owner's passcode now also useless: "
              << (phone.unlock("xkcd-936-horse") ? "?!"
                                                 : "device is a brick")
              << " — confidentiality preserved, availability sacrificed "
                 "(Section 7).\n\n";

    // --- Heavy user: M-way replication ---
    std::cout << "--- M-way replication for a heavy user (M = 3) ---\n";
    Rng mwayRng(11);
    MWayReplication stack(3, design, factory, "module0-pass",
                          std::vector<uint8_t>(32, 0x3c), mwayRng);
    uint64_t served = 0;
    for (uint64_t module = 0; module < 3; ++module) {
        const std::string pass = "module" + std::to_string(module) +
                                 "-pass";
        for (int i = 0; i < 70; ++i) { // below each module's bound
            if (stack.unlock(pass).has_value())
                ++served;
        }
        if (module + 1 < 3) {
            const std::string next = "module" +
                                     std::to_string(module + 1) + "-pass";
            stack.migrate(pass, next);
            std::cout << "migrated to module " << module + 1
                      << " (new passcode, storage re-encrypted)\n";
        }
    }
    std::cout << "served " << served << " unlocks across "
              << stack.moduleCount() << " modules ("
              << stack.migrationCount() << " migrations) — ~3x the "
              << "single-module budget, as Section 4.1.5 promises.\n";
    return 0;
}
