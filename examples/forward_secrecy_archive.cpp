/**
 * @file
 * Forward secrecy with physically enforced one-time keys — the
 * paper's introductory motivation: "forward secrecy encryption ...
 * requires a one-time key for the encryption of each message so that
 * the compromise of a single private key does not compromise all the
 * past messages. Traditionally, the one-time access of the keys is
 * not enforced ... Taking advantage of wearout, we can store the keys
 * in a security architecture that wears out exactly after one access."
 *
 * Uses the library's SealedArchive: each message is encrypted under
 * its own key behind a single-use wearout gate. When the adversary
 * seizes the archive (and drives the hardware directly, ignoring any
 * software flags), already-read messages are permanently sealed.
 *
 * Build & run:  ./build/examples/forward_secrecy_archive
 */

#include <iostream>

#include "lemons/lemons.h"

using namespace lemons;
using namespace lemons::core;

int
main()
{
    std::cout << "=== Forward-secret mail archive on single-use key "
                 "gates ===\n\n";

    const Design design = SealedArchive::defaultSingleUseDesign();
    std::cout << "Single-use key gate: " << design.totalDevices
              << " switches per message; R(1) = "
              << formatGeneral(design.reliabilityAtBound, 4)
              << ", R(2) = " << formatSci(design.reliabilityPastBound, 1)
              << "\n\n";

    const wearout::DeviceFactory factory(
        SealedArchive::defaultDeviceSpec(),
        wearout::ProcessVariation::none());
    SealedArchive archive(factory, 1999);

    const std::pair<std::string, std::string> mail[] = {
        {"re: merger", "The merger signs Friday. Tell no one."},
        {"travel", "Safehouse moved to the coast address."},
        {"farewell", "Burn this account after reading."},
    };
    for (const auto &[subject, body] : mail)
        (void)archive.append(body);
    std::cout << "Archived " << archive.size()
              << " messages, one single-use key gate each.\n\n";

    // The owner reads messages 0 and 1 (consuming their keys).
    for (size_t i = 0; i < 2; ++i) {
        const auto plaintext = archive.read(i);
        std::cout << "read \"" << mail[i].first << "\": "
                  << (plaintext ? "\"" + *plaintext + "\"" : "KEY GONE")
                  << "\n";
    }

    // The device is seized; the adversary bypasses the software and
    // drives every key gate directly.
    std::cout << "\n--- device seized: adversary dumps every key gate "
                 "---\n";
    const auto loot = archive.seizeAndDump();
    Table table({"message", "state", "plaintext recovered"});
    size_t lootIndex = 0;
    for (size_t i = 0; i < archive.size(); ++i) {
        const bool recovered =
            lootIndex < loot.size() && i >= 2; // only unread fall
        table.addRow({mail[i].first,
                      recovered ? "was unread" : "key worn out",
                      recovered ? loot[lootIndex++]
                                : "(sealed forever)"});
    }
    table.print(std::cout);

    std::cout
        << "\nOnly the never-read message falls — the forward-secrecy "
           "contract: past reads are physically\nsealed, and no software "
           "compromise or key-reuse bug can undo the wearout "
           "(Section 1).\n";
    return 0;
}
