/**
 * @file
 * One-time-pad messaging over NEMS decision trees (paper Section 6).
 *
 * Alice fabricates a chip of hardware one-time pads and hands it to
 * Bob through a courier. Each pad key lives at a secret leaf of 128
 * decision-tree copies (Shamir 8-of-128). Alice later sends encrypted
 * messages; Bob follows the short path strings — transmitted
 * separately — to pull each pad key exactly once.
 *
 * The courier turns out to be an evil maid: she gets the chip for a
 * night and tries to clone pad #2. The tree height (H = 8) defeats
 * her, and her tampering destroys the pad — Bob notices.
 *
 * Build & run:  ./build/examples/one_time_pad_messaging
 */

#include <iostream>
#include <string>
#include <vector>

#include "lemons/lemons.h"

using namespace lemons;
using namespace lemons::core;

namespace {

/** Alice's provisioning record for one pad slot. */
struct PadSlot
{
    std::vector<uint8_t> key; ///< Alice's copy (kept securely by her).
    uint64_t path;            ///< the short string shared with Bob.
};

std::string
pathString(uint64_t path, unsigned height)
{
    std::string bits;
    for (unsigned i = 0; i + 1 < height; ++i)
        bits.push_back((path >> i) & 1 ? '1' : '0');
    return bits.empty() ? "(root)" : bits;
}

} // namespace

int
main()
{
    std::cout << "=== One-time pads in NEMS decision trees ===\n\n";

    OtpParams params;
    params.height = 8;     // 128 paths per tree; blocks adversaries
    params.copies = 128;   // Shamir 8-of-128 across tree copies
    params.threshold = 8;
    params.device = {10.0, 1.0};

    const OtpAnalytics analytics(params);
    const arch::CostModel cost;
    std::cout << "Pad design: H = " << params.height << ", n = "
              << params.copies << ", k = " << params.threshold << "\n"
              << "  receiver success  = "
              << formatGeneral(analytics.receiverSuccess(), 4) << "\n"
              << "  adversary success = "
              << formatSci(analytics.adversarySuccess(), 2) << "\n"
              << "  pads per mm^2     = "
              << formatCount(cost.padsPerMm2(params.height, params.copies))
              << "\n  retrieval latency = "
              << formatGeneral(
                     cost.padRetrievalLatencyMs(params.height,
                                                params.copies),
                     4)
              << " ms\n\n";

    // --- Alice fabricates a 3-pad chip ---
    const wearout::DeviceFactory factory(params.device,
                                         wearout::ProcessVariation::none());
    Rng rng(20170624);
    std::vector<PadSlot> slots;
    std::vector<OneTimePad> chip;
    const uint64_t paths = uint64_t{1} << (params.height - 1);
    for (int s = 0; s < 3; ++s) {
        PadSlot slot;
        slot.key = crypto::generatePad(rng, 64);
        slot.path = rng.nextBelow(paths);
        chip.emplace_back(params, slot.key, slot.path, factory, rng);
        slots.push_back(std::move(slot));
    }
    std::cout << "Alice fabricated a chip with " << chip.size()
              << " pads and couriered it to Bob.\n"
              << "Path strings (sent over a separate short-lived "
                 "channel): ";
    for (const auto &slot : slots)
        std::cout << pathString(slot.path, params.height) << " ";
    std::cout << "\n\n";

    // --- Evil maid night: she attacks pad #2 with random paths ---
    std::cout << "--- the courier (evil maid) attacks pad #2 ---\n";
    Rng maid(666);
    const auto stolen = chip[2].randomPathAttack(maid);
    std::cout << "maid obtained the key: "
              << (stolen ? "YES (!!)" : "no") << "\n\n";

    // --- Messaging ---
    const std::string messages[] = {
        "MEET AT THE USUAL PLACE AT DAWN",
        "THE PACKAGE IS IN LOCKER 451",
        "ABORT EVERYTHING AND GO DARK",
    };
    for (size_t s = 0; s < 3; ++s) {
        std::cout << "--- message " << s << " via pad " << s << " ---\n";
        const std::vector<uint8_t> plaintext(messages[s].begin(),
                                             messages[s].end());
        const auto ciphertext = crypto::otpApply(plaintext, slots[s].key);
        std::cout << "Alice -> Bob ciphertext: ";
        for (size_t i = 0; i < 8; ++i)
            std::cout << std::hex << int{ciphertext[i]} << std::dec;
        std::cout << "... (" << ciphertext.size() << " bytes)\n";

        const auto padKey = chip[s]
                                .retrieve(slots[s].path);
        if (!padKey) {
            std::cout << "Bob: pad " << s
                      << " is DEAD — tampering detected, message "
                         "unreadable, falling back to a fresh pad.\n\n";
            continue;
        }
        const auto decrypted = crypto::otpApply(ciphertext, *padKey);
        std::cout << "Bob decrypted: \""
                  << std::string(decrypted.begin(), decrypted.end())
                  << "\"\n";
        std::cout << "second retrieval attempt: "
                  << (chip[s].retrieve(slots[s].path)
                          ? "worked?!"
                          : "pad destroyed (one-time use enforced)")
                  << "\n\n";
    }

    std::cout << "The maid's best case is consuming pad 2 (availability "
                 "loss, which Bob detects);\nwith n = 128 copies and "
                 "k = 8 the design usually even absorbs her tampering — "
                 "she\nconsumed the right leaf only in the ~1/128 of "
                 "copies where she guessed the path.\nWhat she can never "
                 "do is walk away with the key (Section 6.3).\n";
    return 0;
}
