/**
 * @file
 * Interactive design-space explorer: solve a limited-use architecture
 * for your device technology and usage target from the command line.
 *
 * Usage:
 *   design_explorer [alpha] [beta] [LAB] [kFraction] [p] [upperBound]
 *
 *   alpha      Weibull scale in cycles        (default 14)
 *   beta       Weibull shape                  (default 8)
 *   LAB        legitimate access bound        (default 91250)
 *   kFraction  Shamir/RS threshold fraction   (default 0.1; 0 = none)
 *   p          residual reliability allowed   (default 0.01)
 *   upperBound system-level attempt target    (default: none)
 *
 * Examples:
 *   ./build/examples/design_explorer 14 8 91250 0.1
 *   ./build/examples/design_explorer 20 16 100 0
 *   ./build/examples/design_explorer 14 8 91250 0.1 0.01 200000
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "lemons/lemons.h"

using namespace lemons;
using namespace lemons::core;

int
main(int argc, char **argv)
{
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;

    auto arg = [&](int i) { return std::atof(argv[i]); };
    if (argc > 1)
        request.device.alpha = arg(1);
    if (argc > 2)
        request.device.beta = arg(2);
    if (argc > 3)
        request.legitimateAccessBound =
            static_cast<uint64_t>(std::atoll(argv[3]));
    if (argc > 4)
        request.kFraction = arg(4);
    if (argc > 5)
        request.criteria.maxResidualReliability = arg(5);
    if (argc > 6)
        request.upperBoundTarget =
            static_cast<uint64_t>(std::atoll(argv[6]));

    std::cout << "Request: alpha=" << request.device.alpha
              << " beta=" << request.device.beta
              << " LAB=" << formatCount(request.legitimateAccessBound)
              << " k/n=" << request.kFraction
              << " p=" << request.criteria.maxResidualReliability;
    if (request.upperBoundTarget)
        std::cout << " upperBound=" << formatCount(*request.upperBoundTarget);
    std::cout << "\n\n";

    const Design design = DesignSolver(request).solve();
    if (!design.feasible) {
        std::cout << "INFEASIBLE: no architecture within the search caps "
                     "meets the criteria for this technology.\n"
                     "Try enabling encoding (kFraction 0.1-0.3), a "
                     "tighter-shape device (higher beta), or a relaxed "
                     "residual p.\n";
        return 1;
    }

    Table table({"quantity", "value"});
    table.addRow({"per-copy access bound t",
                  formatCount(design.perCopyBound)});
    table.addRow({"structure width n", formatCount(design.width)});
    table.addRow({"threshold k", formatCount(design.threshold)});
    table.addRow({"copies N", formatCount(design.copies)});
    table.addRow({"total NEMS switches",
                  formatCount(design.totalDevices)});
    table.addRow({"reliability at bound",
                  formatGeneral(design.reliabilityAtBound, 6)});
    table.addRow({"residual past bound",
                  formatSci(design.reliabilityPastBound, 2)});
    table.addRow({"expected system total",
                  formatGeneral(design.expectedSystemTotal, 8)});

    const arch::CostModel cost;
    const double area =
        request.kFraction == 0.0
            ? cost.connectionAreaMm2(design.totalDevices)
            : cost.encodedConnectionAreaMm2(design.totalDevices,
                                            design.width, design.threshold,
                                            design.copies);
    table.addRow({"die area (mm^2)", formatSci(area, 2)});
    table.addRow({"access energy (J)",
                  formatSci(cost.accessEnergyJ(design.width), 2)});
    table.addRow({"access latency (ns)",
                  formatGeneral(cost.accessLatencyNs(), 3)});
    table.print(std::cout);

    // Monte Carlo validation for affordable instances.
    if (design.totalDevices <= 2'000'000) {
        const UsageBounds bounds = estimateUsageBounds(
            design, request.device, wearout::ProcessVariation::none(),
            200, 1);
        std::cout << "\nMonte Carlo (200 fabricated instances):\n"
                  << "  mean total accesses  " << bounds.meanTotalAccesses
                  << "\n  0.1% / 99.9% quantiles  " << bounds.q001
                  << " / " << bounds.q999 << "\n";
    } else {
        std::cout << "\n(design too large for quick Monte Carlo "
                     "validation; use the analytic expectation above)\n";
    }
    return 0;
}
