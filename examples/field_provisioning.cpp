/**
 * @file
 * End-user one-time programming — the paper's future work (Section 3)
 * implemented: "We assume the secret information is one-time
 * programmed in the device memory at fabrication time ... we leave as
 * future work techniques to allow secure, one-time programming of our
 * devices by end users."
 *
 * The retail story this enables:
 *  1. the fab ships BLANK gates (switches + anti-fuse stores, no
 *     secrets) — the fab never learns any key,
 *  2. the customer programs their own secret at home; the programming
 *     fuse blows,
 *  3. an attacker who intercepts a blank gate gets nothing — and any
 *     probing they do before resale burns the gate's usable life,
 *  4. an attacker who steals the programmed gate faces the ordinary
 *     wearout bound; reprogramming is physically impossible.
 *
 * Build & run:  ./build/examples/field_provisioning
 */

#include <iostream>

#include "lemons/lemons.h"

using namespace lemons;
using namespace lemons::core;

int
main()
{
    std::cout << "=== Field-programmable limited-use gate ===\n\n";

    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    const wearout::DeviceFactory factory(request.device,
                                         wearout::ProcessVariation::none());

    // --- 1. Fab ships blank hardware ---
    Rng fabRng(2026);
    ProgrammableGate gate(design, factory, fabRng);
    std::cout << "fab ships a blank gate (" << design.totalDevices
              << " switches, no secret). programmed = " << std::boolalpha
              << gate.programmed() << "\n";

    // An over-curious distributor probes it; the reads return nothing.
    for (int i = 0; i < 3; ++i) {
        std::cout << "  distributor probe " << i << ": "
                  << (gate.access() ? "got data?!" : "blank") << "\n";
    }

    // --- 2. Customer programs their own secret at home ---
    Rng customerRng(8675309); // the customer's dice, not the fab's
    std::vector<uint8_t> myKey = crypto::generatePad(customerRng, 32);
    std::cout << "\ncustomer programs a self-chosen 256-bit key: "
              << (gate.programSecret(myKey, customerRng) ? "burned in"
                                                         : "FAILED")
              << " (programming fuse blown)\n";

    // --- 3. Normal life ---
    int unlocks = 0;
    for (int i = 0; i < 90; ++i) {
        if (gate.access() == myKey)
            ++unlocks;
    }
    std::cout << "customer uses the gate: " << unlocks
              << "/90 accesses returned the key\n";

    // --- 4. The gate is stolen ---
    std::cout << "\n--- stolen ---\n";
    Rng thiefRng(13);
    std::vector<uint8_t> thiefKey = crypto::generatePad(thiefRng, 32);
    std::cout << "thief tries to reprogram with a known key: "
              << (gate.programSecret(thiefKey, thiefRng)
                      ? "succeeded?!"
                      : "rejected (fuse blown)")
              << "\n";
    int thiefReads = 0;
    while (gate.access().has_value())
        ++thiefReads;
    std::cout << "thief hammers the read path: " << thiefReads
              << " residual reads before wearout, then the key is gone "
                 "forever.\n";
    std::cout << "\nThe fab never saw the key; the thief never chose it; "
                 "physics enforced both (Section 3's deferred "
                 "capability).\n";
    return 0;
}
