/**
 * @file
 * Lifetime-model sensitivity (Section 7): the paper concedes the
 * Weibull model "needs experimental data to validate the range of
 * parameters that are realistic of this or other alternative models."
 *
 * This ablation fabricates a design — solved under the pure-Weibull
 * assumption — from bathtub-curve populations (a fraction of devices
 * fails in infancy) and measures how the empirical usage bounds
 * degrade with the infant-mortality fraction, with and without
 * redundant encoding.
 */

#include "arch/structures_sim.h"
#include "bench/harness.h"
#include "core/design_solver.h"
#include "sim/monte_carlo.h"
#include "util/stats.h"
#include "util/table.h"
#include "wearout/mixture.h"

using namespace lemons;
using namespace lemons::core;

namespace {

void
sweep(lemons::bench::BenchContext &ctx, const char *label,
      const Design &design, uint64_t lab, const wearout::Weibull &assumed)
{
    ctx.out() << "--- " << label << ": "
              << formatCount(design.totalDevices) << " switches, nominal "
              << formatCount(design.copies * design.perCopyBound)
              << " accesses ---\n";
    Table table({"infant fraction", "mean total", "q0.1%",
                 "min bound held?", "q99.9% (attacker view)"});
    const uint64_t trials = ctx.scaled(2000, 100);
    const sim::MonteCarlo engine(90210, trials);
    for (double w : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
        const wearout::BathtubModel mix =
            wearout::BathtubModel::withInfantMortality(assumed, w);
        const arch::LifetimeSampler sampler = [&](Rng &rng) {
            return mix.sample(rng);
        };
        const auto report = engine.run(
            [&](Rng &rng) {
                return static_cast<double>(
                    arch::sampleSerialCopiesTotalAccesses(
                        sampler, design.width, design.threshold,
                        design.copies, rng));
            },
            {.threads = 0, .faults = sim::FaultPolicy::Rethrow});
        const RunningStats &stats = report.stats;
        const double q001 = quantile(report.samples, 0.001);
        const double q999 = quantile(report.samples, 0.999);
        const bool held = q001 >= static_cast<double>(lab);
        ctx.keep(stats.mean());
        table.addRow({formatGeneral(w, 3), formatGeneral(stats.mean(), 6),
                      formatGeneral(q001, 6), held ? "yes" : "NO",
                      formatGeneral(q999, 6)});
    }
    table.print(ctx.out());
    ctx.out() << "\n";
    ctx.metric("items", static_cast<double>(6 * trials));
}

} // namespace

LEMONS_BENCH(modelSensitivity, "ablation.model_sensitivity")
{
    ctx.out() << "=== Lifetime-model sensitivity: Weibull-designed "
                 "architectures on bathtub populations ===\n\n";

    const wearout::Weibull assumed(10.0, 12.0);

    DesignRequest encoded;
    encoded.device = {10.0, 12.0};
    encoded.legitimateAccessBound = 100;
    encoded.kFraction = 0.1;
    sweep(ctx, "encoded k=10% design", DesignSolver(encoded).solve(), 100,
          assumed);

    DesignRequest plain = encoded;
    plain.kFraction = 0.0;
    sweep(ctx, "plain 1-of-n design", DesignSolver(plain).solve(), 100,
          assumed);

    ctx.out()
        << "The encoded design's k-of-n margin absorbs a few percent of "
           "infant mortality outright; the plain\n1-of-n design is even "
           "more tolerant on the minimum bound (any survivor suffices) "
           "but its upper bound\nstretches further — the degradation "
           "window widens exactly as Section 7 cautions when the true\n"
           "lifetime model deviates from the designed-for Weibull.\n";
}
