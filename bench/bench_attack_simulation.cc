/**
 * @file
 * Threat-model simulation (Sections 3, 4.1): professional brute-force
 * attacks against the limited-use connection.
 *
 * For each design point, samples users' password guess-ranks from the
 * empirical guessability model and checks whether a popularity-order
 * attacker cracks the password before the hardware wears out. Compares
 * against an unprotected baseline (software counter bypassed, hardware
 * unlimited).
 */

#include "arch/structures_sim.h"
#include "bench/harness.h"
#include "core/design_solver.h"
#include "crypto/password_model.h"
#include "sim/monte_carlo.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

namespace {

struct Scenario
{
    const char *label;
    double kFraction;
    double maxResidual;
    std::optional<uint64_t> upperBound;
    double rejectedFraction;
};

} // namespace

LEMONS_BENCH(attackSimulation, "attack.brute_force")
{
    ctx.out() << "=== Brute-force attack simulation (alpha = 14, "
                 "beta = 8, LAB = 91,250) ===\n\n";

    const crypto::PasswordModel passwords;
    const Scenario scenarios[] = {
        {"encoded, p=1%", 0.1, 0.01, {}, 0.0},
        {"encoded, p=10%", 0.1, 0.10, {}, 0.0},
        {"UB 100k, reject top 1%", 0.1, 0.01, 100000, 0.01},
        {"UB 200k, reject top 2%", 0.1, 0.01, 200000, 0.02},
    };

    const uint64_t trials = ctx.scaled(40, 5);
    Table table({"scenario", "#NEMS", "hardware bound (mean)",
                 "attack success (MC)", "attack success (analytic)"});
    for (const Scenario &s : scenarios) {
        DesignRequest request;
        request.device = {14.0, 8.0};
        request.kFraction = s.kFraction;
        request.criteria.maxResidualReliability = s.maxResidual;
        request.upperBoundTarget = s.upperBound;
        const Design design = DesignSolver(request).solve();
        if (!design.feasible) {
            table.addRow({s.label, "infeasible", "-", "-", "-"});
            continue;
        }

        const crypto::PasswordModel policy =
            passwords.withPopularRejected(s.rejectedFraction);
        const wearout::DeviceFactory factory(
            request.device, wearout::ProcessVariation::none());

        // MC: attacker gets as many attempts as this chip instance
        // physically serves; they win if the victim's password rank
        // falls within that.
        const sim::MonteCarlo engine(20260706, trials);
        const auto ci = engine.estimateProbability([&](Rng &rng) {
            const uint64_t hardwareBound =
                arch::sampleSerialCopiesTotalAccesses(
                    factory, design.width, design.threshold,
                    design.copies, rng);
            Rng user = rng.split(1);
            return policy.sampleGuessRank(user) <= hardwareBound;
        });
        ctx.keep(ci.estimate);

        table.addRow({s.label, formatCount(design.totalDevices),
                      formatGeneral(design.expectedSystemTotal, 7),
                      formatGeneral(ci.estimate, 3),
                      formatSci(policy.attackSuccessProbability(
                                    static_cast<uint64_t>(
                                        design.expectedSystemTotal)),
                                2)});
    }
    table.print(ctx.out());

    ctx.out() << "\nUnprotected baseline (no wearout bound): an attacker "
                 "with 1e10 attempts cracks with probability "
              << formatGeneral(
                     passwords.attackSuccessProbability(10000000000ULL), 3)
              << ".\nWith the limited-use connection the success "
                 "probability is pinned at the ~1-2% the password "
                 "distribution\nallows within ~91k-200k attempts — "
                 "matching the paper's security argument.\n";
    ctx.metric("items", static_cast<double>(4 * trials));
}
