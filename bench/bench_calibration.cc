/**
 * @file
 * Lot-calibration workflow (Sections 2.2, 7): fit Weibull parameters
 * from simulated qualification-test lifetimes, audit the nominal
 * design against the fitted lot, and price the recalibrated
 * architecture — the fabrication-cost vs area-cost decision table.
 */

#include "bench/harness.h"
#include "core/calibration.h"
#include "util/rng.h"
#include "util/table.h"
#include "wearout/weibull.h"

using namespace lemons;
using namespace lemons::core;

LEMONS_BENCH(lotCalibration, "calibration.lot_fit")
{
    ctx.out() << "=== Lot calibration: fit -> audit -> redesign "
                 "(assumed device: alpha=10, beta=12; LAB=100, "
                 "k=10%) ===\n\n";

    DesignRequest assumed;
    assumed.device = {10.0, 12.0};
    assumed.legitimateAccessBound = 100;
    assumed.kFraction = 0.1;

    struct Lot
    {
        const char *label;
        double alpha;
        double beta;
    };
    const Lot lots[] = {
        {"on spec", 10.0, 12.0},
        {"10% short-lived", 9.0, 12.0},
        {"30% short-lived", 7.0, 12.0},
        {"20% long-lived", 12.0, 12.0},
        {"sloppy shape (beta 6)", 10.0, 6.0},
        {"short and sloppy", 8.0, 5.0},
    };

    const uint64_t samplesPerLot = ctx.scaled(20000, 1000);
    Table table({"lot", "fitted (alpha, beta)", "nominal R(t)",
                 "nominal R(t+1)", "audit", "redesign cost"});
    for (const Lot &lot : lots) {
        const wearout::Weibull truth(lot.alpha, lot.beta);
        Rng rng(777);
        const auto report = calibrateAndRedesign(
            truth.sampleMany(rng, samplesPerLot), assumed);
        ctx.keep(report.fitted.alpha + report.fitted.beta);
        table.addRow(
            {lot.label,
             "(" + formatGeneral(report.fitted.alpha, 4) + ", " +
                 formatGeneral(report.fitted.beta, 4) + ")",
             formatGeneral(report.nominalReliabilityAtBound, 4),
             formatSci(report.nominalResidualPastBound, 2),
             report.nominalStillMeetsCriteria ? "PASS" : "FAIL",
             report.recalibratedDesign.feasible
                 ? formatGeneral(report.redesignCostRatio, 4) + "x"
                 : "infeasible"});
    }
    table.print(ctx.out());

    ctx.out()
        << "\nDrift in either direction fails the audit: short-lived "
           "lots break the minimum bound (R(t) < 99%),\nlong-lived lots "
           "break the security bound (R(t+1) > 1%). The redesign-cost "
           "column is the architectural\nprice of accepting the lot "
           "instead of paying the fab for tighter parameters — the "
           "trade-off question\nDESIGN.md's Section 1 bullet list poses "
           "and Section 7 of the paper leaves open.\n";
    ctx.metric("items", static_cast<double>(6 * samplesPerLot));
}
