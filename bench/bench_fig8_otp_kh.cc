/**
 * @file
 * Figure 8: one-time-pad success probability over (k, H) at
 * alpha = 10, beta = 1, n = 128 copies.
 *
 *  8a — receiver success (Eq. 10),
 *  8b — adversary success (Eq. 15),
 * plus the "success space" cells where the receiver wins and the
 * adversary loses, and Monte Carlo spot checks of both.
 */

#include <vector>

#include "bench/harness.h"
#include "core/explorer.h"
#include "sim/monte_carlo.h"
#include "util/table.h"
#include "wearout/population.h"

using namespace lemons;
using namespace lemons::core;

namespace {

const std::vector<uint64_t> kGrid = {1, 8, 16, 32, 48, 64, 96, 120, 128};
const std::vector<unsigned> hGrid = {1, 2, 4, 6, 8, 10, 12};

void
printGrid(lemons::bench::BenchContext &ctx, const char *title,
          bool receiver)
{
    ctx.out() << "--- " << title << " ---\n";
    std::vector<std::string> headers{"H \\ k"};
    for (uint64_t k : kGrid)
        headers.push_back(std::to_string(k));
    Table table(headers);
    for (unsigned h : hGrid) {
        const auto row =
            sweepOtpThresholdHeight(kGrid, {h}, 128, {10.0, 1.0});
        std::vector<std::string> cells{std::to_string(h)};
        for (const auto &point : row) {
            const double success = receiver ? point.receiverSuccess
                                            : point.adversarySuccess;
            cells.push_back(formatGeneral(success, 3));
            ctx.keep(success);
        }
        table.addRow(cells);
    }
    table.print(ctx.out());
    ctx.out() << "\n";
}

} // namespace

LEMONS_BENCH(fig8OtpGrids, "fig8.otp.analytic_grids")
{
    ctx.out() << "=== Figure 8: OTP success probability vs (k, H), "
                 "alpha=10 beta=1 n=128 ===\n\n";
    printGrid(ctx, "Fig 8a: receiver success probability", true);
    printGrid(ctx, "Fig 8b: adversary success probability", false);

    // Success space: receiver > 0.99 AND adversary < 0.01.
    ctx.out() << "--- success space (R = receiver wins, . = not) ---\n";
    for (unsigned h : hGrid) {
        ctx.out() << "H=" << h << (h < 10 ? " " : "") << " ";
        const auto row =
            sweepOtpThresholdHeight(kGrid, {h}, 128, {10.0, 1.0});
        for (const auto &point : row) {
            ctx.out() << (point.receiverSuccess > 0.99 &&
                                  point.adversarySuccess < 0.01
                              ? 'R'
                              : '.');
        }
        ctx.out() << "\n";
    }
    ctx.out() << "(columns: k = ";
    for (uint64_t k : kGrid)
        ctx.out() << k << " ";
    ctx.out() << ")\n\n";
    ctx.metric("items",
               static_cast<double>(3 * kGrid.size() * hGrid.size()));
}

LEMONS_BENCH(fig8OtpMonteCarlo, "fig8.otp.monte_carlo")
{
    // Monte Carlo spot check at the paper's working point H=4, k=8 and
    // at the adversary-relevant point H=2, k=8.
    const wearout::DeviceFactory factory({10.0, 1.0},
                                         wearout::ProcessVariation::none());
    OtpParams params;
    params.device = {10.0, 1.0};
    params.copies = 128;
    params.threshold = 8;
    const std::vector<uint8_t> key(32, 0x42);

    params.height = 4;
    const uint64_t pads = ctx.scaled(300, 30);
    const sim::MonteCarlo engine(77, pads);
    const auto recvCi = engine.estimateProbability([&](Rng &rng) {
        OneTimePad pad(params, key, 3, factory, rng);
        return pad.retrieve(3).has_value();
    });
    ctx.out() << "MC receiver success (H=4, k=8, " << pads << " pads): "
              << formatGeneral(recvCi.estimate, 4) << " [analytic "
              << formatGeneral(OtpAnalytics(params).receiverSuccess(), 4)
              << "]\n";
    ctx.keep(recvCi.estimate);

    params.height = 2;
    const auto advCi = engine.estimateProbability([&](Rng &rng) {
        OneTimePad pad(params, key, 1, factory, rng);
        Rng attacker = rng.split(13);
        return pad.randomPathAttack(attacker).has_value();
    });
    ctx.out() << "MC adversary success (H=2, k=8, " << pads << " pads): "
              << formatGeneral(advCi.estimate, 4) << " [analytic "
              << formatGeneral(OtpAnalytics(params).adversarySuccess(), 4)
              << "]\n";
    ctx.keep(advCi.estimate);
    ctx.metric("items", static_cast<double>(2 * pads));
}
