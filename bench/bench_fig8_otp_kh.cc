/**
 * @file
 * Figure 8: one-time-pad success probability over (k, H) at
 * alpha = 10, beta = 1, n = 128 copies.
 *
 *  8a — receiver success (Eq. 10),
 *  8b — adversary success (Eq. 15),
 * plus the "success space" cells where the receiver wins and the
 * adversary loses, and Monte Carlo spot checks of both.
 */

#include <iostream>
#include <vector>

#include "core/explorer.h"
#include "sim/monte_carlo.h"
#include "util/csv.h"
#include "util/table.h"
#include "wearout/population.h"

using namespace lemons;
using namespace lemons::core;

namespace {

const std::vector<uint64_t> kGrid = {1, 8, 16, 32, 48, 64, 96, 120, 128};
const std::vector<unsigned> hGrid = {1, 2, 4, 6, 8, 10, 12};
std::string csvDir;

void
printGrid(const char *title, bool receiver)
{
    std::cout << "--- " << title << " ---\n";
    std::vector<std::string> headers{"H \\ k"};
    for (uint64_t k : kGrid)
        headers.push_back(std::to_string(k));
    Table table(headers);
    for (unsigned h : hGrid) {
        const auto row =
            sweepOtpThresholdHeight(kGrid, {h}, 128, {10.0, 1.0});
        std::vector<std::string> cells{std::to_string(h)};
        for (const auto &point : row)
            cells.push_back(formatGeneral(receiver
                                              ? point.receiverSuccess
                                              : point.adversarySuccess,
                                          3));
        table.addRow(cells);
    }
    table.print(std::cout);
    if (!csvDir.empty()) {
        std::vector<std::vector<std::string>> rows{
            {"height", "k", "success"}};
        for (unsigned h : hGrid) {
            const auto row =
                sweepOtpThresholdHeight(kGrid, {h}, 128, {10.0, 1.0});
            for (const auto &point : row) {
                rows.push_back({std::to_string(h),
                                std::to_string(point.params.threshold),
                                formatSci(receiver
                                              ? point.receiverSuccess
                                              : point.adversarySuccess,
                                          6)});
            }
        }
        const std::string name =
            csvDir + (receiver ? "/fig8a.csv" : "/fig8b.csv");
        if (writeCsvFile(name, rows))
            std::cout << "(wrote " << name << ")\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        csvDir = argv[1];
    std::cout << "=== Figure 8: OTP success probability vs (k, H), "
                 "alpha=10 beta=1 n=128 ===\n\n";
    printGrid("Fig 8a: receiver success probability", true);
    printGrid("Fig 8b: adversary success probability", false);

    // Success space: receiver > 0.99 AND adversary < 0.01.
    std::cout << "--- success space (R = receiver wins, . = not) ---\n";
    for (unsigned h : hGrid) {
        std::cout << "H=" << h << (h < 10 ? " " : "") << " ";
        const auto row =
            sweepOtpThresholdHeight(kGrid, {h}, 128, {10.0, 1.0});
        for (const auto &point : row) {
            std::cout << (point.receiverSuccess > 0.99 &&
                                  point.adversarySuccess < 0.01
                              ? 'R'
                              : '.');
        }
        std::cout << "\n";
    }
    std::cout << "(columns: k = ";
    for (uint64_t k : kGrid)
        std::cout << k << " ";
    std::cout << ")\n\n";

    // Monte Carlo spot check at the paper's working point H=4, k=8 and
    // at the adversary-relevant point H=2, k=8.
    const wearout::DeviceFactory factory({10.0, 1.0},
                                         wearout::ProcessVariation::none());
    OtpParams params;
    params.device = {10.0, 1.0};
    params.copies = 128;
    params.threshold = 8;
    const std::vector<uint8_t> key(32, 0x42);

    params.height = 4;
    const sim::MonteCarlo engine(77, 300);
    const auto recvCi = engine.estimateProbability([&](Rng &rng) {
        OneTimePad pad(params, key, 3, factory, rng);
        return pad.retrieve(3).has_value();
    });
    std::cout << "MC receiver success (H=4, k=8, 300 pads): "
              << formatGeneral(recvCi.estimate, 4) << " [analytic "
              << formatGeneral(OtpAnalytics(params).receiverSuccess(), 4)
              << "]\n";

    params.height = 2;
    const auto advCi = engine.estimateProbability([&](Rng &rng) {
        OneTimePad pad(params, key, 1, factory, rng);
        Rng attacker = rng.split(13);
        return pad.randomPathAttack(attacker).has_value();
    });
    std::cout << "MC adversary success (H=2, k=8, 300 pads): "
              << formatGeneral(advCi.estimate, 4) << " [analytic "
              << formatGeneral(OtpAnalytics(params).adversarySuccess(), 4)
              << "]\n";
    return 0;
}
