/**
 * @file
 * Table 1: area cost of the limited-use connection for four device
 * technologies, with and without redundant encoding (k = 10% n).
 *
 * Paper values (mm^2):
 *   (10.51, 16): 1.27e-4 plain / 3.2e-5 encoded
 *   (10.21, 10): 2.03e-3 plain / 1.3e-4 encoded
 *   (19.68, 16): 2.03e-3 plain / 1.3e-4 encoded
 *   (18.69, 10): 5.2e-1 plain / 1.3e-4 encoded
 */

#include "arch/cost_model.h"
#include "bench/harness.h"
#include "core/design_solver.h"
#include "util/table.h"

using namespace lemons;
using core::Design;
using core::DesignRequest;
using core::DesignSolver;

namespace {

Design
solve(double alpha, double beta, double kFraction)
{
    DesignRequest request;
    request.device = {alpha, beta};
    request.legitimateAccessBound = 91250;
    request.kFraction = kFraction;
    return DesignSolver(request).solve();
}

std::string
areaCell(const Design &design, double kFraction,
         const arch::CostModel &model)
{
    if (!design.feasible)
        return "infeasible";
    if (kFraction == 0.0)
        return formatSci(model.connectionAreaMm2(design.totalDevices), 2);
    return formatSci(model.encodedConnectionAreaMm2(
                         design.totalDevices, design.width,
                         design.threshold, design.copies),
                     2);
}

} // namespace

LEMONS_BENCH(table1Area, "table1.area")
{
    ctx.out() << "=== Table 1: area cost of the limited-use connection "
                 "(mm^2) ===\n\n";
    const arch::CostModel model;
    const double pairs[][2] = {
        {10.51, 16.0}, {10.21, 10.0}, {19.68, 16.0}, {18.69, 10.0}};
    const char *paperPlain[] = {"1.27e-4", "2.03e-3", "2.03e-3", "5.2e-1"};
    const char *paperCoded[] = {"3.2e-5", "1.3e-4", "1.3e-4", "1.3e-4"};

    Table table({"(alpha, beta)", "plain #NEMS", "plain area",
                 "paper plain", "coded #NEMS", "coded area",
                 "paper coded"});
    for (size_t i = 0; i < 4; ++i) {
        const double alpha = pairs[i][0];
        const double beta = pairs[i][1];
        const Design plain = solve(alpha, beta, 0.0);
        const Design coded = solve(alpha, beta, 0.1);
        table.addRow({"(" + formatGeneral(alpha, 4) + ", " +
                          formatGeneral(beta, 3) + ")",
                      plain.feasible ? formatCount(plain.totalDevices)
                                     : "-",
                      areaCell(plain, 0.0, model), paperPlain[i],
                      coded.feasible ? formatCount(coded.totalDevices)
                                     : "-",
                      areaCell(coded, 0.1, model), paperCoded[i]});
        ctx.keep(static_cast<double>(plain.totalDevices) +
                 static_cast<double>(coded.totalDevices));
    }
    table.print(ctx.out());
    ctx.out()
        << "\nArea model: 100 nm^2 contact + 1 nm^2 spacing per switch; "
           "encoded designs add RS-chunked component-key\nstorage (256 x "
           "n/k bits per copy at 50 nm^2 per bit). Our counts follow the "
           "strict 99%/1% criteria (see\nEXPERIMENTS.md), so individual "
           "(alpha, beta) points differ from the paper's at unfavourable "
           "integer-grid\nalignments — the headline (encoding collapses "
           "the 5.2e-1 mm^2 outlier to sub-1e-3) is reproduced.\n";
    ctx.metric("items", 8.0); // 8 solver runs
}
