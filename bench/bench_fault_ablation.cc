/**
 * @file
 * Fault-injection ablation: how manufacturing defects erode the
 * paper's limited-use guarantees.
 *
 * The analyses of Sections 4-5 assume every NEMS contact is fail-open:
 * a worn switch never closes again, so access counts are bounded by
 * construction. Real lots also contain fail-short (stuck-closed)
 * contacts — which never wear out and silently void the access bound —
 * and infant-mortality devices, which die far before the designed
 * per-copy bound and erode the legitimate user's side instead.
 *
 * This bench sweeps the stuck-closed rate epsilon and the infant-
 * mortality fraction over a solved LAB = 100 design and reports both
 * sides of the trade: P(architecture serves >= LAB accesses) for the
 * legitimate user, and P(some copy is stuck-closed-dominated), i.e.
 * the attacker gets unbounded accesses. The latter is cross-checked
 * against the analytic 1 - (1 - BinTail(n, k, eps))^N.
 *
 * Runs on the fault-tolerant Monte Carlo engine: unbounded trials
 * return +inf and are quarantined by TrialReport rather than poisoning
 * the bounded-total statistics.
 */

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "arch/structures_sim.h"
#include "bench/harness.h"
#include "core/design_solver.h"
#include "fault/fault_plan.h"
#include "sim/monte_carlo.h"
#include "util/math.h"
#include "util/stats.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

namespace {

constexpr uint64_t kSeed = 20170624; // ISCA '17
constexpr double kLab = 100.0;

struct CellResult
{
    double pLabSurvival;       ///< P(total accesses >= LAB)
    double pUnboundedMc;       ///< P(some copy never dies), Monte Carlo
    double pUnboundedAnalytic; ///< 1 - (1 - BinTail(n, k, eps))^N
    double meanBoundedTotal;   ///< mean total over bounded trials
    double q001BoundedTotal;   ///< 0.1% quantile (legitimate-user tail)
    double q999BoundedTotal;   ///< 99.9% quantile (attacker's extra tries)
    uint64_t failedTrials;     ///< trials that threw (expect 0)
};

CellResult
runCell(const Design &design, const fault::FaultyDeviceFactory &factory,
        uint64_t trials)
{
    const sim::MonteCarlo mc(kSeed, trials);
    const sim::TrialReport report = mc.run([&](Rng &rng) {
        const arch::FaultyArchitectureOutcome outcome =
            arch::sampleFaultySerialCopiesOutcome(
                factory, design.width, design.threshold, design.copies, rng);
        if (outcome.unbounded)
            return std::numeric_limits<double>::infinity();
        return static_cast<double>(outcome.totalAccesses);
    });

    uint64_t labSurvivals = 0;
    std::vector<double> bounded;
    bounded.reserve(report.samples.size());
    for (double total : report.samples) {
        if (total >= kLab) // +inf counts: unbounded certainly covers LAB
            ++labSurvivals;
        if (std::isfinite(total))
            bounded.push_back(total);
    }

    const double eps = factory.plan().stuckClosedRate;
    const double pCopyStuck = binomialTailAtLeast(
        design.width, design.threshold, eps);
    const double pAnyCopyStuck =
        1.0 - std::pow(1.0 - pCopyStuck,
                       static_cast<double>(design.copies));

    CellResult cell;
    cell.pLabSurvival =
        static_cast<double>(labSurvivals) / static_cast<double>(trials);
    cell.pUnboundedMc =
        static_cast<double>(report.nonFiniteTrials.size()) /
        static_cast<double>(trials);
    cell.pUnboundedAnalytic = pAnyCopyStuck;
    if (bounded.empty()) {
        cell.meanBoundedTotal = std::numeric_limits<double>::quiet_NaN();
        cell.q001BoundedTotal = std::numeric_limits<double>::quiet_NaN();
        cell.q999BoundedTotal = std::numeric_limits<double>::quiet_NaN();
    } else {
        cell.meanBoundedTotal = report.stats.mean();
        cell.q001BoundedTotal = quantile(bounded, 0.001);
        cell.q999BoundedTotal = quantile(bounded, 0.999);
    }
    cell.failedTrials = report.failedTrials.size();
    return cell;
}

uint64_t
sweepDesign(lemons::bench::BenchContext &ctx, const std::string &label,
            const Design &design, const wearout::DeviceFactory &base,
            uint64_t trials)
{
    ctx.out() << label << ": n = " << design.width << ", k = "
              << design.threshold << ", N = " << design.copies
              << " copies (" << formatCount(design.totalDevices)
              << " switches)\n";

    Table table({"stuck eps", "infant frac", "P(total>=LAB)",
                 "mean bounded", "q0.1", "q99.9", "P(unbounded) MC",
                 "P(unbounded) analytic"});
    uint64_t failures = 0;
    for (double eps : {0.0, 1e-4, 1e-3, 1e-2}) {
        for (double infant : {0.0, 0.01, 0.05}) {
            fault::FaultPlan plan;
            plan.stuckClosedRate = eps;
            plan.infantFraction = infant;
            const fault::FaultyDeviceFactory factory(base, plan);
            const CellResult cell = runCell(design, factory, trials);
            failures += cell.failedTrials;
            ctx.keep(cell.pLabSurvival + cell.pUnboundedMc);

            table.addRow({formatGeneral(eps, 3), formatGeneral(infant, 3),
                          formatGeneral(cell.pLabSurvival, 4),
                          formatGeneral(cell.meanBoundedTotal, 6),
                          formatGeneral(cell.q001BoundedTotal, 6),
                          formatGeneral(cell.q999BoundedTotal, 6),
                          formatGeneral(cell.pUnboundedMc, 4),
                          formatGeneral(cell.pUnboundedAnalytic, 4)});
        }
    }
    table.print(ctx.out());
    ctx.out() << "\n";
    return failures;
}

} // namespace

LEMONS_BENCH(faultAblation, "ablation.fault_injection")
{
    ctx.out() << "=== Fault-injection ablation (targeting-scale design, "
                 "LAB = 100) ===\n\n";

    const wearout::DeviceSpec device{10.0, 12.0};
    const wearout::DeviceFactory base(device,
                                      wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(2000, 100);
    ctx.out() << trials << " trials per cell, seed " << kSeed << "\n\n";

    DesignRequest encoded;
    encoded.device = device;
    encoded.legitimateAccessBound = 100;
    encoded.kFraction = 0.1;
    uint64_t failures = sweepDesign(
        ctx, "Encoded design (k/n = 10%)", DesignSolver(encoded).solve(),
        base, trials);

    DesignRequest unencoded = encoded;
    unencoded.kFraction = 0.0; // plain 1-of-n structures (Fig 2c)
    failures += sweepDesign(ctx, "Unencoded design (1-of-n)",
                            DesignSolver(unencoded).solve(), base, trials);

    if (failures > 0)
        ctx.out() << "warning: " << failures
                  << " trials threw and were quarantined\n";

    ctx.out()
        << "The decisive variable is the share threshold k: a copy "
           "serves unbounded accesses only\nwhen >= k of its contacts "
           "are stuck closed. In the unencoded 1-of-n design k = 1, so "
           "a\nsingle fail-short contact among its ~3e5 switches voids "
           "the access bound — already at\nepsilon = 1e-4 essentially "
           "every fabricated architecture is broken, and the analytic\n"
           "column "
           "1 - (1 - BinTail(n, k, eps))^N tracks the Monte Carlo "
           "estimate. The k = 11 encoded\ndesign suppresses the "
           "violation probability to ~1e-7 even at the same epsilon: "
           "the\nredundant encoding the paper introduces for "
           "*reliability* doubles as protection against\nfail-short "
           "defects. Infant mortality pushes the other way — it only "
           "shaves the bounded\ntotals (mean and lower tail) and never "
           "helps the attacker, so burn-in screening is a\nyield "
           "concern, while stuck-closed screening is a security "
           "requirement.\n";
    ctx.metric("items", static_cast<double>(24 * trials));
}
