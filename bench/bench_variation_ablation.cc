/**
 * @file
 * Process-variation ablation (Sections 2.2, 4.3.1, 7): how lot-level
 * manufacturing variation erodes the designed usage bounds.
 *
 * The paper trades fabrication cost (consistent devices: high beta,
 * low lot spread) against area cost (architectural redundancy). Here
 * we fabricate the same solved design from increasingly variable lots
 * and measure the empirical min/max usage bounds — quantifying how
 * much lot spread a design tolerates before its guarantees crack.
 */

#include "bench/harness.h"
#include "core/design_solver.h"
#include "core/usage_bounds.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

LEMONS_BENCH(variationAblation, "ablation.process_variation")
{
    ctx.out() << "=== Process-variation ablation (targeting-scale "
                 "design, LAB = 100) ===\n\n";

    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    ctx.out() << "Design (solved for zero lot variation): "
              << formatCount(design.totalDevices) << " switches, nominal "
              << formatCount(design.copies * design.perCopyBound)
              << " accesses\n\n";

    const uint64_t trials = ctx.scaled(2000, 100);
    Table table({"alpha sigma", "beta sigma", "mean total", "q0.1%",
                 "q99.9%", "min bound held?"});
    for (double alphaSigma : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        const wearout::ProcessVariation variation{alphaSigma, 0.0};
        const UsageBounds bounds = estimateUsageBounds(
            design, request.device, variation, trials, 1234);
        ctx.keep(bounds.meanTotalAccesses);
        table.addRow({formatGeneral(alphaSigma, 3), "0",
                      formatGeneral(bounds.meanTotalAccesses, 6),
                      formatGeneral(bounds.q001, 6),
                      formatGeneral(bounds.q999, 6),
                      bounds.q001 >= 100.0 ? "yes" : "NO"});
    }
    for (double betaSigma : {0.05, 0.1, 0.2}) {
        const wearout::ProcessVariation variation{0.0, betaSigma};
        const UsageBounds bounds = estimateUsageBounds(
            design, request.device, variation, trials, 1234);
        ctx.keep(bounds.meanTotalAccesses);
        table.addRow({"0", formatGeneral(betaSigma, 3),
                      formatGeneral(bounds.meanTotalAccesses, 6),
                      formatGeneral(bounds.q001, 6),
                      formatGeneral(bounds.q999, 6),
                      bounds.q001 >= 100.0 ? "yes" : "NO"});
    }
    table.print(ctx.out());

    ctx.out()
        << "\nModerate lot spread mostly widens the *upper* tail (an "
           "attacker gains a few extra attempts);\nlarge alpha spread "
           "eventually breaks the minimum bound — the fabrication-cost "
           "vs area-cost trade-off\nthe paper discusses: pay for "
           "consistent devices, or pay for wider structures designed "
           "against the\nspread. Note the paper reduces sensitivity to "
           "the scale parameter but not the shape parameter\n"
           "(Section 7); the beta-sigma rows show the same asymmetry.\n";
    ctx.metric("items", static_cast<double>(8 * trials));
}
