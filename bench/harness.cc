#include "bench/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <streambuf>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/argparse.h"
#include "util/philox.h"

namespace lemons::bench {

namespace {

/** Swallows everything; backs BenchContext::out() without --report. */
class NullBuffer : public std::streambuf
{
  protected:
    int overflow(int ch) override { return ch; }
};

NullBuffer nullBuffer;
std::ostream nullStream(&nullBuffer);

struct Entry
{
    std::string name;
    BenchFn fn;
};

/** Function-local static so registration order cannot race init order. */
std::vector<Entry> &
registry()
{
    static std::vector<Entry> entries;
    return entries;
}

/** Defeats whole-program elision of the benchmark bodies. */
volatile double globalSink = 0.0;

struct WallStats
{
    double medianNs = 0.0;
    double madNs = 0.0;
    double minNs = 0.0;
};

double
medianOf(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/** Median / median-absolute-deviation / min of the rep wall times. */
WallStats
summarize(const std::vector<double> &wallNs)
{
    WallStats stats;
    stats.medianNs = medianOf(wallNs);
    stats.minNs = *std::min_element(wallNs.begin(), wallNs.end());
    std::vector<double> deviations;
    deviations.reserve(wallNs.size());
    for (double w : wallNs)
        deviations.push_back(std::abs(w - stats.medianNs));
    stats.madNs = medianOf(std::move(deviations));
    return stats;
}

struct Options
{
    bool list = false;
    bool quick = false;
    bool report = false;
    bool json = false;
    std::string jsonPath = "BENCH_results.json";
    std::string filter;
    double scale = 1.0;
    unsigned reps = 5;
    unsigned warmup = 1;
    uint64_t seed = 7;
};

/**
 * Seed for one rep of one benchmark: the canonical SplitMix64 stream
 * over (base seed, rep index). Each rep samples a fresh stream, so
 * the median aggregates i.i.d. repetitions instead of replaying one
 * stream --reps times; the derivation is deterministic, so a
 * before/after pair at the same --seed still compares identical
 * per-rep seeds.
 */
uint64_t
repSeed(uint64_t base, uint64_t rep)
{
    uint64_t state = base + rep * 0x9E3779B97F4A7C15ULL;
    return philox::splitMix64(state);
}

/**
 * Parse argv into @p opts via the shared ArgParser grammar. Returns
 * the process exit code when parsing terminates the run (--help, or a
 * usage error), std::nullopt when the benchmarks should proceed.
 */
std::optional<int>
parseOptions(int argc, char **argv, Options &opts)
{
    ArgParser parser(
        "lemons-bench",
        "Runs the registered paper-reproduction benchmarks and reports\n"
        "median/MAD/min wall times plus obs counter deltas.");
    parser.flag("--list", &opts.list,
                "print registered benchmark names and exit");
    parser.value("--filter", &opts.filter, "SUBSTR",
                 "run only benchmarks whose name contains SUBSTR");
    parser.flag("--quick", &opts.quick,
                "CI scale: caps --scale at 0.05 and --reps at 3");
    parser.value("--scale", &opts.scale, "F",
                 "workload scale factor in (0, 1]");
    parser.value("--reps", &opts.reps, "N",
                 "timed repetitions per benchmark (default 5)");
    parser.value("--warmup", &opts.warmup, "N",
                 "untimed warmup runs (default 1)");
    parser.value("--seed", &opts.seed, "N",
                 "base RNG seed; rep r runs with SplitMix64(seed, r) "
                 "(default 7)");
    parser.optionalValue("--json", &opts.json, &opts.jsonPath, "PATH",
                         "write BENCH_results.json (default path: "
                         "BENCH_results.json)");
    parser.flag("--report", &opts.report,
                "print the full paper tables while running");
    parser.epilog("examples:\n"
                  "  lemons-bench --quick --json\n"
                  "  lemons-bench --filter solver --reps 9 --report");

    switch (parser.parse(argc, argv)) {
    case ArgParser::Outcome::Ok:
        break;
    case ArgParser::Outcome::Help:
        return 0;
    case ArgParser::Outcome::Error:
        std::cerr << parser.error() << '\n' << parser.helpText();
        return 2;
    }

    if (!(opts.scale > 0.0) || opts.scale > 1.0) {
        std::cerr << "lemons-bench: --scale must be in (0, 1]\n";
        return 2;
    }
    if (opts.reps < 1) {
        std::cerr << "lemons-bench: --reps must be >= 1\n";
        return 2;
    }
    if (opts.quick) {
        // One CI-friendly knob: small workloads, fewer reps.
        opts.scale = std::min(opts.scale, 0.05);
        opts.reps = std::min(opts.reps, 3u);
    }
    return std::nullopt;
}

struct Result
{
    std::string name;
    unsigned reps = 0;
    WallStats wall;
    std::map<std::string, double, std::less<>> metrics;
    std::vector<obs::CounterSample> counters;
    std::vector<obs::TimerSample> timers;
};

/** Warmup + timed reps of one benchmark; obs deltas from the last rep. */
Result
runOne(const Entry &entry, const Options &opts)
{
    Result result;
    result.name = entry.name;
    result.reps = opts.reps;

    // Warmup seeds start past the timed range so a warmup run never
    // shares (and never pre-walks) a timed rep's stream.
    for (unsigned i = 0; i < opts.warmup; ++i) {
        BenchContext ctx(opts.scale, false, nullStream,
                         repSeed(opts.seed, opts.reps + i));
        entry.fn(ctx);
        globalSink = globalSink + ctx.kept();
    }

    std::vector<double> wallNs;
    wallNs.reserve(opts.reps);
    for (unsigned rep = 0; rep < opts.reps; ++rep) {
        // The paper tables only print on the last rep so that table
        // formatting does not pollute the timing of earlier reps more
        // than once.
        const bool reportThisRep = opts.report && rep + 1 == opts.reps;
        BenchContext ctx(opts.scale, reportThisRep,
                         reportThisRep ? std::cout : nullStream,
                         repSeed(opts.seed, rep));
        const obs::Snapshot before = obs::Registry::global().snapshot();
        const auto start = std::chrono::steady_clock::now();
        entry.fn(ctx);
        const auto elapsed = std::chrono::steady_clock::now() - start;
        globalSink = globalSink + ctx.kept();
        wallNs.push_back(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
        if (rep + 1 == opts.reps) {
            const obs::Snapshot after = obs::Registry::global().snapshot();
            result.counters = after.countersSince(before);
            result.timers = after.timersSince(before);
            result.metrics = ctx.metrics();
        }
    }
    result.wall = summarize(wallNs);

    // Derived throughput when the body reported its work item count.
    const auto items = result.metrics.find("items");
    if (items != result.metrics.end() && result.wall.medianNs > 0.0)
        result.metrics["items_per_sec"] =
            items->second * 1e9 / result.wall.medianNs;
    return result;
}

std::string
formatNs(double ns)
{
    char buffer[64];
    if (ns >= 1e9)
        std::snprintf(buffer, sizeof buffer, "%.3f s", ns / 1e9);
    else if (ns >= 1e6)
        std::snprintf(buffer, sizeof buffer, "%.3f ms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buffer, sizeof buffer, "%.3f us", ns / 1e3);
    else
        std::snprintf(buffer, sizeof buffer, "%.0f ns", ns);
    return buffer;
}

void
printHuman(const std::vector<Result> &results)
{
    size_t width = 0;
    for (const Result &r : results)
        width = std::max(width, r.name.size());
    for (const Result &r : results) {
        std::ostringstream line;
        line << r.name << std::string(width - r.name.size() + 2, ' ')
             << "median " << formatNs(r.wall.medianNs) << "  mad "
             << formatNs(r.wall.madNs) << "  min "
             << formatNs(r.wall.minNs);
        const auto ips = r.metrics.find("items_per_sec");
        if (ips != r.metrics.end()) {
            char rate[48];
            std::snprintf(rate, sizeof rate, "  %.3g items/s",
                          ips->second);
            line << rate;
        }
        std::cout << line.str() << "\n";
    }
}

void
writeJson(std::ostream &out, const std::vector<Result> &results,
          const Options &opts)
{
    obs::JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.value("lemons-bench/1");
    json.key("quick");
    json.value(opts.quick);
    json.key("scale");
    json.value(opts.scale);
    json.key("reps");
    json.value(static_cast<uint64_t>(opts.reps));
    json.key("warmup");
    json.value(static_cast<uint64_t>(opts.warmup));
    json.key("benchmarks");
    json.beginArray();
    for (const Result &r : results) {
        json.beginObject();
        json.key("name");
        json.value(r.name);
        json.key("reps");
        json.value(static_cast<uint64_t>(r.reps));
        json.key("wall_ns");
        json.beginObject();
        json.key("median");
        json.value(r.wall.medianNs);
        json.key("mad");
        json.value(r.wall.madNs);
        json.key("min");
        json.value(r.wall.minNs);
        json.endObject();
        json.key("metrics");
        json.beginObject();
        for (const auto &[name, value] : r.metrics) {
            json.key(name);
            json.value(value);
        }
        json.endObject();
        json.key("counters");
        json.beginObject();
        for (const obs::CounterSample &c : r.counters) {
            json.key(c.name);
            json.value(c.value);
        }
        json.endObject();
        json.key("timers");
        json.beginObject();
        for (const obs::TimerSample &t : r.timers) {
            json.key(t.name);
            json.beginObject();
            json.key("count");
            json.value(t.count);
            json.key("total_ns");
            json.value(t.totalNs);
            json.endObject();
        }
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
}

} // namespace

BenchContext::BenchContext(double scaleFactor, bool reportTables,
                           std::ostream &reportSink, uint64_t streamSeed)
    : factor(scaleFactor), report(reportTables), repSeed(streamSeed),
      sink(reportSink)
{
}

uint64_t
BenchContext::scaled(uint64_t full, uint64_t floor) const
{
    const double scaledValue = static_cast<double>(full) * factor;
    const auto result = static_cast<uint64_t>(scaledValue);
    return std::max(result, floor);
}

void
BenchContext::metric(std::string_view name, double value)
{
    values[std::string(name)] = value;
}

bool
registerBench(std::string name, BenchFn fn)
{
    for (const Entry &entry : registry()) {
        if (entry.name == name) {
            std::fprintf(stderr,
                         "lemons-bench: duplicate benchmark name '%s'\n",
                         name.c_str());
            std::abort();
        }
    }
    registry().push_back(Entry{std::move(name), std::move(fn)});
    return true;
}

size_t
registeredCount()
{
    return registry().size();
}

int
runMain(int argc, char **argv)
{
    Options opts;
    if (const std::optional<int> exitCode =
            parseOptions(argc, argv, opts))
        return *exitCode;

    std::vector<Entry> selected;
    for (const Entry &entry : registry()) {
        if (opts.filter.empty() ||
            entry.name.find(opts.filter) != std::string::npos)
            selected.push_back(entry);
    }
    std::sort(selected.begin(), selected.end(),
              [](const Entry &a, const Entry &b) { return a.name < b.name; });

    if (opts.list) {
        for (const Entry &entry : selected)
            std::cout << entry.name << "\n";
        return 0;
    }
    if (selected.empty()) {
        std::cerr << "lemons-bench: no benchmark matches filter '"
                  << opts.filter << "'\n";
        return 1;
    }

    std::vector<Result> results;
    results.reserve(selected.size());
    for (const Entry &entry : selected) {
        std::cout << "[" << results.size() + 1 << "/" << selected.size()
                  << "] " << entry.name << "\n"
                  << std::flush;
        results.push_back(runOne(entry, opts));
    }

    std::cout << "\n";
    printHuman(results);

    if (opts.json) {
        std::ofstream file(opts.jsonPath);
        if (!file) {
            std::cerr << "lemons-bench: cannot write '" << opts.jsonPath
                      << "'\n";
            return 1;
        }
        writeJson(file, results, opts);
        std::cout << "\nwrote " << opts.jsonPath << "\n";
    }
    return 0;
}

} // namespace lemons::bench
