/**
 * @file
 * Throughput microbenchmarks for the Monte Carlo substrate: Weibull
 * sampling, structure-failure sampling, and whole-architecture trials
 * — the costs behind every empirical curve in the reproduction.
 */

#include <string>

#include "arch/structures_sim.h"
#include "bench/harness.h"
#include "sim/monte_carlo.h"
#include "wearout/population.h"
#include "wearout/weibull.h"

using namespace lemons;
using lemons::bench::BenchContext;
using lemons::bench::registerBench;

LEMONS_BENCH(mcWeibullSample, "mc.weibull_sample")
{
    const wearout::Weibull model(14.0, 8.0);
    Rng rng(1);
    const uint64_t iters = ctx.scaled(1000000, 10000);
    for (uint64_t i = 0; i < iters; ++i)
        ctx.keep(model.sample(rng));
    ctx.metric("items", static_cast<double>(iters));
}

LEMONS_BENCH_REGISTRAR(registerStructureSampleBenches)
{
    constexpr size_t kPoints[][2] = {
        {40, 1}, {60, 30}, {175, 18}, {2000, 200}};
    for (const auto &point : kPoints) {
        const size_t n = point[0];
        const size_t k = point[1];
        registerBench("mc.structure_sample.n" + std::to_string(n) + ".k" +
                          std::to_string(k),
                      [n, k](BenchContext &ctx) {
                          const wearout::DeviceFactory factory(
                              {14.0, 8.0},
                              wearout::ProcessVariation::none());
                          Rng rng(2);
                          const uint64_t iters =
                              ctx.scaled(2000000 / n, 100);
                          for (uint64_t i = 0; i < iters; ++i)
                              ctx.keep(static_cast<double>(
                                  arch::sampleParallelSurvivedAccesses(
                                      factory, n, k, rng)));
                          ctx.metric("items", static_cast<double>(
                                                  iters * n));
                      });
    }
}

LEMONS_BENCH(mcFullArchitectureTrial, "mc.full_architecture_trial")
{
    // One full lifetime of the (alpha=14, beta=8, k=10%) connection:
    // 6,084 copies x 175 devices, scaled down under --quick.
    const wearout::DeviceFactory factory({14.0, 8.0},
                                         wearout::ProcessVariation::none());
    Rng rng(3);
    const uint64_t copies = ctx.scaled(6084, 100);
    ctx.keep(static_cast<double>(arch::sampleSerialCopiesTotalAccesses(
        factory, 175, 18, copies, rng)));
    ctx.metric("items", static_cast<double>(175 * copies));
}

LEMONS_BENCH(mcEstimateProbability, "mc.estimate_probability")
{
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(20000, 500);
    const sim::MonteCarlo engine(7, trials);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        return arch::sampleParallelSurvivedAccesses(factory, 40, 1, rng) >=
               10;
    });
    ctx.keep(ci.estimate);
    ctx.metric("items", static_cast<double>(trials));
}

LEMONS_BENCH(mcRunStatsParallel, "mc.run_stats_parallel")
{
    // Same metric through the threaded entry point; on a single-core
    // host this mostly measures the partition/merge overhead.
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(20000, 500);
    const sim::MonteCarlo engine(7, trials);
    const auto stats = engine.runStatsParallel(
        [&](Rng &rng) {
            return static_cast<double>(
                arch::sampleParallelSurvivedAccesses(factory, 40, 1, rng));
        },
        2);
    ctx.keep(stats.mean());
    ctx.metric("items", static_cast<double>(trials));
}
