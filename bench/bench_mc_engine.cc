/**
 * @file
 * Throughput microbenchmarks for the Monte Carlo substrate: Weibull
 * sampling, structure-failure sampling, whole-architecture trials, and
 * the batched lemons::engine execution path — the costs behind every
 * empirical curve in the reproduction.
 *
 * The mc_engine.* group carries its own before/after pair: run_large
 * exercises engine::runTrials while run_large_legacy_spawn replays the
 * retired per-call std::thread implementation on the identical metric
 * and seed, so `lemons-bench --filter mc_engine --report` shows the
 * engine speedup directly.
 */

#include <string>
#include <thread>
#include <vector>

#include "arch/structures_sim.h"
#include "bench/harness.h"
#include "engine/batch.h"
#include "engine/cache.h"
#include "obs/metrics.h"
#include "sim/monte_carlo.h"
#include "wearout/population.h"
#include "wearout/weibull.h"

using namespace lemons;
using lemons::bench::BenchContext;
using lemons::bench::registerBench;

LEMONS_BENCH(mcWeibullSample, "mc.weibull_sample")
{
    const wearout::Weibull model(14.0, 8.0);
    Rng rng(ctx.seed());
    const uint64_t iters = ctx.scaled(1000000, 10000);
    for (uint64_t i = 0; i < iters; ++i)
        ctx.keep(model.sample(rng));
    ctx.metric("items", static_cast<double>(iters));
}

LEMONS_BENCH_REGISTRAR(registerStructureSampleBenches)
{
    constexpr size_t kPoints[][2] = {
        {40, 1}, {60, 30}, {175, 18}, {2000, 200}};
    for (const auto &point : kPoints) {
        const size_t n = point[0];
        const size_t k = point[1];
        registerBench("mc.structure_sample.n" + std::to_string(n) + ".k" +
                          std::to_string(k),
                      [n, k](BenchContext &ctx) {
                          const wearout::DeviceFactory factory(
                              {14.0, 8.0},
                              wearout::ProcessVariation::none());
                          Rng rng(ctx.seed());
                          const uint64_t iters =
                              ctx.scaled(2000000 / n, 100);
                          for (uint64_t i = 0; i < iters; ++i)
                              ctx.keep(static_cast<double>(
                                  arch::sampleParallelSurvivedAccesses(
                                      factory, n, k, rng)));
                          ctx.metric("items", static_cast<double>(
                                                  iters * n));
                      });
    }
}

LEMONS_BENCH(mcFullArchitectureTrial, "mc.full_architecture_trial")
{
    // One full lifetime of the (alpha=14, beta=8, k=10%) connection:
    // 6,084 copies x 175 devices, scaled down under --quick.
    const wearout::DeviceFactory factory({14.0, 8.0},
                                         wearout::ProcessVariation::none());
    Rng rng(ctx.seed());
    const uint64_t copies = ctx.scaled(6084, 100);
    ctx.keep(static_cast<double>(arch::sampleSerialCopiesTotalAccesses(
        factory, 175, 18, copies, rng)));
    ctx.metric("items", static_cast<double>(175 * copies));
}

LEMONS_BENCH(mcEstimateProbability, "mc.estimate_probability")
{
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(20000, 500);
    const sim::MonteCarlo mc(ctx.seed(), trials);
    const auto ci = mc.estimateProbability([&](Rng &rng) {
        return arch::sampleParallelSurvivedAccesses(factory, 40, 1, rng) >=
               10;
    });
    ctx.keep(ci.estimate);
    ctx.metric("items", static_cast<double>(trials));
}

LEMONS_BENCH(mcRunStatsParallel, "mc.run_stats_parallel")
{
    // Same metric through the threaded entry point; on a single-core
    // host this mostly measures the partition/merge overhead.
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(20000, 500);
    const sim::MonteCarlo mc(ctx.seed(), trials);
    const auto report = mc.run(
        [&](Rng &rng) {
            return static_cast<double>(
                arch::sampleParallelSurvivedAccesses(factory, 40, 1, rng));
        },
        {.threads = 2,
         .keepSamples = false,
         .faults = sim::FaultPolicy::Rethrow});
    ctx.keep(report.stats.mean());
    ctx.metric("items", static_cast<double>(trials));
}

namespace {

/** The structure-survival metric shared by the engine/legacy pair. */
double
largeTrialMetric(const wearout::DeviceFactory &factory, Rng &rng)
{
    return static_cast<double>(
        arch::sampleParallelSurvivedAccesses(factory, 40, 1, rng));
}

} // namespace

LEMONS_BENCH(mcEngineRunLarge, "mc_engine.run_large")
{
    // Large-trial config through engine::runTrials (pooled chunks).
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(20000, 500);
    const sim::MonteCarlo mc(ctx.seed(), trials);
    const auto report = mc.run(
        [&](Rng &rng) { return largeTrialMetric(factory, rng); },
        {.threads = 2, .faults = sim::FaultPolicy::Rethrow});
    ctx.keep(report.stats.mean());
    ctx.metric("items", static_cast<double>(trials));
}

LEMONS_BENCH(mcEngineRunLargeLegacySpawn, "mc_engine.run_large_legacy_spawn")
{
    // Faithful replay of the retired runSamplesParallel: fresh
    // std::thread workers per call, strided partition, per-device
    // sampling through the DeviceFactory std::function hop. Identical
    // seed and metric to mc_engine.run_large, so the report ratio IS
    // the engine speedup.
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(20000, 500);
    const unsigned threads = 2;
    const Rng parent(ctx.seed());
    std::vector<double> samples(trials);
    const auto sampler = [&factory](Rng &r) {
        return factory.sampleLifetime(r);
    };
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            for (uint64_t i = w; i < trials; i += threads) {
                Rng rng = parent.split(i);
                samples[i] = static_cast<double>(
                    arch::sampleParallelSurvivedAccesses(sampler, 40, 1,
                                                         rng));
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    RunningStats stats;
    for (double sample : samples)
        stats.add(sample);
    ctx.keep(stats.mean());
    ctx.metric("items", static_cast<double>(trials));
}

LEMONS_BENCH(mcEngineEarlyStop, "mc_engine.early_stop")
{
    // CI-width early stopping on a low-variance metric: the run should
    // finish well short of the requested trial count.
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    const uint64_t trials = ctx.scaled(200000, 2000);
    const sim::MonteCarlo mc(ctx.seed(), trials);
    const auto report = mc.run(
        [&](Rng &rng) { return largeTrialMetric(factory, rng); },
        {.chunkSize = 256,
         .faults = sim::FaultPolicy::Rethrow,
         .earlyStop = sim::EarlyStop{.relHalfWidth = 0.01,
                                     .minTrials = 1024,
                                     .checkEveryChunks = 4}});
    ctx.keep(report.stats.mean());
    ctx.metric("items", static_cast<double>(report.trials));
    ctx.metric("trials_requested", static_cast<double>(trials));
    ctx.metric("trials_run", static_cast<double>(report.trials));
}

LEMONS_BENCH(mcEnginePoolReuse, "mc_engine.pool_reuse")
{
    // Many small pooled runs back to back. threads_created measures the
    // pool's thread churn across the whole batch — after the first
    // warmup it must stay flat (the ISSUE's no-spawn-after-warmup
    // proof, exported into BENCH_results.json).
    const wearout::DeviceFactory factory({14.0, 8.0},
                                         wearout::ProcessVariation::none());
    const uint64_t runs = ctx.scaled(200, 10);
    obs::Counter &created =
        obs::Registry::global().counter("sim.mc.pool.threads_created");
    const uint64_t createdBefore = created.get();
    double acc = 0.0;
    for (uint64_t r = 0; r < runs; ++r) {
        const sim::MonteCarlo mc(ctx.seed() + r, 64);
        acc += mc.run(
                     [&](Rng &rng) {
                         return static_cast<double>(
                             arch::sampleParallelSurvivedAccesses(
                                 factory, 40, 1, rng));
                     },
                     {.threads = 2,
                      .chunkSize = 16,
                      .faults = sim::FaultPolicy::Rethrow})
                   .stats.mean();
    }
    ctx.keep(acc);
    ctx.metric("items", static_cast<double>(runs * 64));
    ctx.metric("threads_created",
               static_cast<double>(created.get() - createdBefore));
}

LEMONS_BENCH(mcEngineCacheHitRate, "mc_engine.cache_hit_rate")
{
    // Solver-style probe pattern: repeated (n, k, x) reliability
    // queries against a fixed device. The memo caches should absorb
    // nearly everything after the first sweep; the hit rate lands in
    // BENCH_results.json for the CI bench-smoke artifact.
    obs::Registry &registry = obs::Registry::global();
    obs::Counter &hits =
        registry.counter("sim.mc.cache.weibull_log_survival.hits");
    obs::Counter &misses =
        registry.counter("sim.mc.cache.weibull_log_survival.misses");
    const uint64_t hitsBefore = hits.get();
    const uint64_t missesBefore = misses.get();

    const uint64_t sweeps = ctx.scaled(200, 5);
    double acc = 0.0;
    for (uint64_t s = 0; s < sweeps; ++s)
        for (uint64_t n = 10; n <= 200; n += 10)
            for (uint64_t x = 1; x <= 20; ++x)
                acc += engine::cachedParallelReliability(
                    14.0, 8.0, n, std::max<uint64_t>(1, n / 10),
                    static_cast<double>(x));
    ctx.keep(acc);

    const double hitDelta = static_cast<double>(hits.get() - hitsBefore);
    const double missDelta =
        static_cast<double>(misses.get() - missesBefore);
    ctx.metric("items", hitDelta + missDelta);
    ctx.metric("cache_hits", hitDelta);
    ctx.metric("cache_misses", missDelta);
    ctx.metric("cache_hit_rate",
               hitDelta / std::max(1.0, hitDelta + missDelta));
}

LEMONS_BENCH(mcEngineBatchKernel, "mc_engine.batch_kernel")
{
    // The raw u-select kernel at the paper's connection geometry
    // (n=175, k=18): one inverse-CDF transform per structure.
    const wearout::Weibull model(14.0, 8.0);
    Rng rng(ctx.seed());
    const uint64_t iters = ctx.scaled(2000000 / 175, 100);
    for (uint64_t i = 0; i < iters; ++i)
        ctx.keep(static_cast<double>(
            engine::sampleParallelBankSurvival(model, 175, 18, rng)));
    ctx.metric("items", static_cast<double>(iters * 175));
}
