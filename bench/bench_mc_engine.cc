/**
 * @file
 * Throughput microbenchmarks for the Monte Carlo substrate: Weibull
 * sampling, structure-failure sampling, and whole-architecture trials
 * — the costs behind every empirical curve in the reproduction.
 */

#include <benchmark/benchmark.h>

#include "arch/structures_sim.h"
#include "sim/monte_carlo.h"
#include "wearout/population.h"
#include "wearout/weibull.h"

using namespace lemons;

namespace {

void
BM_WeibullSample(benchmark::State &state)
{
    const wearout::Weibull model(14.0, 8.0);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.sample(rng));
}

void
BM_ParallelStructureSample(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto k = static_cast<size_t>(state.range(1));
    const wearout::DeviceFactory factory({14.0, 8.0},
                                         wearout::ProcessVariation::none());
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arch::sampleParallelSurvivedAccesses(factory, n, k, rng));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}

void
BM_FullArchitectureTrial(benchmark::State &state)
{
    // One full lifetime of the (alpha=14, beta=8, k=10%) connection:
    // 6,084 copies x 175 devices.
    const wearout::DeviceFactory factory({14.0, 8.0},
                                         wearout::ProcessVariation::none());
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(arch::sampleSerialCopiesTotalAccesses(
            factory, 175, 18, 6084, rng));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            175 * 6084);
}

void
BM_MonteCarloProbability(benchmark::State &state)
{
    const wearout::DeviceFactory factory({9.3, 12.0},
                                         wearout::ProcessVariation::none());
    for (auto _ : state) {
        const sim::MonteCarlo engine(7, 1000);
        benchmark::DoNotOptimize(
            engine.estimateProbability([&](Rng &rng) {
                return arch::sampleParallelSurvivedAccesses(factory, 40,
                                                            1, rng) >= 10;
            }));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            1000);
}

BENCHMARK(BM_WeibullSample);
BENCHMARK(BM_ParallelStructureSample)
    ->Args({40, 1})
    ->Args({60, 30})
    ->Args({175, 18})
    ->Args({2000, 200});
BENCHMARK(BM_FullArchitectureTrial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MonteCarloProbability)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
