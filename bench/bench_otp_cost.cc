/**
 * @file
 * Section 6.5.2: latency and energy of one-time-pad key retrieval,
 * across tree heights and copy counts. Paper anchor: H = 4, n = 128
 * -> 0.00512 ms path + 0.08 ms register read = 0.08512 ms total and
 * 5.12e-18 J worst-case path energy.
 */

#include "arch/cost_model.h"
#include "bench/harness.h"
#include "util/table.h"

using namespace lemons;

LEMONS_BENCH(otpCost, "otp.cost.latency_energy")
{
    ctx.out() << "=== Section 6.5.2: OTP retrieval latency & energy "
                 "===\n\n";
    const arch::CostModel model;

    Table table({"H", "copies n", "latency (ms)", "energy (J)"});
    for (unsigned h : {2u, 4u, 6u, 8u, 10u}) {
        for (uint64_t n : {32u, 128u, 255u}) {
            table.addRow({std::to_string(h), std::to_string(n),
                          formatGeneral(model.padRetrievalLatencyMs(h, n),
                                        5),
                          formatSci(model.padRetrievalEnergyJ(h, n), 2)});
            ctx.keep(model.padRetrievalLatencyMs(h, n));
        }
    }
    table.print(ctx.out());

    ctx.out() << "\nPaper anchor (H=4, n=128): latency = "
              << formatGeneral(model.padRetrievalLatencyMs(4, 128), 5)
              << " ms (paper 0.08512 ms), energy = "
              << formatSci(model.padRetrievalEnergyJ(4, 128), 3)
              << " J (paper 5.12e-18 J)\n";
    ctx.out() << "Connection access (Sec 4.3.2, width 141): energy = "
              << formatSci(model.accessEnergyJ(141), 3)
              << " J (paper 1.41e-18 J), latency = "
              << formatGeneral(model.accessLatencyNs(), 3)
              << " ns (paper ~10 ns)\n";
    ctx.metric("items", 15.0);
}
