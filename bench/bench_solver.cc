/**
 * @file
 * Timing microbenchmarks for the design-space solver and the OTP
 * analytics — the cost of one sweep point in Figures 4, 5, 8, 9.
 */

#include <benchmark/benchmark.h>

#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "util/math.h"

using namespace lemons;
using namespace lemons::core;

namespace {

void
BM_SolveUnencoded(benchmark::State &state)
{
    DesignRequest request;
    request.device = {static_cast<double>(state.range(0)), 8.0};
    request.legitimateAccessBound = 91250;
    for (auto _ : state) {
        const DesignSolver solver(request);
        benchmark::DoNotOptimize(solver.solve());
    }
}

void
BM_SolveEncoded(benchmark::State &state)
{
    DesignRequest request;
    request.device = {static_cast<double>(state.range(0)), 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    for (auto _ : state) {
        const DesignSolver solver(request);
        benchmark::DoNotOptimize(solver.solve());
    }
}

void
BM_SolveWithUpperBound(benchmark::State &state)
{
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    request.upperBoundTarget = 200000;
    for (auto _ : state) {
        const DesignSolver solver(request);
        benchmark::DoNotOptimize(solver.solve());
    }
}

void
BM_OtpAnalytics(benchmark::State &state)
{
    OtpParams params;
    params.height = static_cast<unsigned>(state.range(0));
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    for (auto _ : state) {
        const OtpAnalytics analytics(params);
        benchmark::DoNotOptimize(analytics.receiverSuccess());
        benchmark::DoNotOptimize(analytics.adversarySuccess());
    }
}

void
BM_BinomialTail(benchmark::State &state)
{
    const auto n = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            logBinomialTailAtLeast(n, n / 10, 0.176));
    }
}

BENCHMARK(BM_SolveUnencoded)->Arg(10)->Arg(14)->Arg(20);
BENCHMARK(BM_SolveEncoded)->Arg(10)->Arg(14)->Arg(20);
BENCHMARK(BM_SolveWithUpperBound);
BENCHMARK(BM_OtpAnalytics)->Arg(2)->Arg(8)->Arg(12);
BENCHMARK(BM_BinomialTail)->Arg(60)->Arg(141)->Arg(10000)->Arg(10000000);

} // namespace

BENCHMARK_MAIN();
