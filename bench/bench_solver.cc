/**
 * @file
 * Timing microbenchmarks for the design-space solver and the OTP
 * analytics — the cost of one sweep point in Figures 4, 5, 8, 9.
 */

#include <string>

#include "bench/harness.h"
#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "util/math.h"

using namespace lemons;
using namespace lemons::core;
using lemons::bench::BenchContext;
using lemons::bench::registerBench;

LEMONS_BENCH_REGISTRAR(registerSolverBenches)
{
    for (const double alpha : {10.0, 14.0, 20.0}) {
        const std::string point =
            "alpha" + std::to_string(static_cast<int>(alpha));

        registerBench("solver.unencoded." + point,
                      [alpha](BenchContext &ctx) {
                          DesignRequest request;
                          request.device = {alpha, 8.0};
                          request.legitimateAccessBound = 91250;
                          const uint64_t iters = ctx.scaled(20, 2);
                          for (uint64_t i = 0; i < iters; ++i) {
                              const DesignSolver solver(request);
                              ctx.keep(static_cast<double>(
                                  solver.solve().totalDevices));
                          }
                          ctx.metric("items", static_cast<double>(iters));
                      });

        registerBench("solver.encoded." + point,
                      [alpha](BenchContext &ctx) {
                          DesignRequest request;
                          request.device = {alpha, 8.0};
                          request.legitimateAccessBound = 91250;
                          request.kFraction = 0.1;
                          const uint64_t iters = ctx.scaled(20, 2);
                          for (uint64_t i = 0; i < iters; ++i) {
                              const DesignSolver solver(request);
                              ctx.keep(static_cast<double>(
                                  solver.solve().totalDevices));
                          }
                          ctx.metric("items", static_cast<double>(iters));
                      });
    }

    registerBench("solver.upper_bound", [](BenchContext &ctx) {
        DesignRequest request;
        request.device = {14.0, 8.0};
        request.legitimateAccessBound = 91250;
        request.kFraction = 0.1;
        request.upperBoundTarget = 200000;
        const uint64_t iters = ctx.scaled(20, 2);
        for (uint64_t i = 0; i < iters; ++i) {
            const DesignSolver solver(request);
            ctx.keep(static_cast<double>(solver.solve().totalDevices));
        }
        ctx.metric("items", static_cast<double>(iters));
    });

    for (const unsigned height : {2u, 8u, 12u}) {
        registerBench("solver.otp_analytics.h" + std::to_string(height),
                      [height](BenchContext &ctx) {
                          OtpParams params;
                          params.height = height;
                          params.copies = 128;
                          params.threshold = 8;
                          params.device = {10.0, 1.0};
                          const uint64_t iters = ctx.scaled(20000, 200);
                          for (uint64_t i = 0; i < iters; ++i) {
                              const OtpAnalytics analytics(params);
                              ctx.keep(analytics.receiverSuccess() +
                                       analytics.adversarySuccess());
                          }
                          ctx.metric("items", static_cast<double>(iters));
                      });
    }

    for (const uint64_t n : {60ull, 141ull, 10000ull, 10000000ull}) {
        registerBench("solver.binomial_tail.n" + std::to_string(n),
                      [n](BenchContext &ctx) {
                          const uint64_t iters = ctx.scaled(20000, 200);
                          for (uint64_t i = 0; i < iters; ++i)
                              ctx.keep(logBinomialTailAtLeast(n, n / 10,
                                                              0.176));
                          ctx.metric("items", static_cast<double>(iters));
                      });
    }
}
