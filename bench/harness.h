/**
 * @file
 * Registration-based benchmark harness behind the lemons-bench CLI.
 *
 * A benchmark is a named function of a BenchContext. Translation units
 * register benchmarks at static-initialization time (LEMONS_BENCH for
 * a single case, LEMONS_BENCH_REGISTRAR for parameterized families);
 * the single lemons-bench binary links them all and runs the selected
 * subset with warmup, repeated timing, and robust aggregation
 * (median / MAD / min of wall time). Each run also reports the
 * lemons::obs counter and timer deltas it produced, and the JSON
 * output (schema "lemons-bench/1") is stable enough to diff in CI.
 */

#ifndef LEMONS_BENCH_HARNESS_H_
#define LEMONS_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

namespace lemons::bench {

/**
 * Per-run context handed to every benchmark body. Scales workload
 * sizes (--quick / --scale), sinks results so the optimizer cannot
 * delete the work, and collects named metrics for the JSON report.
 */
class BenchContext
{
  public:
    BenchContext(double scaleFactor, bool report, std::ostream &reportSink,
                 uint64_t streamSeed = 7);

    /** Workload scale factor in (0, 1]; 1 is the full paper scale. */
    double scale() const { return factor; }

    /**
     * Per-rep RNG seed, derived by the harness from (--seed, rep) via
     * SplitMix64. Benchmark bodies that sample (MonteCarlo runs, Rng
     * streams) should seed from this instead of a hardcoded constant:
     * a fixed seed replays the identical stream every rep, so the
     * reported median is the median of one sample repeated, not of
     * i.i.d. reps. Warmup runs get their own seeds past the timed
     * range, so warmup never pre-walks a timed rep's stream.
     */
    uint64_t seed() const { return repSeed; }

    /**
     * @p full scaled down by the current factor, but never below
     * @p floor — trial counts stay meaningful under --quick.
     */
    uint64_t scaled(uint64_t full, uint64_t floor = 1) const;

    /** Whether --report asked for the full human-readable tables. */
    bool reporting() const { return report; }

    /**
     * Stream for the paper tables: the real output stream under
     * --report, a null stream otherwise (so table code runs either
     * way and stays exercised).
     */
    std::ostream &out() const { return sink; }

    /** Attach a named numeric result to this benchmark's JSON entry. */
    void metric(std::string_view name, double value);

    /** Sink a computed value so the benchmark body cannot be DCE'd. */
    void keep(double value) { checksum += value; }

    /** Accumulated keep() total (also defeats whole-run elision). */
    double kept() const { return checksum; }

    /** All metrics recorded so far, name-sorted. */
    const std::map<std::string, double, std::less<>> &metrics() const
    {
        return values;
    }

  private:
    double factor;
    bool report;
    uint64_t repSeed;
    std::ostream &sink;
    double checksum = 0.0;
    std::map<std::string, double, std::less<>> values;
};

using BenchFn = std::function<void(BenchContext &)>;

/**
 * Register @p fn under @p name (dotted lowercase by convention, e.g.
 * "fig4.connection"). Duplicate names abort at startup — they would
 * make --filter selections ambiguous. Returns true so it can seed a
 * static initializer.
 */
bool registerBench(std::string name, BenchFn fn);

/** Number of registered benchmarks (for the self-checks in tests). */
size_t registeredCount();

/** CLI driver: parses flags, runs the selection, writes the JSON. */
int runMain(int argc, char **argv);

} // namespace lemons::bench

/** Define and register a single benchmark under the literal @p name. */
#define LEMONS_BENCH(ident, name)                                          \
    static void ident(::lemons::bench::BenchContext &ctx);                 \
    [[maybe_unused]] static const bool lemonsBenchRegistered_##ident =     \
        ::lemons::bench::registerBench(name, &ident);                      \
    static void ident(::lemons::bench::BenchContext &ctx)

/**
 * Run a block at static-initialization time, for registering a
 * parameterized family of benchmarks in a loop:
 *   LEMONS_BENCH_REGISTRAR(rsCases) {
 *       for (size_t k : {16, 32})
 *           registerBench("rs.encode.k" + std::to_string(k),
 *                         [k](BenchContext &ctx) { ... });
 *   }
 */
#define LEMONS_BENCH_REGISTRAR(ident)                                      \
    static void ident();                                                   \
    [[maybe_unused]] static const bool lemonsBenchRegistrarRan_##ident =   \
        (ident(), true);                                                   \
    static void ident()

#endif // LEMONS_BENCH_HARNESS_H_
