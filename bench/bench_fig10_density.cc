/**
 * @file
 * Figure 10: density estimate of one-time pads — decision trees per
 * 1 mm^2 chip for heights 2..11 (H-tree layout, 100 nm^2 switches,
 * 1000 H-bit random strings in 50 nm^2 register cells).
 */

#include "arch/cost_model.h"
#include "bench/harness.h"
#include "util/table.h"

using namespace lemons;

LEMONS_BENCH(fig10Density, "fig10.otp.density")
{
    ctx.out() << "=== Figure 10: one-time-pad density in 1 mm^2 ===\n\n";
    const arch::CostModel model;
    const double paper[] = {5e6, 2e6, 6e5, 2e5, 1e5,
                            4e4, 2e4, 9e3, 4e3, 2e3};

    Table table({"height H", "tree area (mm^2)", "trees per mm^2",
                 "paper (1 sig fig)", "pads per mm^2 (n=128)"});
    for (unsigned h = 2; h <= 11; ++h) {
        table.addRow({std::to_string(h),
                      formatSci(model.decisionTreeAreaMm2(h), 2),
                      formatCount(model.treesPerMm2(h)),
                      formatSci(paper[h - 2], 0),
                      formatCount(model.padsPerMm2(h, 128))});
        ctx.keep(static_cast<double>(model.treesPerMm2(h)));
    }
    table.print(ctx.out());

    ctx.out() << "\nPaper example: H = 4, n = 128 -> ~4,687 pads per "
                 "chip; we get "
              << formatCount(arch::CostModel().padsPerMm2(4, 128))
              << ".\n";
    ctx.metric("items", 10.0);
}
