/**
 * @file
 * Figure 3: techniques to control the hardware degradation window.
 *
 *  3a — scaling alpha down (alpha = 1.7, beta = 12) shrinks the
 *       window to within one access,
 *  3b — parallel structures (alpha = 9.3, beta = 12, n in {1,20,40,60})
 *       push the high-reliability threshold toward the cliff,
 *  3c — Reed-Solomon k-out-of-60 structures (alpha = 20, beta = 12,
 *       k in {1,10,20,30,60}) accelerate degradation.
 *
 * Each analytic series is cross-validated against Monte Carlo device
 * populations.
 */

#include <cstdint>

#include "arch/structures.h"
#include "arch/structures_sim.h"
#include "bench/harness.h"
#include "sim/monte_carlo.h"
#include "util/table.h"

using namespace lemons;
using wearout::DeviceFactory;
using wearout::ProcessVariation;
using wearout::Weibull;

LEMONS_BENCH(fig3aScaledAlpha, "fig3.techniques.scaled_alpha")
{
    ctx.out() << "--- Fig 3a: scaled-down alpha (alpha = 1.7, beta = 12) "
                 "---\n";
    const Weibull device(1.7, 12.0);
    Table table({"access", "pdf", "reliability"});
    for (double x = 0.0; x <= 3.0; x += 0.25) {
        table.addRow({formatGeneral(x, 3), formatGeneral(device.pdf(x), 4),
                      formatGeneral(device.reliability(x), 4)});
        ctx.keep(device.reliability(x));
    }
    table.print(ctx.out());
    ctx.out() << "R(1) = " << formatGeneral(device.reliability(1.0), 4)
              << " (close to 1), R(2) = "
              << formatGeneral(device.reliability(2.0), 4)
              << " (close to 0): window within one access.\n\n";
}

LEMONS_BENCH(fig3bParallel, "fig3.techniques.parallel")
{
    ctx.out() << "--- Fig 3b: parallel devices (alpha = 9.3, beta = 12) "
                 "---\n";
    const Weibull device(9.3, 12.0);
    Table table({"access", "n=1", "n=20", "n=40", "n=60"});
    for (double x = 7.0; x <= 14.0; x += 1.0) {
        std::vector<std::string> row{formatGeneral(x, 3)};
        for (size_t n : {1u, 20u, 40u, 60u}) {
            row.push_back(formatGeneral(
                arch::ParallelStructure(device, n).reliabilityAt(x), 4));
        }
        table.addRow(row);
    }
    table.print(ctx.out());

    const arch::ParallelStructure forty(device, 40);
    ctx.out() << "n = 40: R(10) = "
              << formatGeneral(forty.reliabilityAt(10.0), 4)
              << " (paper ~0.98), R(11) = "
              << formatGeneral(forty.reliabilityAt(11.0), 4)
              << " (paper ~0.022)\n";

    // Monte Carlo cross-check at the cliff.
    const DeviceFactory factory({9.3, 12.0}, ProcessVariation::none());
    const uint64_t trials = ctx.scaled(100000, 1000);
    const sim::MonteCarlo engine(33, trials);
    const auto ci10 = engine.estimateProbability([&](Rng &rng) {
        return arch::sampleParallelSurvivedAccesses(factory, 40, 1, rng) >=
               10;
    });
    ctx.out() << "MC (" << trials
              << " trials): P(40-wide survives 10 accesses) = "
              << formatGeneral(ci10.estimate, 4) << " [analytic "
              << formatGeneral(forty.reliabilityAt(10.0), 4) << "]\n\n";
    ctx.keep(ci10.estimate);
    ctx.metric("items", static_cast<double>(trials));
}

LEMONS_BENCH(fig3cCoded, "fig3.techniques.rs_coded")
{
    ctx.out() << "--- Fig 3c: Reed-Solomon coded structures "
                 "(alpha = 20, beta = 12, n = 60) ---\n";
    const Weibull device(20.0, 12.0);
    Table table({"access", "k=1", "k=10", "k=20", "k=30", "k=60"});
    for (double x = 8.0; x <= 32.0; x += 2.0) {
        std::vector<std::string> row{formatGeneral(x, 3)};
        for (size_t k : {1u, 10u, 20u, 30u, 60u}) {
            row.push_back(formatGeneral(
                arch::ParallelStructure(device, 60, k).reliabilityAt(x),
                4));
        }
        table.addRow(row);
    }
    table.print(ctx.out());

    const arch::ParallelStructure k30(device, 60, 30);
    ctx.out() << "k = 30 cliff: R(19) = "
              << formatGeneral(k30.reliabilityAt(19.0), 4) << ", R(20) = "
              << formatGeneral(k30.reliabilityAt(20.0), 4)
              << " (paper narrates ~0.92 / ~0.02 around the 20th "
                 "access)\n";
    ctx.out() << "Window [0.9 -> 0.1]: k=1: "
              << arch::ParallelStructure(device, 60, 1)
                     .degradationWindow(0.9, 0.1)
              << " accesses, k=30: " << k30.degradationWindow(0.9, 0.1)
              << " accesses (paper: ~2 vs ~1)\n";

    const DeviceFactory factory({20.0, 12.0}, ProcessVariation::none());
    const uint64_t trials = ctx.scaled(100000, 1000);
    const sim::MonteCarlo engine(34, trials);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        return arch::sampleParallelSurvivedAccesses(factory, 60, 30, rng) >=
               19;
    });
    ctx.out() << "MC (" << trials
              << " trials): P(30-of-60 survives 19 accesses) = "
              << formatGeneral(ci.estimate, 4) << " [analytic "
              << formatGeneral(k30.reliabilityAt(19.0), 4) << "]\n";
    ctx.keep(ci.estimate);
    ctx.metric("items", static_cast<double>(trials));
}
