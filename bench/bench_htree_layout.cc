/**
 * @file
 * Layout ablation: ground the closed-form area model in an actual
 * H-tree placement (Section 6.5.1 assumes "an H-tree layout of the
 * NEMS switches and wires" with area on the order of the leaf count).
 *
 * Places the decision-tree switch network for every Fig 10 height,
 * reports bounding box, wire length, and the per-leaf area constant,
 * and compares the layout-derived switch area against the cost
 * model's closed form.
 */

#include "arch/cost_model.h"
#include "arch/htree.h"
#include "bench/harness.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::arch;

LEMONS_BENCH(htreeLayout, "htree.layout")
{
    ctx.out() << "=== H-tree layout of decision-tree switch networks "
                 "===\n\n";

    // Leaf pitch ~ switch contact edge (10 nm) + 1 nm spacing.
    const double pitch = 11.0;
    const CostModel model;

    uint64_t switches = 0;
    Table table({"H", "switches", "box (nm x nm)", "switch area (nm^2)",
                 "wire (nm)", "wire/leaf (nm)", "area/leaf (pitch^2)"});
    for (unsigned h = 2; h <= 11; ++h) {
        const HTreeLayout layout(h, pitch);
        switches += layout.nodeCount();
        ctx.keep(layout.areaNm2());
        table.addRow(
            {std::to_string(h), formatCount(layout.nodeCount()),
             formatGeneral(layout.width(), 5) + " x " +
                 formatGeneral(layout.height(), 5),
             formatSci(layout.areaNm2(), 2),
             formatSci(layout.totalWireLengthNm(), 2),
             formatGeneral(layout.totalWireLengthNm() /
                               static_cast<double>(layout.leafCount()),
                           3),
             formatGeneral(layout.areaPerLeafPitchSq(), 4)});
    }
    table.print(ctx.out());

    ctx.out() << "\nArea per leaf stays exactly one pitch^2 — Brent & "
                 "Kung's O(leaves) bound, the premise of the\npaper's "
                 "analytic area model. Cross-check at H = 8: layout "
                 "switch area "
              << formatSci(HTreeLayout(8, pitch).areaNm2() * 1e-12, 2)
              << " mm^2 vs cost-model switch term "
              << formatSci(128.0 * 100.0 * 1e-12, 2)
              << " mm^2 (registers dominate the full tree area, "
              << formatSci(model.decisionTreeAreaMm2(8), 2) << " mm^2).\n";
    ctx.metric("items", static_cast<double>(switches));
}
