/**
 * @file
 * Figure 9: one-time-pad success probability over (alpha, H) at
 * beta = 1, k = 8, n = 128 copies — the trade-off between tree height
 * and device wearout bounds.
 */

#include <iostream>
#include <vector>

#include "core/explorer.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

namespace {

const std::vector<double> alphaGrid = {1.0,  5.0,  10.0, 20.0,
                                       40.0, 60.0, 80.0};
const std::vector<unsigned> hGrid = {1, 2, 4, 6, 7, 8, 10, 12};

void
printGrid(const char *title, bool receiver)
{
    std::cout << "--- " << title << " ---\n";
    std::vector<std::string> headers{"H \\ alpha"};
    for (double a : alphaGrid)
        headers.push_back(formatGeneral(a, 3));
    Table table(headers);
    for (unsigned h : hGrid) {
        const auto row = sweepOtpAlphaHeight(alphaGrid, {h}, 128, 8, 1.0);
        std::vector<std::string> cells{std::to_string(h)};
        for (const auto &point : row)
            cells.push_back(formatGeneral(receiver
                                              ? point.receiverSuccess
                                              : point.adversarySuccess,
                                          3));
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 9: OTP success probability vs (alpha, H), "
                 "beta=1 k=8 n=128 ===\n\n";
    printGrid("Fig 9a: receiver success probability", true);
    printGrid("Fig 9b: adversary success probability", false);

    std::cout
        << "Trade-off (paper Sec 6.4.2): for H <= 7, higher trees "
           "compensate for looser wearout bounds;\nfor H >= 8 the height "
           "alone blocks adversaries across the whole alpha range while "
           "the receiver\nstill succeeds once alpha is large enough.\n";
    return 0;
}
