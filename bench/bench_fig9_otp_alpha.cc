/**
 * @file
 * Figure 9: one-time-pad success probability over (alpha, H) at
 * beta = 1, k = 8, n = 128 copies — the trade-off between tree height
 * and device wearout bounds.
 */

#include <vector>

#include "bench/harness.h"
#include "core/explorer.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

namespace {

const std::vector<double> alphaGrid = {1.0,  5.0,  10.0, 20.0,
                                       40.0, 60.0, 80.0};
const std::vector<unsigned> hGrid = {1, 2, 4, 6, 7, 8, 10, 12};

void
printGrid(lemons::bench::BenchContext &ctx, const char *title,
          bool receiver)
{
    ctx.out() << "--- " << title << " ---\n";
    std::vector<std::string> headers{"H \\ alpha"};
    for (double a : alphaGrid)
        headers.push_back(formatGeneral(a, 3));
    Table table(headers);
    for (unsigned h : hGrid) {
        const auto row = sweepOtpAlphaHeight(alphaGrid, {h}, 128, 8, 1.0);
        std::vector<std::string> cells{std::to_string(h)};
        for (const auto &point : row) {
            const double success = receiver ? point.receiverSuccess
                                            : point.adversarySuccess;
            cells.push_back(formatGeneral(success, 3));
            ctx.keep(success);
        }
        table.addRow(cells);
    }
    table.print(ctx.out());
    ctx.out() << "\n";
}

} // namespace

LEMONS_BENCH(fig9OtpAlpha, "fig9.otp.alpha_height")
{
    ctx.out() << "=== Figure 9: OTP success probability vs (alpha, H), "
                 "beta=1 k=8 n=128 ===\n\n";
    printGrid(ctx, "Fig 9a: receiver success probability", true);
    printGrid(ctx, "Fig 9b: adversary success probability", false);

    ctx.out()
        << "Trade-off (paper Sec 6.4.2): for H <= 7, higher trees "
           "compensate for looser wearout bounds;\nfor H >= 8 the height "
           "alone blocks adversaries across the whole alpha range while "
           "the receiver\nstill succeeds once alpha is large enough.\n";
    ctx.metric("items",
               static_cast<double>(2 * alphaGrid.size() * hGrid.size()));
}
