/**
 * @file
 * Section 4.1.5: M-way module replication. Reproduces the paper's
 * scaling argument — M modules multiply the daily usage bound by M at
 * the cost of periodic re-encryption — and simulates a year of heavy
 * usage across a replicated stack.
 */

#include "bench/harness.h"
#include "core/design_solver.h"
#include "core/mway.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

LEMONS_BENCH(mwayReplication, "mway.replication")
{
    ctx.out() << "=== Section 4.1.5: M-way replication ===\n\n";

    // The paper's arithmetic: 50/day for 5 years = 91,250 per module.
    Table scaling({"M", "daily bound", "re-encrypt every", "total uses"});
    for (uint64_t m : {1u, 2u, 5u, 10u}) {
        const uint64_t daily = MWayReplication::scaledDailyBound(50, m);
        const double months = 60.0 / static_cast<double>(m);
        scaling.addRow({std::to_string(m), formatCount(daily),
                        formatGeneral(months, 3) + " months",
                        formatCount(91250 * m)});
    }
    scaling.print(ctx.out());
    ctx.out() << "\nPaper example: M = 10 lifts 50/day to 500/day with a "
                 "re-encryption every 6 months.\n\n";

    // Simulate a scaled-down stack: modules sized for 60 accesses,
    // heavy user consuming 50 per "period" then migrating.
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 60;
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    const wearout::DeviceFactory factory(request.device,
                                         wearout::ProcessVariation::none());

    uint64_t unlocks = 0;
    Table sim({"M", "unlocks served", "migrations", "exhausted"});
    for (uint64_t m : {1u, 2u, 4u}) {
        Rng rng(999 + m);
        MWayReplication stack(m, design, factory, "pass-0",
                              std::vector<uint8_t>(32, 0x77), rng);
        uint64_t served = 0;
        for (uint64_t module = 0; module < m; ++module) {
            const std::string current =
                "pass-" + std::to_string(module);
            for (int i = 0; i < 50; ++i) {
                ++unlocks;
                if (stack.unlock(current).has_value())
                    ++served;
            }
            if (module + 1 < m) {
                if (!stack.migrate(current,
                                   "pass-" + std::to_string(module + 1)))
                    break;
            }
        }
        ctx.keep(static_cast<double>(served));
        sim.addRow({std::to_string(m), formatCount(served),
                    formatCount(stack.migrationCount()),
                    stack.exhausted() ? "yes" : "no"});
    }
    sim.print(ctx.out());
    ctx.out() << "\nUsage served scales ~linearly with M; each migration "
                 "costs one unlock plus a storage re-wrap.\n";
    ctx.metric("items", static_cast<double>(unlocks));
}
