/**
 * @file
 * Figure 1: the Weibull wearout model — failure PDF and reliability
 * for beta in {1, 6, 12} at alpha = 1e6 cycles (the paper overlays the
 * beta = 12 curve on the MEMS lifetime fits of Slack et al.).
 *
 * Prints the analytic series the figure plots and cross-validates the
 * beta = 12 curve against a Monte Carlo device population.
 */

#include <cstdint>
#include <iostream>

#include "sim/empirical.h"
#include "util/rng.h"
#include "util/table.h"
#include "wearout/weibull.h"

using namespace lemons;

int
main()
{
    std::cout << "=== Figure 1: Weibull wearout model "
                 "(alpha = 1e6 cycles) ===\n\n";

    const double alpha = 1e6;
    const wearout::Weibull b1(alpha, 1.0);
    const wearout::Weibull b6(alpha, 6.0);
    const wearout::Weibull b12(alpha, 12.0);

    Table table({"cycles", "pdf(b=1)", "pdf(b=6)", "pdf(b=12)",
                 "R(b=1)", "R(b=6)", "R(b=12)"});
    for (double x = 0.0; x <= 2.0e6; x += 1.0e5) {
        table.addRow({formatSci(x, 2), formatSci(b1.pdf(x), 3),
                      formatSci(b6.pdf(x), 3), formatSci(b12.pdf(x), 3),
                      formatGeneral(b1.reliability(x), 4),
                      formatGeneral(b6.reliability(x), 4),
                      formatGeneral(b12.reliability(x), 4)});
    }
    table.print(std::cout);

    std::cout << "\nAll shapes cross R(alpha) = 1/e = 0.3679 at "
                 "x = alpha; larger beta = sharper wearout cliff.\n";

    // Monte Carlo validation of the beta = 12 curve.
    Rng rng(1);
    const sim::SurvivalCurve curve(b12.sampleMany(rng, 200000));
    Table mc({"cycles", "analytic R", "empirical R (200k devices)"});
    for (double x = 6.0e5; x <= 1.4e6; x += 2.0e5) {
        mc.addRow({formatSci(x, 2), formatGeneral(b12.reliability(x), 4),
                   formatGeneral(curve.reliability(x), 4)});
    }
    std::cout << "\nMonte Carlo cross-check (beta = 12):\n";
    mc.print(std::cout);

    const double ks =
        curve.ksDistance([&](double x) { return b12.cdf(x); });
    std::cout << "\nKolmogorov-Smirnov distance vs analytic CDF: "
              << formatSci(ks, 2) << " (200,000 samples)\n";
    return 0;
}
