/**
 * @file
 * Figure 1: the Weibull wearout model — failure PDF and reliability
 * for beta in {1, 6, 12} at alpha = 1e6 cycles (the paper overlays the
 * beta = 12 curve on the MEMS lifetime fits of Slack et al.).
 *
 * Prints the analytic series the figure plots and cross-validates the
 * beta = 12 curve against a Monte Carlo device population.
 */

#include <cstdint>

#include "bench/harness.h"
#include "sim/empirical.h"
#include "util/rng.h"
#include "util/table.h"
#include "wearout/weibull.h"

using namespace lemons;

LEMONS_BENCH(fig1Weibull, "fig1.weibull")
{
    ctx.out() << "=== Figure 1: Weibull wearout model "
                 "(alpha = 1e6 cycles) ===\n\n";

    const double alpha = 1e6;
    const wearout::Weibull b1(alpha, 1.0);
    const wearout::Weibull b6(alpha, 6.0);
    const wearout::Weibull b12(alpha, 12.0);

    Table table({"cycles", "pdf(b=1)", "pdf(b=6)", "pdf(b=12)",
                 "R(b=1)", "R(b=6)", "R(b=12)"});
    for (double x = 0.0; x <= 2.0e6; x += 1.0e5) {
        table.addRow({formatSci(x, 2), formatSci(b1.pdf(x), 3),
                      formatSci(b6.pdf(x), 3), formatSci(b12.pdf(x), 3),
                      formatGeneral(b1.reliability(x), 4),
                      formatGeneral(b6.reliability(x), 4),
                      formatGeneral(b12.reliability(x), 4)});
        ctx.keep(b12.reliability(x));
    }
    table.print(ctx.out());

    ctx.out() << "\nAll shapes cross R(alpha) = 1/e = 0.3679 at "
                 "x = alpha; larger beta = sharper wearout cliff.\n";

    // Monte Carlo validation of the beta = 12 curve.
    Rng rng(1);
    const uint64_t devices = ctx.scaled(200000, 2000);
    const sim::SurvivalCurve curve(b12.sampleMany(rng, devices));
    Table mc({"cycles", "analytic R", "empirical R"});
    for (double x = 6.0e5; x <= 1.4e6; x += 2.0e5) {
        mc.addRow({formatSci(x, 2), formatGeneral(b12.reliability(x), 4),
                   formatGeneral(curve.reliability(x), 4)});
    }
    ctx.out() << "\nMonte Carlo cross-check (beta = 12, " << devices
              << " devices):\n";
    mc.print(ctx.out());

    const double ks =
        curve.ksDistance([&](double x) { return b12.cdf(x); });
    ctx.out() << "\nKolmogorov-Smirnov distance vs analytic CDF: "
              << formatSci(ks, 2) << "\n";
    ctx.keep(ks);
    ctx.metric("items", static_cast<double>(devices));
    ctx.metric("ks_distance", ks);
}
