/**
 * @file
 * Figure 4: engineering-space exploration for the limited-use
 * connection (LAB = 91,250).
 *
 *  4a — total #NEMS vs alpha without encoding, beta in {8..16},
 *  4b — with redundant encoding, k in {10,20,30}% n, beta in {4, 8},
 *  4c — relaxed degradation criteria p in {1..10}%, with Monte Carlo
 *       empirical access bounds,
 *  4d — stronger passcodes: upper-bound targets 91,250+ / 100,000 /
 *       200,000 (software rejecting the most popular 1% / 2%).
 */

#include <optional>
#include <vector>

#include "bench/harness.h"
#include "core/explorer.h"
#include "core/usage_bounds.h"
#include "crypto/password_model.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

namespace {

std::vector<double>
alphaGrid()
{
    std::vector<double> alphas;
    for (double a = 10.0; a <= 20.0; a += 1.0)
        alphas.push_back(a);
    return alphas;
}

std::string
countCell(const Design &design)
{
    return design.feasible ? formatCount(design.totalDevices)
                           : "infeasible";
}

} // namespace

LEMONS_BENCH(fig4aPlain, "fig4.connection.plain")
{
    ctx.out() << "--- Fig 4a: total #NEMS without encoding (log-scale in "
                 "the paper) ---\n";
    Table table({"alpha", "beta=8", "beta=10", "beta=12", "beta=14",
                 "beta=16"});
    std::vector<std::vector<ConnectionSweepPoint>> columns;
    for (double beta : {8.0, 10.0, 12.0, 14.0, 16.0})
        columns.push_back(sweepDeviceCount(alphaGrid(), beta, 0.0, 91250));
    for (size_t i = 0; i < alphaGrid().size(); ++i) {
        std::vector<std::string> row{formatGeneral(alphaGrid()[i], 3)};
        for (const auto &column : columns) {
            row.push_back(countCell(column[i].design));
            ctx.keep(static_cast<double>(column[i].design.totalDevices));
        }
        table.addRow(row);
    }
    table.print(ctx.out());
    ctx.out() << "Paper anchor: alpha=14, beta=8 ~ 4e9 (our strict "
                 "criteria give more; same exponential shape).\n\n";
    ctx.metric("items", static_cast<double>(5 * alphaGrid().size()));
}

LEMONS_BENCH(fig4bEncoded, "fig4.connection.encoded")
{
    ctx.out() << "--- Fig 4b: with redundant encoding ---\n";
    Table table({"alpha", "k=10% b=8", "k=10% b=4", "k=20% b=8",
                 "k=20% b=4", "k=30% b=8", "k=30% b=4"});
    std::vector<std::vector<ConnectionSweepPoint>> columns;
    for (double kFraction : {0.1, 0.2, 0.3})
        for (double beta : {8.0, 4.0})
            columns.push_back(
                sweepDeviceCount(alphaGrid(), beta, kFraction, 91250));
    for (size_t i = 0; i < alphaGrid().size(); ++i) {
        std::vector<std::string> row{formatGeneral(alphaGrid()[i], 3)};
        for (const auto &column : columns) {
            row.push_back(countCell(column[i].design));
            ctx.keep(static_cast<double>(column[i].design.totalDevices));
        }
        table.addRow(row);
    }
    table.print(ctx.out());
    ctx.out() << "Paper anchor: alpha=14, beta=8, k=10% ~ 0.8e6 (we get "
                 "the same magnitude) — ~4 orders of magnitude below "
                 "Fig 4a.\n\n";
    ctx.metric("items", static_cast<double>(6 * alphaGrid().size()));
}

LEMONS_BENCH(fig4cCriteria, "fig4.connection.criteria")
{
    ctx.out() << "--- Fig 4c: relaxed degradation criteria "
                 "(alpha = 14, beta = 8, k = 10% n) ---\n";
    Table table({"p", "#NEMS", "vs p=1%", "analytic E[total]",
                 "MC mean total", "MC q99.9"});
    std::optional<uint64_t> baseline;
    const uint64_t trials = ctx.scaled(60, 10);
    for (double p : {0.01, 0.02, 0.04, 0.06, 0.08, 0.10}) {
        DegradationCriteria criteria;
        criteria.maxResidualReliability = p;
        const auto points =
            sweepDeviceCount({14.0}, 8.0, 0.1, 91250, criteria);
        const Design &design = points[0].design;
        if (!design.feasible) {
            table.addRow({formatGeneral(p * 100, 3) + "%", "infeasible",
                          "-", "-", "-", "-"});
            continue;
        }
        if (!baseline)
            baseline = design.totalDevices;
        const UsageBounds bounds = estimateUsageBounds(
            design, {14.0, 8.0}, wearout::ProcessVariation::none(), trials,
            4242);
        ctx.keep(bounds.meanTotalAccesses);
        table.addRow(
            {formatGeneral(p * 100, 3) + "%",
             formatCount(design.totalDevices),
             formatGeneral(100.0 * static_cast<double>(
                                       design.totalDevices) /
                               static_cast<double>(*baseline),
                           4) +
                 "%",
             formatGeneral(design.expectedSystemTotal, 7),
             formatGeneral(bounds.meanTotalAccesses, 7),
             formatGeneral(bounds.q999, 7)});
    }
    table.print(ctx.out());
    ctx.out() << "Paper: p 1% -> 10% reduces devices ~40% and raises the "
                 "empirical upper bound 91,326 -> 92,028.\n\n";
    ctx.metric("items", static_cast<double>(6 * trials));
}

LEMONS_BENCH(fig4dPasscodes, "fig4.connection.passcodes")
{
    ctx.out() << "--- Fig 4d: stronger passcodes (alpha = 14, "
                 "k = 10% n) ---\n";
    const crypto::PasswordModel passwords;
    Table table({"passcode policy", "UB target", "beta=8", "beta=4",
                 "attack success at UB"});
    struct Row
    {
        const char *label;
        std::optional<uint64_t> target;
    };
    const Row rows[] = {
        {"baseline", std::nullopt},
        {"reject top 1% (UB 100k)", 100000},
        {"reject top 2% (UB 200k)", 200000},
    };
    for (const Row &row : rows) {
        const auto b8 =
            sweepDeviceCount({14.0}, 8.0, 0.1, 91250, {}, row.target);
        const auto b4 =
            sweepDeviceCount({14.0}, 4.0, 0.1, 91250, {}, row.target);
        const uint64_t bound =
            row.target ? *row.target
                       : static_cast<uint64_t>(
                             b8[0].design.expectedSystemTotal);
        // Attack success under the matching rejection policy.
        const double rejected =
            row.target ? (*row.target == 100000 ? 0.01 : 0.02) : 0.0;
        const double success =
            passwords.withPopularRejected(rejected)
                .attackSuccessProbability(bound);
        ctx.keep(success);
        table.addRow({row.label,
                      row.target ? formatCount(*row.target) : "LAB+eps",
                      countCell(b8[0].design), countCell(b4[0].design),
                      formatSci(success, 2)});
    }
    table.print(ctx.out());
    ctx.out() << "Paper: 675,250 -> 38,325 -> 29,200 switches (beta=8); "
                 "same big first-step drop here.\n";
    ctx.metric("items", 6.0);
}
