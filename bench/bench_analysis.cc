/**
 * @file
 * Wear-budget analyzer throughput: the full parse -> lower ->
 * capacity/demand dataflow -> A-code pipeline over a spec exercising
 * every analyzer path (design + guessing obligation, structure,
 * shares, workload envelopes, a two-cohort fleet). The analyzer sits
 * on the CI gate for every config in the tree, so its wall time per
 * spec is a budget worth watching.
 */

#include <chrono>

#include "analysis/passes.h"
#include "bench/harness.h"
#include "util/table.h"

using namespace lemons;

namespace {

const char *const kSpecText =
    "[design]\n"
    "alpha = 10\nbeta = 12\nlab = 91250\nk_fraction = 0.1\n"
    "guess_space = 1e6\nguess_success_ceiling = 0.5\n"
    "[structure]\n"
    "kind = parallel\nn = 1000\nk = 100\nalpha = 10\nbeta = 12\n"
    "[shares]\n"
    "n = 200\nk = 20\nfield_bits = 8\n"
    "[workload]\n"
    "mean_per_day = 50\nburst_probability = 0.05\nburst_multiplier = 3\n"
    "budget = 91250\nhorizon_days = 1825\n"
    "[fleet]\n"
    "devices = 10000\nhorizon_days = 1825\npremature_days = 365\n"
    "premature_tolerance = 0.05\n"
    "[cohort]\n"
    "name = retail\nweight = 0.7\nstagger_days = 90\n"
    "access_bound = 91250\nmean_per_day = 50\n"
    "infant_fraction = 0.02\ninfant_alpha = 9000\ninfant_beta = 0.8\n"
    "main_alpha = 150000\nmain_beta = 12\n"
    "[cohort]\n"
    "name = secondhand\nweight = 0.3\nstagger_days = 30\n"
    "access_bound = 91250\nmean_per_day = 40\n"
    "infant_fraction = 0.05\ninfant_alpha = 9000\ninfant_beta = 0.8\n"
    "main_alpha = 150000\nmain_beta = 12\n"
    "reprovision_day = 900\nreprovision_scale = 1.5\n";

} // namespace

LEMONS_BENCH(analysisPipeline, "analysis.pipeline")
{
    const uint64_t reps = ctx.scaled(200, 10);

    const auto start = std::chrono::steady_clock::now();
    size_t findings = 0;
    double capacityLo = 0.0;
    for (uint64_t rep = 0; rep < reps; ++rep) {
        const analysis::FileAnalysis analyzed =
            analysis::analyzeSpecText(kSpecText, "bench.lemons");
        findings += analyzed.findings.diagnostics().size();
        for (const analysis::GraphBudget &graph : analyzed.graphs)
            capacityLo += graph.systemCapacity.lo;
        ctx.keep(static_cast<double>(analyzed.cohorts.size()));
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const double perSpecMs = seconds * 1e3 / static_cast<double>(reps);
    ctx.metric("analysis.spec_ms", perSpecMs);
    ctx.metric("analysis.findings_per_spec",
               static_cast<double>(findings) /
                   static_cast<double>(reps));
    ctx.keep(capacityLo);

    if (ctx.reporting()) {
        Table table({"metric", "value"});
        table.addRow({"specs analyzed", formatCount(reps)});
        table.addRow({"ms per spec", formatGeneral(perSpecMs)});
        table.addRow({"findings per spec",
                      formatCount(findings / reps)});
        table.print(ctx.out());
        ctx.out() << "\n";
    }
}
