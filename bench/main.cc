#include "bench/harness.h"

int
main(int argc, char **argv)
{
    return lemons::bench::runMain(argc, argv);
}
