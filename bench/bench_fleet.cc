/**
 * @file
 * Fleet-campaign benchmarks: end-to-end cohort simulation throughput
 * plus the checkpoint codec and atomic-write costs that bound how
 * cheap a crash-safe checkpoint interval can be. The checkpoint.*
 * group separates pure encode/decode (CPU) from writeCheckpointAtomic
 * (fsync-dominated), so BENCH_results.json shows which one a slow
 * campaign should tune first.
 */

#include <cstdint>
#include <filesystem>
#include <string>

#include "bench/harness.h"
#include "fleet/campaign.h"
#include "fleet/checkpoint.h"
#include "lint/rules.h"
#include "util/stats.h"

using namespace lemons;
using lemons::bench::BenchContext;

namespace {

/** Two-cohort fielded-scale spec sized for a benchmark iteration. */
lint::FleetSpec
benchSpec(uint64_t devices)
{
    lint::FleetSpec spec;
    spec.devices = devices;
    spec.seed = 7;
    spec.chunkSize = 64;
    spec.checkpointEveryChunks = 2;
    spec.horizonDays = 730;
    spec.prematureDays = 180;

    lint::FleetCohortSpec retail;
    retail.name = "retail";
    retail.weight = 0.7;
    retail.staggerDays = 90.0;
    retail.accessBound = 91250;
    retail.usage.meanPerDay = 50.0;
    retail.usage.burstProbability = 0.05;
    retail.usage.burstMultiplier = 3.0;
    retail.lifetime.infantFraction = 0.02;
    retail.lifetime.infant = {9000.0, 0.8};
    retail.lifetime.main = {150000.0, 12.0};

    lint::FleetCohortSpec secondhand;
    secondhand.name = "secondhand";
    secondhand.weight = 0.3;
    secondhand.staggerDays = 30.0;
    secondhand.accessBound = 91250;
    secondhand.usage.meanPerDay = 40.0;
    secondhand.lifetime.infantFraction = 0.05;
    secondhand.lifetime.infant = {9000.0, 0.8};
    secondhand.lifetime.main = {150000.0, 12.0};
    secondhand.reprovisionDay = 365.0;
    secondhand.reprovisionUsageScale = 1.5;

    spec.cohorts = {retail, secondhand};
    return spec;
}

/** A checkpoint shaped like a mid-campaign write (cursor + cohorts). */
fleet::FleetCheckpoint
sampleCheckpoint()
{
    RunningStats stats;
    Rng rng(11);
    for (int i = 0; i < 4096; ++i)
        stats.add(rng.nextDouble() * 1825.0);

    fleet::FleetCheckpoint checkpoint;
    checkpoint.configFingerprint = 0x1234567890abcdefULL;
    for (int c = 0; c < 2; ++c) {
        fleet::CohortRecord record;
        record.name = c == 0 ? "retail" : "secondhand";
        record.devices = 3000;
        record.serviceDays = stats.state();
        record.replaced = 1200;
        record.premature = 37;
        record.reprovisioned = 450;
        checkpoint.completed.push_back(record);
    }
    checkpoint.hasCursor = true;
    checkpoint.cursor = {.seed = 99,
                         .requestedTrials = 4200,
                         .chunkSize = 64,
                         .executedChunks = 32,
                         .streaming = stats.state(),
                         .failures = {},
                         .nonFiniteTrials = {}};
    checkpoint.partialReplaced = 800;
    checkpoint.partialPremature = 21;
    checkpoint.partialReprovisioned = 300;
    return checkpoint;
}

} // namespace

LEMONS_BENCH(fleetCampaignRun, "fleet.campaign_run")
{
    // Whole two-cohort campaign through the batched engine, no
    // checkpointing: the pure simulation cost per fielded device.
    const lint::FleetSpec spec = benchSpec(ctx.scaled(4000, 200));
    const fleet::FleetCampaign campaign(spec);
    fleet::CampaignOptions options;
    options.threads = 2;
    const fleet::FleetSummary summary = campaign.run(options);
    ctx.keep(static_cast<double>(summary.digest()));
    ctx.metric("items", static_cast<double>(spec.devices));
    uint64_t replaced = 0;
    for (const fleet::CohortResult &cohort : summary.cohorts)
        replaced += cohort.replaced;
    ctx.metric("replaced", static_cast<double>(replaced));
}

LEMONS_BENCH(fleetCampaignCheckpointed, "fleet.campaign_checkpointed")
{
    // Same campaign with checkpoints every wave: the delta against
    // fleet.campaign_run is the full crash-safety tax (encode + two
    // fsyncs + two renames per wave).
    const lint::FleetSpec spec = benchSpec(ctx.scaled(4000, 200));
    const fleet::FleetCampaign campaign(spec);
    const std::string path = "bench-fleet.ckpt";
    fleet::CampaignOptions options;
    options.threads = 2;
    options.checkpointPath = path;
    const fleet::FleetSummary summary = campaign.run(options);
    ctx.keep(static_cast<double>(summary.digest()));
    ctx.metric("items", static_cast<double>(spec.devices));
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
    std::filesystem::remove(path + ".prev", ignored);
}

LEMONS_BENCH(fleetCheckpointEncode, "fleet.checkpoint_encode")
{
    const fleet::FleetCheckpoint checkpoint = sampleCheckpoint();
    const uint64_t iters = ctx.scaled(200000, 1000);
    size_t bytes = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        const std::vector<uint8_t> encoded =
            fleet::encodeCheckpoint(checkpoint);
        bytes = encoded.size();
        ctx.keep(static_cast<double>(encoded.back()));
    }
    ctx.metric("items", static_cast<double>(iters));
    ctx.metric("checkpoint_bytes", static_cast<double>(bytes));
}

LEMONS_BENCH(fleetCheckpointDecode, "fleet.checkpoint_decode")
{
    // Decode includes the CRC-32C pass, so this is also the per-load
    // corruption-detection cost.
    const std::vector<uint8_t> encoded =
        fleet::encodeCheckpoint(sampleCheckpoint());
    const uint64_t iters = ctx.scaled(200000, 1000);
    for (uint64_t i = 0; i < iters; ++i) {
        const fleet::FleetCheckpoint decoded = fleet::decodeCheckpoint(
            encoded.data(), encoded.size(), "bench");
        ctx.keep(static_cast<double>(decoded.partialReplaced));
    }
    ctx.metric("items", static_cast<double>(iters));
}

LEMONS_BENCH(fleetCheckpointWriteAtomic, "fleet.checkpoint_write_atomic")
{
    // The durable path: temp write + fsync + rotate + rename + parent
    // directory fsync. Storage-bound; sets the floor for how often a
    // campaign can afford to checkpoint.
    const fleet::FleetCheckpoint checkpoint = sampleCheckpoint();
    const std::string path = "bench-fleet-write.ckpt";
    const uint64_t iters = ctx.scaled(400, 10);
    for (uint64_t i = 0; i < iters; ++i)
        fleet::writeCheckpointAtomic(path, checkpoint);
    ctx.keep(static_cast<double>(iters));
    ctx.metric("items", static_cast<double>(iters));
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
    std::filesystem::remove(path + ".prev", ignored);
}

LEMONS_BENCH(fleetCheckpointLoad, "fleet.checkpoint_load")
{
    const std::string path = "bench-fleet-load.ckpt";
    fleet::writeCheckpointAtomic(path, sampleCheckpoint());
    const uint64_t iters = ctx.scaled(20000, 200);
    for (uint64_t i = 0; i < iters; ++i) {
        const fleet::FleetCheckpoint loaded = fleet::readCheckpoint(path);
        ctx.keep(static_cast<double>(loaded.completed.size()));
    }
    ctx.metric("items", static_cast<double>(iters));
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
    std::filesystem::remove(path + ".prev", ignored);
}
