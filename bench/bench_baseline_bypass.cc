/**
 * @file
 * Section 4 ablation: the software-counter baseline vs the limited-use
 * connection under the paper's published bypass attacks (MDSec power
 * cut, NAND mirroring, malicious firmware update).
 *
 * For each attack, reports whether a popularity-order brute force
 * cracks a victim whose passcode is ~5,000 guesses deep, and how many
 * validations the attacker managed.
 */

#include "bench/harness.h"
#include "core/design_solver.h"
#include "core/gate.h"
#include "core/software_baseline.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

LEMONS_BENCH(baselineBypass, "ablation.baseline_bypass")
{
    ctx.out() << "=== Software-guard bypasses vs wearout hardware "
                 "(victim passcode at guess rank 5,000) ===\n\n";

    const std::vector<uint8_t> key(32, 0xaa);
    const uint64_t rank = 5000;
    uint64_t totalAttempts = 0;
    Table table({"defence / attack", "validations", "cracked",
                 "device state"});

    {
        SoftwareCounterPhone phone(attackerGuess(rank), key);
        const auto outcome = naiveBruteForce(phone, 1000000);
        totalAttempts += outcome.attempts;
        table.addRow({"software counter / naive",
                      formatCount(outcome.attempts),
                      outcome.cracked ? "YES" : "no",
                      phone.wiped() ? "wiped" : "alive"});
    }
    {
        SoftwareCounterPhone phone(attackerGuess(rank), key);
        uint64_t attempts = 0;
        bool cracked = false;
        // MDSec power cut: every validation, no counter commit.
        for (uint64_t guess = 1; guess <= rank; ++guess) {
            ++attempts;
            if (phone.unlockWithPowerCut(attackerGuess(guess))) {
                cracked = true;
                break;
            }
        }
        totalAttempts += attempts;
        table.addRow({"software counter / power cut",
                      formatCount(attempts), cracked ? "YES" : "no",
                      phone.wiped() ? "wiped" : "alive"});
    }
    {
        SoftwareCounterPhone phone(attackerGuess(rank), key);
        const auto outcome = nandMirroringBruteForce(phone, 1000000);
        totalAttempts += outcome.attempts;
        table.addRow({"software counter / NAND mirroring",
                      formatCount(outcome.attempts),
                      outcome.cracked ? "YES" : "no",
                      phone.wiped() ? "wiped" : "alive"});
    }
    {
        SoftwareCounterPhone phone(attackerGuess(rank), key);
        phone.applyMaliciousFirmwareUpdate();
        const auto outcome = naiveBruteForce(phone, 1000000);
        totalAttempts += outcome.attempts;
        table.addRow({"software counter / firmware update",
                      formatCount(outcome.attempts),
                      outcome.cracked ? "YES" : "no",
                      phone.wiped() ? "wiped" : "alive"});
    }
    {
        // The hardware gate sized for 100 legitimate uses: no counter
        // exists, so the "bypasses" degenerate to plain hammering —
        // and the wearout bound ends it.
        DesignRequest request;
        request.device = {10.0, 12.0};
        request.legitimateAccessBound = 100;
        request.kFraction = 0.1;
        const Design design = DesignSolver(request).solve();
        const wearout::DeviceFactory factory(
            request.device, wearout::ProcessVariation::none());
        Rng rng(404);
        LimitedUseGate gate(design, factory, key, rng);
        uint64_t attempts = 0;
        while (gate.access().has_value())
            ++attempts;
        totalAttempts += attempts;
        const bool cracked = attempts >= rank;
        table.addRow({"limited-use gate / any of the above",
                      formatCount(attempts), cracked ? "YES" : "no",
                      "worn out"});
    }
    table.print(ctx.out());

    ctx.out()
        << "\nEvery software bypass reaches the victim's rank; the "
           "wearout gate bounds the attacker to ~its design window\n"
           "(scaled instance: ~100 attempts vs the 5,000 needed). At "
           "full scale the bound is ~91k attempts vs the ~1e8+ a\n"
           "professional cracker wants (Sections 3-4).\n";
    ctx.keep(static_cast<double>(totalAttempts));
    ctx.metric("items", static_cast<double>(totalAttempts));
}
