/**
 * @file
 * Figure 5: engineering space of the limited-use targeting system
 * (LAB = 100, strict degradation criteria).
 *
 *  5a — total #NEMS vs alpha without encoding, beta in {8..16},
 *  5b — with redundant encoding, k in {10,20,30}% n, beta in {4, 8}.
 */

#include <vector>

#include "bench/harness.h"
#include "core/explorer.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

namespace {

std::vector<double>
alphaGrid()
{
    std::vector<double> alphas;
    for (double a = 10.0; a <= 20.0; a += 1.0)
        alphas.push_back(a);
    return alphas;
}

std::string
countCell(const Design &design)
{
    return design.feasible ? formatCount(design.totalDevices)
                           : "infeasible";
}

} // namespace

LEMONS_BENCH(fig5aPlain, "fig5.targeting.plain")
{
    ctx.out() << "--- Fig 5a: targeting (LAB = 100) without encoding "
                 "---\n";
    Table table({"alpha", "beta=8", "beta=10", "beta=12", "beta=14",
                 "beta=16"});
    std::vector<std::vector<ConnectionSweepPoint>> columns;
    for (double beta : {8.0, 10.0, 12.0, 14.0, 16.0})
        columns.push_back(sweepDeviceCount(alphaGrid(), beta, 0.0, 100));
    for (size_t i = 0; i < alphaGrid().size(); ++i) {
        std::vector<std::string> row{formatGeneral(alphaGrid()[i], 3)};
        for (const auto &column : columns) {
            row.push_back(countCell(column[i].design));
            ctx.keep(static_cast<double>(column[i].design.totalDevices));
        }
        table.addRow(row);
    }
    table.print(ctx.out());
    ctx.out() << "Paper anchors: best 8,855 at (20, 16); worst "
                 "842,941 at (14, 8).\n\n";
    ctx.metric("items", static_cast<double>(5 * alphaGrid().size()));
}

LEMONS_BENCH(fig5bEncoded, "fig5.targeting.encoded")
{
    ctx.out() << "--- Fig 5b: targeting (LAB = 100) with redundant "
                 "encoding ---\n";
    Table table({"alpha", "k=10% b=8", "k=10% b=4", "k=20% b=8",
                 "k=20% b=4", "k=30% b=8", "k=30% b=4"});
    std::vector<std::vector<ConnectionSweepPoint>> columns;
    for (double kFraction : {0.1, 0.2, 0.3})
        for (double beta : {8.0, 4.0})
            columns.push_back(
                sweepDeviceCount(alphaGrid(), beta, kFraction, 100));
    for (size_t i = 0; i < alphaGrid().size(); ++i) {
        std::vector<std::string> row{formatGeneral(alphaGrid()[i], 3)};
        for (const auto &column : columns) {
            row.push_back(countCell(column[i].design));
            ctx.keep(static_cast<double>(column[i].design.totalDevices));
        }
        table.addRow(row);
    }
    table.print(ctx.out());
    ctx.out() << "Paper anchor: ~810 switches at k=10%, alpha=10, "
                 "beta=8; only 5-10 parallel structures needed, so "
                 "the curves are jagged (small usage target).\n";
    ctx.metric("items", static_cast<double>(6 * alphaGrid().size()));
}
