/**
 * @file
 * Throughput microbenchmarks for the coding substrates: Reed-Solomon
 * encode/decode and Shamir split/combine at the parameter points the
 * architectures use (k = 18/n = 175 connection copies, k = 8/n = 128
 * one-time pads, k = 30/n = 60 from Fig 3c).
 */

#include <benchmark/benchmark.h>

#include "rs/reed_solomon.h"
#include "shamir/shamir.h"
#include "util/rng.h"

using namespace lemons;

namespace {

std::vector<uint8_t>
randomBytes(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

void
BM_RsEncode(benchmark::State &state)
{
    const auto k = static_cast<size_t>(state.range(0));
    const auto n = static_cast<size_t>(state.range(1));
    const rs::RsCode code(k, n);
    Rng rng(1);
    const auto message = randomBytes(rng, 32);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.encode(message));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32);
}

void
BM_RsDecode(benchmark::State &state)
{
    const auto k = static_cast<size_t>(state.range(0));
    const auto n = static_cast<size_t>(state.range(1));
    const rs::RsCode code(k, n);
    Rng rng(2);
    const auto message = randomBytes(rng, 32);
    auto shares = code.encode(message);
    // Decode from the parity end (non-systematic path: real work).
    std::vector<rs::Share> subset(shares.end() -
                                      static_cast<std::ptrdiff_t>(k),
                                  shares.end());
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(subset, message.size()));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32);
}

void
BM_ShamirSplit(benchmark::State &state)
{
    const auto k = static_cast<size_t>(state.range(0));
    const auto n = static_cast<size_t>(state.range(1));
    const shamir::Scheme scheme(k, n);
    Rng rng(3);
    const auto secret = randomBytes(rng, 32);
    for (auto _ : state)
        benchmark::DoNotOptimize(scheme.split(secret, rng));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32);
}

void
BM_ShamirCombine(benchmark::State &state)
{
    const auto k = static_cast<size_t>(state.range(0));
    const auto n = static_cast<size_t>(state.range(1));
    const shamir::Scheme scheme(k, n);
    Rng rng(4);
    const auto secret = randomBytes(rng, 32);
    auto shares = scheme.split(secret, rng);
    shares.resize(k);
    for (auto _ : state)
        benchmark::DoNotOptimize(scheme.combine(shares));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32);
}

void
CodingArgs(benchmark::internal::Benchmark *bench)
{
    bench->Args({18, 175})->Args({8, 128})->Args({30, 60})->Args({2, 3});
}

BENCHMARK(BM_RsEncode)->Apply(CodingArgs);
BENCHMARK(BM_RsDecode)->Apply(CodingArgs);
BENCHMARK(BM_ShamirSplit)->Apply(CodingArgs);
BENCHMARK(BM_ShamirCombine)->Apply(CodingArgs);

} // namespace

BENCHMARK_MAIN();
