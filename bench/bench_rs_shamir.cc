/**
 * @file
 * Throughput microbenchmarks for the coding substrates: Reed-Solomon
 * encode/decode and Shamir split/combine at the parameter points the
 * architectures use (k = 18/n = 175 connection copies, k = 8/n = 128
 * one-time pads, k = 30/n = 60 from Fig 3c).
 */

#include <string>
#include <vector>

#include "bench/harness.h"
#include "rs/reed_solomon.h"
#include "shamir/shamir.h"
#include "util/rng.h"

using namespace lemons;
using lemons::bench::BenchContext;
using lemons::bench::registerBench;

namespace {

std::vector<uint8_t>
randomBytes(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

std::string
suffix(size_t k, size_t n)
{
    return "k" + std::to_string(k) + ".n" + std::to_string(n);
}

constexpr size_t kCodingPoints[][2] = {
    {18, 175}, {8, 128}, {30, 60}, {2, 3}};

} // namespace

LEMONS_BENCH_REGISTRAR(registerCodingBenches)
{
    for (const auto &point : kCodingPoints) {
        const size_t k = point[0];
        const size_t n = point[1];

        registerBench("rs.encode." + suffix(k, n), [k, n](BenchContext &ctx) {
            const rs::RsCode code(k, n);
            Rng rng(1);
            const auto message = randomBytes(rng, 32);
            const uint64_t iters = ctx.scaled(2000, 50);
            for (uint64_t i = 0; i < iters; ++i)
                ctx.keep(static_cast<double>(
                    code.encode(message).front().payload.front()));
            ctx.metric("items", static_cast<double>(iters));
        });

        registerBench("rs.decode." + suffix(k, n), [k, n](BenchContext &ctx) {
            const rs::RsCode code(k, n);
            Rng rng(2);
            const auto message = randomBytes(rng, 32);
            auto shares = code.encode(message);
            // Decode from the parity end (non-systematic path: real
            // work).
            std::vector<rs::Share> subset(
                shares.end() - static_cast<std::ptrdiff_t>(k),
                shares.end());
            const uint64_t iters = ctx.scaled(500, 20);
            for (uint64_t i = 0; i < iters; ++i) {
                const auto decoded = code.decode(subset, message.size());
                ctx.keep(decoded ? static_cast<double>(decoded->front())
                                 : -1.0);
            }
            ctx.metric("items", static_cast<double>(iters));
        });

        registerBench("shamir.split." + suffix(k, n),
                      [k, n](BenchContext &ctx) {
                          const shamir::Scheme scheme(k, n);
                          Rng rng(3);
                          const auto secret = randomBytes(rng, 32);
                          const uint64_t iters = ctx.scaled(2000, 50);
                          for (uint64_t i = 0; i < iters; ++i)
                              ctx.keep(static_cast<double>(
                                  scheme.split(secret, rng)
                                      .front()
                                      .payload.front()));
                          ctx.metric("items", static_cast<double>(iters));
                      });

        registerBench("shamir.combine." + suffix(k, n),
                      [k, n](BenchContext &ctx) {
                          const shamir::Scheme scheme(k, n);
                          Rng rng(4);
                          const auto secret = randomBytes(rng, 32);
                          auto shares = scheme.split(secret, rng);
                          shares.resize(k);
                          const uint64_t iters = ctx.scaled(2000, 50);
                          for (uint64_t i = 0; i < iters; ++i) {
                              const auto combined = scheme.combine(shares);
                              ctx.keep(combined ? static_cast<double>(
                                                      combined->front())
                                                : -1.0);
                          }
                          ctx.metric("items", static_cast<double>(iters));
                      });
    }
}
