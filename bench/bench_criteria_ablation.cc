/**
 * @file
 * Section 4.3.3 ablation: sensitivity of the architecture size to the
 * degradation criteria.
 *
 *  - minimum-reliability sweep, covering the paper's claim that
 *    99.99999 % lower-bound reliability costs ~3x linear devices,
 *  - residual-reliability sweep (the Fig 4c axis),
 *  - both, for the connection (LAB 91,250) and the targeting system
 *    (LAB 100).
 */

#include "bench/harness.h"
#include "core/design_solver.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::core;

namespace {

Design
solve(uint64_t lab, double minRel, double residual)
{
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = lab;
    request.kFraction = 0.1;
    request.criteria.minReliability = minRel;
    request.criteria.maxResidualReliability = residual;
    return DesignSolver(request).solve();
}

void
sweepMinReliability(lemons::bench::BenchContext &ctx, uint64_t lab)
{
    ctx.out() << "--- minimum reliability sweep (LAB = "
              << formatCount(lab) << ", p = 1%) ---\n";
    Table table({"min reliability", "#NEMS", "vs 0.99", "R(t) achieved"});
    const Design base = solve(lab, 0.99, 0.01);
    for (double minRel :
         {0.9, 0.99, 0.999, 0.99999, 0.9999999, 0.999999999}) {
        const Design d = solve(lab, minRel, 0.01);
        if (!d.feasible) {
            table.addRow({formatGeneral(minRel, 10), "infeasible", "-",
                          "-"});
            continue;
        }
        ctx.keep(static_cast<double>(d.totalDevices));
        table.addRow({formatGeneral(minRel, 10),
                      formatCount(d.totalDevices),
                      formatGeneral(static_cast<double>(d.totalDevices) /
                                        static_cast<double>(
                                            base.totalDevices),
                                    3) +
                          "x",
                      formatGeneral(d.reliabilityAtBound, 10)});
    }
    table.print(ctx.out());
    ctx.out() << "Paper: 99.99999% achievable with ~3x linear increase "
                 "(we see the same small-multiple growth).\n\n";
}

void
sweepResidual(lemons::bench::BenchContext &ctx, uint64_t lab)
{
    ctx.out() << "--- residual reliability sweep (LAB = "
              << formatCount(lab) << ", minRel = 99%) ---\n";
    Table table({"residual p", "#NEMS", "expected system total"});
    for (double p : {0.001, 0.01, 0.05, 0.10, 0.25}) {
        const Design d = solve(lab, 0.99, p);
        if (!d.feasible) {
            table.addRow({formatGeneral(p, 4), "infeasible", "-"});
            continue;
        }
        ctx.keep(d.expectedSystemTotal);
        table.addRow({formatGeneral(p, 4), formatCount(d.totalDevices),
                      formatGeneral(d.expectedSystemTotal, 8)});
    }
    table.print(ctx.out());
    ctx.out() << "\n";
}

} // namespace

LEMONS_BENCH(criteriaAblation, "ablation.degradation_criteria")
{
    ctx.out() << "=== Degradation-criteria ablation (alpha = 14, "
                 "beta = 8, k = 10% n) ===\n\n";
    sweepMinReliability(ctx, 91250);
    sweepResidual(ctx, 91250);
    sweepMinReliability(ctx, 100);
    sweepResidual(ctx, 100);
    ctx.metric("items", 24.0); // 24 solver runs
}
