/**
 * @file
 * Usage-profile ablation: does the paper's fixed budget really cover
 * its own usage assumption?
 *
 * Section 1 sizes the connection at 91,250 = 50/day x 365 x 5 exactly.
 * With stochastic daily usage (Poisson 50/day) that budget is a coin
 * flip — half of all users exhaust it before year five. This bench
 * quantifies the shortfall, the budget a 99 %/99.9 % survival target
 * actually needs, and how M-way replication (Section 4.1.5) absorbs
 * heavier and burstier profiles.
 */

#include <iostream>

#include "core/mway.h"
#include "sim/workload.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::sim;

int
main()
{
    std::cout << "=== Usage profiles vs the 91,250-access budget "
                 "(5-year horizon) ===\n\n";
    const uint64_t horizon = 5 * 365;
    const MonteCarlo engine(20170624, 2000);

    struct Profile
    {
        const char *label;
        UsageProfile profile;
    };
    const Profile profiles[] = {
        {"nominal 50/day", {50.0, 0.0, 1.0}},
        {"light 30/day", {30.0, 0.0, 1.0}},
        {"heavy 60/day", {60.0, 0.0, 1.0}},
        {"bursty 50/day (5% days x4)", {50.0, 0.05, 4.0}},
        {"power user 120/day", {120.0, 0.0, 1.0}},
    };

    std::cout << "--- survival probability of fixed budgets ---\n";
    Table table({"profile", "eff. mean/day", "P(91,250 lasts)",
                 "P(2x lasts)", "budget for 99%"});
    for (const Profile &p : profiles) {
        const auto p1 =
            survivalProbability(p.profile, 91250, horizon, engine);
        const auto p2 =
            survivalProbability(p.profile, 2 * 91250, horizon, engine);
        const uint64_t needed =
            budgetForSurvival(p.profile, horizon, 0.99, engine);
        table.addRow({p.label,
                      formatGeneral(p.profile.effectiveDailyMean(), 4),
                      formatGeneral(p1.estimate, 3),
                      formatGeneral(p2.estimate, 3),
                      formatCount(needed)});
    }
    table.print(std::cout);

    std::cout << "\n--- implied M-way replication factors "
                 "(Section 4.1.5) ---\n";
    Table mway({"profile", "budget for 99.9%", "M needed",
                "re-encrypt every"});
    for (const Profile &p : profiles) {
        const uint64_t needed =
            budgetForSurvival(p.profile, horizon, 0.999, engine);
        const uint64_t m = (needed + 91249) / 91250;
        mway.addRow({p.label, formatCount(needed), formatCount(m),
                     formatGeneral(60.0 / static_cast<double>(m), 3) +
                         " months"});
    }
    mway.print(std::cout);

    std::cout
        << "\nThe nominal profile needs only ~1% extra budget (Poisson "
           "noise is sqrt(91k) ~ 300 accesses), so a\nsingle module plus "
           "the paper's own minimum-reliability margin suffices; heavy "
           "and bursty users map\ndirectly onto the M-way replication "
           "table above.\n";
    return 0;
}
