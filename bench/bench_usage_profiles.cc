/**
 * @file
 * Usage-profile ablation: does the paper's fixed budget really cover
 * its own usage assumption?
 *
 * Section 1 sizes the connection at 91,250 = 50/day x 365 x 5 exactly.
 * With stochastic daily usage (Poisson 50/day) that budget is a coin
 * flip — half of all users exhaust it before year five. This bench
 * quantifies the shortfall, the budget a 99 %/99.9 % survival target
 * actually needs, and how M-way replication (Section 4.1.5) absorbs
 * heavier and burstier profiles.
 */

#include "bench/harness.h"
#include "core/mway.h"
#include "sim/workload.h"
#include "util/table.h"

using namespace lemons;
using namespace lemons::sim;

namespace {

struct Profile
{
    const char *label;
    UsageProfile profile;
};

constexpr Profile kProfiles[] = {
    {"nominal 50/day", {50.0, 0.0, 1.0}},
    {"light 30/day", {30.0, 0.0, 1.0}},
    {"heavy 60/day", {60.0, 0.0, 1.0}},
    {"bursty 50/day (5% days x4)", {50.0, 0.05, 4.0}},
    {"power user 120/day", {120.0, 0.0, 1.0}},
};

constexpr uint64_t kHorizonDays = 5 * 365;

} // namespace

LEMONS_BENCH(usageSurvival, "usage.survival_probability")
{
    ctx.out() << "=== Usage profiles vs the 91,250-access budget "
                 "(5-year horizon) ===\n\n";
    const uint64_t trials = ctx.scaled(2000, 50);
    const MonteCarlo engine(20170624, trials);

    ctx.out() << "--- survival probability of fixed budgets ---\n";
    Table table({"profile", "eff. mean/day", "P(91,250 lasts)",
                 "P(2x lasts)", "budget for 99%"});
    for (const Profile &p : kProfiles) {
        const auto p1 =
            survivalProbability(p.profile, 91250, kHorizonDays, engine);
        const auto p2 =
            survivalProbability(p.profile, 2 * 91250, kHorizonDays,
                                engine);
        const uint64_t needed =
            budgetForSurvival(p.profile, kHorizonDays, 0.99, engine);
        ctx.keep(p1.estimate + p2.estimate +
                 static_cast<double>(needed));
        table.addRow({p.label,
                      formatGeneral(p.profile.effectiveDailyMean(), 4),
                      formatGeneral(p1.estimate, 3),
                      formatGeneral(p2.estimate, 3),
                      formatCount(needed)});
    }
    table.print(ctx.out());
    ctx.metric("items", static_cast<double>(10 * trials));
}

LEMONS_BENCH(usageMway, "usage.mway_factors")
{
    const uint64_t trials = ctx.scaled(2000, 50);
    const MonteCarlo engine(20170624, trials);

    ctx.out() << "--- implied M-way replication factors "
                 "(Section 4.1.5) ---\n";
    Table mway({"profile", "budget for 99.9%", "M needed",
                "re-encrypt every"});
    for (const Profile &p : kProfiles) {
        const uint64_t needed =
            budgetForSurvival(p.profile, kHorizonDays, 0.999, engine);
        const uint64_t m = (needed + 91249) / 91250;
        ctx.keep(static_cast<double>(needed));
        mway.addRow({p.label, formatCount(needed), formatCount(m),
                     formatGeneral(60.0 / static_cast<double>(m), 3) +
                         " months"});
    }
    mway.print(ctx.out());

    ctx.out()
        << "\nThe nominal profile needs only ~1% extra budget (Poisson "
           "noise is sqrt(91k) ~ 300 accesses), so a\nsingle module plus "
           "the paper's own minimum-reliability margin suffices; heavy "
           "and bursty users map\ndirectly onto the M-way replication "
           "table above.\n";
    ctx.metric("items", static_cast<double>(5 * trials));
}
