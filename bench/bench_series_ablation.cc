/**
 * @file
 * Section 4.1.2 ablation: why series chains are discarded.
 *
 * Chaining n devices scales the effective alpha by n^(-1/beta), so
 * reaching a target alpha reduction factor y costs n = y^beta devices
 * — an explosion for the tight-shape devices the architectures need.
 * This bench quantifies the explosion and contrasts it with the
 * parallel + encoding alternative that the paper adopts.
 */

#include "arch/structures.h"
#include "bench/harness.h"
#include "core/design_solver.h"
#include "util/table.h"

using namespace lemons;
using wearout::Weibull;

LEMONS_BENCH(seriesAblation, "ablation.series_chains")
{
    ctx.out() << "=== Section 4.1.2 ablation: series chains vs parallel "
                 "encoding ===\n\n";

    ctx.out() << "--- Devices needed in series to scale alpha down by y "
                 "---\n";
    Table chain({"y", "beta=4", "beta=8", "beta=12", "beta=16"});
    for (double y : {1.5, 2.0, 3.0, 5.0, 10.0}) {
        std::vector<std::string> row{formatGeneral(y, 3)};
        for (double beta : {4.0, 8.0, 12.0, 16.0}) {
            row.push_back(formatSci(
                arch::SeriesChain::lengthForScaleFactor(y, beta), 2));
        }
        chain.addRow(row);
    }
    chain.print(ctx.out());
    ctx.out() << "\nAt beta = 12, halving alpha already costs 4,096 "
                 "chained devices; the paper discards the option.\n\n";

    ctx.out() << "--- Sanity: chain reliability equals the equivalent "
                 "scaled device ---\n";
    const Weibull device(20.0, 12.0);
    const arch::SeriesChain chain32(device, 32);
    const Weibull equivalent = chain32.equivalentDevice();
    Table eq({"access", "chain of 32", "equivalent single (alpha=" +
                                           formatGeneral(
                                               equivalent.alpha(), 4) +
                                           ")"});
    for (double x : {10.0, 14.0, 15.0, 16.0, 18.0}) {
        eq.addRow({formatGeneral(x, 3),
                   formatGeneral(chain32.reliabilityAt(x), 4),
                   formatGeneral(equivalent.reliability(x), 4)});
        ctx.keep(chain32.reliabilityAt(x));
    }
    eq.print(ctx.out());

    ctx.out() << "\n--- The alternative the paper adopts: k-out-of-n "
                 "parallel encoding ---\n";
    // Compare total devices to build the targeting system (LAB = 100)
    // from alpha = 20 devices via (a) series-scaling each copy's
    // device down to alpha ~ 1.7 then 100 copies of singles, vs (b)
    // the encoded parallel solver.
    const double y = 20.0 / 1.7;
    const double chainPerCopy =
        arch::SeriesChain::lengthForScaleFactor(y, 12.0);
    ctx.out() << "series route: " << formatSci(chainPerCopy * 100.0, 2)
              << " devices (100 copies x y^beta = "
              << formatSci(chainPerCopy, 2) << ")\n";

    core::DesignRequest request;
    request.device = {20.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const core::Design design = core::DesignSolver(request).solve();
    ctx.out() << "parallel + encoding route: "
              << (design.feasible ? formatCount(design.totalDevices)
                                  : "infeasible")
              << " devices (t=" << design.perCopyBound
              << ", n=" << design.width << ", N=" << design.copies
              << ")\n";
    ctx.keep(static_cast<double>(design.totalDevices));
    ctx.metric("items", 25.0);
}
