/**
 * @file
 * Throughput microbenchmarks for the classic errors-and-erasures
 * Reed-Solomon codec (Section 4.1.4's flash/CD/DVD framing), at the
 * standard RS(255, 223) point and smaller codes.
 */

#include <benchmark/benchmark.h>

#include "rs/classic_rs.h"
#include "util/rng.h"

using namespace lemons;

namespace {

std::vector<uint8_t>
randomBytes(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

void
BM_ClassicEncode(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto k = static_cast<size_t>(state.range(1));
    const rs::ClassicRsCodec codec(n, k);
    Rng rng(1);
    const auto message = randomBytes(rng, k);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.encode(message));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(k));
}

void
BM_ClassicDecodeClean(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto k = static_cast<size_t>(state.range(1));
    const rs::ClassicRsCodec codec(n, k);
    Rng rng(2);
    const auto word = codec.encode(randomBytes(rng, k));
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.decode(word));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(k));
}

void
BM_ClassicDecodeAtCapacity(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto k = static_cast<size_t>(state.range(1));
    const rs::ClassicRsCodec codec(n, k);
    Rng rng(3);
    auto word = codec.encode(randomBytes(rng, k));
    for (size_t e = 0; e < codec.errorCapacity(); ++e)
        word[e * 2] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.decode(word));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(k));
}

void
CodecArgs(benchmark::internal::Benchmark *bench)
{
    bench->Args({255, 223})->Args({63, 32})->Args({15, 11});
}

BENCHMARK(BM_ClassicEncode)->Apply(CodecArgs);
BENCHMARK(BM_ClassicDecodeClean)->Apply(CodecArgs);
BENCHMARK(BM_ClassicDecodeAtCapacity)->Apply(CodecArgs);

} // namespace

BENCHMARK_MAIN();
