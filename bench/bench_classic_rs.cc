/**
 * @file
 * Throughput microbenchmarks for the classic errors-and-erasures
 * Reed-Solomon codec (Section 4.1.4's flash/CD/DVD framing), at the
 * standard RS(255, 223) point and smaller codes.
 */

#include <string>
#include <vector>

#include "bench/harness.h"
#include "rs/classic_rs.h"
#include "util/rng.h"

using namespace lemons;
using lemons::bench::BenchContext;
using lemons::bench::registerBench;

namespace {

std::vector<uint8_t>
randomBytes(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

std::string
suffix(size_t n, size_t k)
{
    return "n" + std::to_string(n) + ".k" + std::to_string(k);
}

constexpr size_t kCodecPoints[][2] = {{255, 223}, {63, 32}, {15, 11}};

} // namespace

LEMONS_BENCH_REGISTRAR(registerClassicRsBenches)
{
    for (const auto &point : kCodecPoints) {
        const size_t n = point[0];
        const size_t k = point[1];

        registerBench("rs.classic.encode." + suffix(n, k),
                      [n, k](BenchContext &ctx) {
                          const rs::ClassicRsCodec codec(n, k);
                          Rng rng(1);
                          const auto message = randomBytes(rng, k);
                          const uint64_t iters = ctx.scaled(5000, 100);
                          for (uint64_t i = 0; i < iters; ++i)
                              ctx.keep(static_cast<double>(
                                  codec.encode(message).back()));
                          ctx.metric("items", static_cast<double>(iters));
                      });

        registerBench("rs.classic.decode_clean." + suffix(n, k),
                      [n, k](BenchContext &ctx) {
                          const rs::ClassicRsCodec codec(n, k);
                          Rng rng(2);
                          const auto word =
                              codec.encode(randomBytes(rng, k));
                          const uint64_t iters = ctx.scaled(5000, 100);
                          for (uint64_t i = 0; i < iters; ++i) {
                              const auto decoded = codec.decode(word);
                              ctx.keep(decoded ? static_cast<double>(
                                                     decoded->correctedErrors)
                                               : -1.0);
                          }
                          ctx.metric("items", static_cast<double>(iters));
                      });

        registerBench("rs.classic.decode_at_capacity." + suffix(n, k),
                      [n, k](BenchContext &ctx) {
                          const rs::ClassicRsCodec codec(n, k);
                          Rng rng(3);
                          auto word = codec.encode(randomBytes(rng, k));
                          for (size_t e = 0; e < codec.errorCapacity();
                               ++e)
                              word[e * 2] ^= static_cast<uint8_t>(
                                  1 + rng.nextBelow(255));
                          const uint64_t iters = ctx.scaled(1000, 20);
                          for (uint64_t i = 0; i < iters; ++i) {
                              const auto decoded = codec.decode(word);
                              ctx.keep(decoded ? static_cast<double>(
                                                     decoded->correctedErrors)
                                               : -1.0);
                          }
                          ctx.metric("items", static_cast<double>(iters));
                      });
    }
}
