/**
 * @file
 * Umbrella header for the lemons library.
 *
 * Downstream consumers (the shipped examples, external experiments)
 * include this single header instead of reaching into per-module
 * paths, so internal file moves never break user code:
 *
 *     #include "lemons/lemons.h"
 *
 * Modules are listed bottom-up in dependency order. Internal-only
 * headers (util/mutex.h, util/thread_annotations.h, lint/spec_file.h,
 * and the ir and verify modules) are deliberately excluded: they back
 * the CLI tools, not the public modelling API.
 */

#ifndef LEMONS_LEMONS_H
#define LEMONS_LEMONS_H

// util: RNG, statistics, math helpers, tables, histograms, CSV.
#include "util/checksum.h"
#include "util/csv.h"
#include "util/histogram.h"
#include "util/math.h"
#include "util/require.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

// obs: counters, timers, and the metrics registry.
#include "obs/json.h"
#include "obs/metrics.h"

// wearout: Weibull device models, process variation, environments.
#include "wearout/device.h"
#include "wearout/environment.h"
#include "wearout/mixture.h"
#include "wearout/population.h"
#include "wearout/weibull.h"

// gf / rs / shamir: finite fields, Reed-Solomon, secret sharing.
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "gf/poly.h"
#include "rs/classic_rs.h"
#include "rs/reed_solomon.h"
#include "shamir/shamir.h"
#include "shamir/shamir16.h"

// crypto: one-time pads, hashing, password/guessing models.
#include "crypto/guess_curve.h"
#include "crypto/hmac.h"
#include "crypto/otp.h"
#include "crypto/password_model.h"
#include "crypto/sha256.h"

// fault: fault plans and faulty-device wrappers.
#include "fault/fault_plan.h"
#include "fault/faulty_device.h"

// engine: pooled, batched, memoized Monte Carlo execution substrate.
#include "engine/batch.h"
#include "engine/cache.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"

// sim: the Monte Carlo front end, workloads, empirical distributions.
#include "sim/empirical.h"
#include "sim/monte_carlo.h"
#include "sim/workload.h"

// fleet: crash-safe fleet lifecycle campaigns and checkpointing.
#include "fleet/campaign.h"
#include "fleet/chaos.h"
#include "fleet/checkpoint.h"

// arch: wearout structures, their samplers, and cost models.
#include "arch/cost_model.h"
#include "arch/htree.h"
#include "arch/share_store.h"
#include "arch/shift_register.h"
#include "arch/structures.h"
#include "arch/structures_sim.h"

// lint: design-rule checking for DesignRequest specs.
#include "lint/diagnostics.h"
#include "lint/rules.h"

// core: solvers, gates, connections, and application models.
#include "core/calibration.h"
#include "core/connection.h"
#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "core/explorer.h"
#include "core/forward_secrecy.h"
#include "core/gate.h"
#include "core/mway.h"
#include "core/otp_chip.h"
#include "core/programmable_gate.h"
#include "core/software_baseline.h"
#include "core/targeting.h"
#include "core/usage_bounds.h"

// api / serve: the JSON service facade and the embeddable HTTP
// server behind lemonsd (lemons-api/1 envelopes, S-code errors).
#include "api/codec.h"
#include "api/json.h"
#include "api/service.h"
#include "api/types.h"
#include "serve/quota.h"
#include "serve/server.h"

#endif // LEMONS_LEMONS_H
