/**
 * @file
 * Deterministic regression pins for the reproduced figures.
 *
 * Every value recorded in EXPERIMENTS.md comes from deterministic
 * computations; this suite pins them so silent changes to the solver,
 * analytics, or cost models show up as test failures rather than as
 * quietly drifting "measured" numbers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/cost_model.h"
#include "arch/structures.h"
#include "arch/structures_sim.h"
#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "core/explorer.h"
#include "sim/monte_carlo.h"
#include "sim/workload.h"

namespace lemons::core {
namespace {

TEST(RegressionFigures, Fig3bAnchors)
{
    const wearout::Weibull device(9.3, 12.0);
    const arch::ParallelStructure forty(device, 40);
    EXPECT_NEAR(forty.reliabilityAt(10.0), 0.9787, 5e-4);
    EXPECT_NEAR(forty.reliabilityAt(11.0), 0.0219, 5e-4);
}

TEST(RegressionFigures, Fig3cAnchors)
{
    const wearout::Weibull device(20.0, 12.0);
    const arch::ParallelStructure k30(device, 60, 30);
    EXPECT_NEAR(k30.reliabilityAt(19.0), 0.9225, 5e-4);
    EXPECT_NEAR(k30.reliabilityAt(20.0), 0.0248, 5e-4);
}

TEST(RegressionFigures, Fig4bFlagshipDesign)
{
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    const Design d = DesignSolver(request).solve();
    ASSERT_TRUE(d.feasible);
    EXPECT_EQ(d.totalDevices, 1064700u);
    EXPECT_EQ(d.width, 175u);
    EXPECT_EQ(d.threshold, 18u);
    EXPECT_EQ(d.copies, 6084u);
    EXPECT_NEAR(d.expectedSystemTotal, 91305.2, 0.5);
}

TEST(RegressionFigures, Fig4cRelaxedDesign)
{
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    request.criteria.maxResidualReliability = 0.10;
    const Design d = DesignSolver(request).solve();
    ASSERT_TRUE(d.feasible);
    EXPECT_EQ(d.totalDevices, 669240u);
    EXPECT_NEAR(d.expectedSystemTotal, 91489.4, 0.5);
}

TEST(RegressionFigures, Fig4dUpperBoundDesigns)
{
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    request.upperBoundTarget = 100000;
    const Design d100 = DesignSolver(request).solve();
    ASSERT_TRUE(d100.feasible);
    EXPECT_EQ(d100.totalDevices, 104288u);
    EXPECT_LE(d100.expectedSystemTotal, 100000.0);

    request.upperBoundTarget = 200000;
    const Design d200 = DesignSolver(request).solve();
    ASSERT_TRUE(d200.feasible);
    EXPECT_EQ(d200.totalDevices, 18250u);
    EXPECT_LE(d200.expectedSystemTotal, 200000.0);
}

TEST(RegressionFigures, Fig5TargetingAnchors)
{
    DesignRequest request;
    request.device = {13.0, 8.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const Design d13 = DesignSolver(request).solve();
    ASSERT_TRUE(d13.feasible);
    EXPECT_EQ(d13.totalDevices, 1200u);

    request.device = {20.0, 16.0};
    request.kFraction = 0.0;
    const Design plain = DesignSolver(request).solve();
    ASSERT_TRUE(plain.feasible);
    EXPECT_EQ(plain.totalDevices, 266785u);
}

TEST(RegressionFigures, Fig8Anchors)
{
    OtpParams params;
    params.height = 4;
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    EXPECT_NEAR(OtpAnalytics(params).adversarySuccess(), 0.8496, 5e-4);
    params.height = 8;
    EXPECT_NEAR(OtpAnalytics(params).adversarySuccess(), 2.27e-8,
                2e-10);
    EXPECT_GT(OtpAnalytics(params).receiverSuccess(), 0.9999);
}

TEST(RegressionFigures, Fig9Anchors)
{
    const auto grid = sweepOtpAlphaHeight({80.0}, {6}, 128, 8, 1.0);
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_NEAR(grid[0].adversarySuccess, 0.0335, 5e-4);
}

TEST(RegressionFigures, Fig10Densities)
{
    const arch::CostModel model;
    const uint64_t expected[] = {4995004, 1665556, 624687, 249900,
                                 104131,  44630,   19526,  8678,
                                 3905,    1775};
    for (unsigned h = 2; h <= 11; ++h)
        EXPECT_EQ(model.treesPerMm2(h), expected[h - 2]) << "H = " << h;
    EXPECT_EQ(model.padsPerMm2(4, 128), 4880u);
}

TEST(RegressionFigures, Section652Costs)
{
    const arch::CostModel model;
    EXPECT_DOUBLE_EQ(model.padRetrievalLatencyMs(4, 128), 0.08512);
    EXPECT_DOUBLE_EQ(model.padRetrievalEnergyJ(4, 128), 5.12e-18);
    EXPECT_DOUBLE_EQ(model.accessEnergyJ(141), 1.41e-18);
}

TEST(RegressionFigures, Fig4aStrictCriteriaAnchor)
{
    // The strict-criteria value EXPERIMENTS.md explains (paper ~4e9).
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    const Design d = DesignSolver(request).solve();
    ASSERT_TRUE(d.feasible);
    EXPECT_EQ(d.totalDevices, 717879633120u);

    // And the Fig 3b-calibrated criteria recover the paper's magnitude.
    request.criteria.minReliability = 0.98;
    request.criteria.maxResidualReliability = 0.022;
    const Design calibrated = DesignSolver(request).solve();
    ASSERT_TRUE(calibrated.feasible);
    EXPECT_EQ(calibrated.totalDevices, 1869937581u);
}

TEST(RegressionFigures, PaperHeadlineNumbers)
{
    // The three headline parameters the paper builds its case studies
    // on: the connection's legitimate access bound (50/day x 365 x 5 =
    // 91,250, Section 1), the targeting system's bound of ~100
    // accesses (Section 5.2), and the 128-copy OTP encoding
    // (Section 6). The solver pins for the resulting designs live in
    // the figure tests above; these pin the inputs themselves so a
    // config drift cannot silently re-baseline everything at once.
    EXPECT_EQ(50u * 365u * 5u, 91250u);

    DesignRequest targeting;
    targeting.device = {13.0, 8.0};
    targeting.legitimateAccessBound = 100;
    targeting.kFraction = 0.1;
    const Design d = DesignSolver(targeting).solve();
    ASSERT_TRUE(d.feasible);
    EXPECT_EQ(d.perCopyBound * d.copies, 112u); // nominal ~100 accesses

    OtpParams params;
    params.height = 8;
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    EXPECT_GT(OtpAnalytics(params).receiverSuccess(), 0.9999);
}

TEST(RegressionFigures, MonteCarloStructureLifetimeGolden)
{
    // Deterministic-seed pin of the full sampling stack (counter-based
    // trial stream -> Weibull inverse CDF -> k-of-n order statistic).
    // Any change to the stream layout or the transform moves these
    // exact values. Re-baselined ONCE when the engine switched from
    // xoshiro split(i) to the definitional Philox trialStream(seed, i)
    // (see ARCHITECTURE.md, "Counter-based trial streams"); future
    // changes must reproduce these numbers bit-exactly.
    const wearout::Weibull device(14.0, 8.0);
    const arch::LifetimeSampler sampler = [&](Rng &rng) {
        return device.sample(rng);
    };
    const sim::MonteCarlo mc(42, 1000);
    const RunningStats stats =
        mc.run([&](Rng &rng) {
              return static_cast<double>(
                  arch::sampleParallelSurvivedAccesses(sampler, 175, 18,
                                                       rng));
          }).stats;
    EXPECT_EQ(stats.count(), 1000u);
    EXPECT_NEAR(stats.mean(), 14.998, 1e-9);
    EXPECT_DOUBLE_EQ(stats.min(), 14.0);
    EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RegressionFigures, UsageSurvivalGolden)
{
    // The Section 1 budget is a coin flip under its own Poisson usage
    // assumption — the observation EXPERIMENTS.md quantifies. Pinned
    // with the bench's seed so the number in the docs stays honest.
    const sim::UsageProfile nominal{50.0, 0.0, 1.0};
    const sim::MonteCarlo engine(20170624, 2000);
    // Pinned exactly; re-baselined once with the Philox trial stream.
    const auto p =
        sim::survivalProbability(nominal, 91250, 5 * 365, engine);
    EXPECT_NEAR(p.estimate, 0.5075, 1e-9);
}

} // namespace
} // namespace lemons::core
