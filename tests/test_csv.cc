/**
 * @file
 * Tests for the CSV output helper.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace lemons {
namespace {

TEST(CsvEscape, PlainFieldsUntouched)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
    EXPECT_EQ(csvEscape(""), "");
    EXPECT_EQ(csvEscape("1.5e-3"), "1.5e-3");
}

TEST(CsvEscape, CommasQuoted)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesDoubled)
{
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlinesQuoted)
{
    EXPECT_EQ(csvEscape("a\nb"), "\"a\nb\"");
}

class CsvWriterTest : public ::testing::Test
{
  protected:
    std::string path =
        ::testing::TempDir() + "lemons_csv_test.csv";

    void TearDown() override { std::remove(path.c_str()); }

    std::string
    readBack() const
    {
        std::ifstream in(path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }
};

TEST_F(CsvWriterTest, WritesRows)
{
    {
        CsvWriter writer(path);
        ASSERT_TRUE(writer.good());
        writer.writeRow({"alpha", "beta", "devices"});
        writer.writeRow({"14", "8", "1,064,700"});
        EXPECT_EQ(writer.rowCount(), 2u);
    }
    EXPECT_EQ(readBack(), "alpha,beta,devices\n14,8,\"1,064,700\"\n");
}

TEST_F(CsvWriterTest, EmptyRowIsBlankLine)
{
    {
        CsvWriter writer(path);
        writer.writeRow({});
        writer.writeRow({"x"});
    }
    EXPECT_EQ(readBack(), "\nx\n");
}

TEST_F(CsvWriterTest, WriteCsvFileOneShot)
{
    ASSERT_TRUE(writeCsvFile(path, {{"h", "k"}, {"4", "8"}}));
    EXPECT_EQ(readBack(), "h,k\n4,8\n");
}

TEST(WriteCsvFile, BadPathReturnsFalse)
{
    EXPECT_FALSE(writeCsvFile("/nonexistent-dir-zzz/file.csv",
                              {{"a"}}));
}

TEST(CsvWriter, BadPathReportsNotGood)
{
    CsvWriter writer("/nonexistent-dir-zzz/file.csv");
    EXPECT_FALSE(writer.good());
}

} // namespace
} // namespace lemons
