/**
 * @file
 * Thread-count invariance of the Monte Carlo engine.
 *
 * The engine's contract is that trial i depends only on (seed, i), so
 * parallel execution must be bit-identical to serial execution at any
 * worker count — including when trials throw or return non-finite
 * values. These tests pin that contract across 1, 2, and 8 workers
 * (more workers than this machine has cores, so oversubscription and
 * stride remainders are both exercised).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/structures_sim.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::sim {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/** A nontrivial metric: structure lifetime of a 40-of-60 parallel
 *  structure, consuming 60 Rng draws per trial. */
double
structureMetric(Rng &rng)
{
    const wearout::Weibull device(10.0, 12.0);
    const arch::LifetimeSampler sampler = [&](Rng &r) {
        return device.sample(r);
    };
    return static_cast<double>(
        arch::sampleParallelSurvivedAccesses(sampler, 60, 40, rng));
}

/** Bitwise vector equality (distinguishes -0.0/0.0, compares NaNs). */
void
expectBitIdentical(const std::vector<double> &got,
                   const std::vector<double> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(std::bit_cast<uint64_t>(got[i]),
                  std::bit_cast<uint64_t>(want[i]))
            << "trial " << i;
}

TEST(Determinism, RunSamplesParallelBitIdenticalToSerial)
{
    const MonteCarlo engine(4242, 501); // odd count: stride remainders
    const std::vector<double> serial = engine.runSamples(structureMetric);
    for (const unsigned threads : kThreadCounts) {
        const std::vector<double> parallel =
            engine.runSamplesParallel(structureMetric, threads);
        expectBitIdentical(parallel, serial);
    }
}

TEST(Determinism, RunStatsParallelMatchesSerial)
{
    const MonteCarlo engine(4242, 501);
    const RunningStats serial = engine.runStats(structureMetric);
    for (const unsigned threads : kThreadCounts) {
        const RunningStats parallel =
            engine.runStatsParallel(structureMetric, threads);
        // Count and extrema are exact at any worker count; mean and
        // variance agree up to floating-point reassociation.
        EXPECT_EQ(parallel.count(), serial.count());
        EXPECT_EQ(std::bit_cast<uint64_t>(parallel.min()),
                  std::bit_cast<uint64_t>(serial.min()));
        EXPECT_EQ(std::bit_cast<uint64_t>(parallel.max()),
                  std::bit_cast<uint64_t>(serial.max()));
        EXPECT_NEAR(parallel.mean(), serial.mean(),
                    1e-9 * std::abs(serial.mean()));
        EXPECT_NEAR(parallel.variance(), serial.variance(),
                    1e-6 * serial.variance());
    }
}

TEST(Determinism, RunStatsParallelReproducibleAtFixedThreadCount)
{
    // For a fixed worker count the fold order is fixed, so even the
    // reassociation-sensitive moments are bit-identical run to run.
    const MonteCarlo engine(9001, 300);
    const RunningStats a = engine.runStatsParallel(structureMetric, 2);
    const RunningStats b = engine.runStatsParallel(structureMetric, 2);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.mean()),
              std::bit_cast<uint64_t>(b.mean()));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.variance()),
              std::bit_cast<uint64_t>(b.variance()));
}

TEST(Determinism, ThrowingTrialsRethrowLowestIndexAtAnyThreadCount)
{
    const MonteCarlo engine(7, 200);
    const auto metric = [](Rng &rng, uint64_t trial) -> double {
        if (trial == 57 || trial == 133)
            throw std::runtime_error("trial " + std::to_string(trial));
        return rng.nextDouble();
    };
    // runSamplesReport's index-aware metric also backs the throwing
    // variant of runSamplesParallel via the same partitioning, so the
    // TrialReport is the deterministic observable.
    for (const unsigned threads : kThreadCounts) {
        const TrialReport report = engine.runSamplesReport(metric, threads);
        ASSERT_EQ(report.failedTrials.size(), 2u) << threads;
        EXPECT_EQ(report.failedTrials[0], 57u);
        EXPECT_EQ(report.failedTrials[1], 133u);
        EXPECT_EQ(report.firstError, "trial 57");
        EXPECT_EQ(report.cleanTrials(), 198u);
    }
}

TEST(Determinism, RunSamplesParallelThrowIsDeterministic)
{
    const MonteCarlo engine(7, 128);
    const auto throwingMetric = [](Rng &rng) -> double {
        const double x = rng.nextDouble();
        if (x > 0.95)
            throw std::runtime_error("u = " + std::to_string(x));
        return x;
    };

    std::string firstMessage;
    for (const unsigned threads : kThreadCounts) {
        try {
            static_cast<void>(
                engine.runSamplesParallel(throwingMetric, threads));
            FAIL() << "expected a rethrow at " << threads << " threads";
        } catch (const std::runtime_error &e) {
            if (firstMessage.empty())
                firstMessage = e.what();
            // The lowest-indexed throwing trial wins regardless of
            // worker interleaving, so the message is thread-invariant.
            EXPECT_EQ(std::string(e.what()), firstMessage)
                << threads << " threads";
        }
    }
}

TEST(Determinism, NonFiniteQuarantineIsThreadInvariant)
{
    const MonteCarlo engine(13, 400);
    const auto metric = [](Rng &rng, uint64_t trial) -> double {
        if (trial % 97 == 3)
            return std::numeric_limits<double>::infinity();
        if (trial % 101 == 7)
            return std::numeric_limits<double>::quiet_NaN();
        return rng.nextDouble();
    };

    const TrialReport serial = engine.runSamplesReport(metric, 1);
    EXPECT_FALSE(serial.complete());
    EXPECT_FALSE(serial.nonFiniteTrials.empty());
    for (const unsigned threads : kThreadCounts) {
        const TrialReport report = engine.runSamplesReport(metric, threads);
        EXPECT_EQ(report.trials, serial.trials);
        EXPECT_EQ(report.failedTrials, serial.failedTrials);
        EXPECT_EQ(report.nonFiniteTrials, serial.nonFiniteTrials);
        EXPECT_EQ(report.firstError, serial.firstError);
        EXPECT_EQ(report.stats.count(), serial.stats.count());
        EXPECT_EQ(std::bit_cast<uint64_t>(report.stats.min()),
                  std::bit_cast<uint64_t>(serial.stats.min()));
        EXPECT_EQ(std::bit_cast<uint64_t>(report.stats.max()),
                  std::bit_cast<uint64_t>(serial.stats.max()));
        expectBitIdentical(report.samples, serial.samples);
    }
}

} // namespace
} // namespace lemons::sim
