/**
 * @file
 * Thread-count invariance of the Monte Carlo engine.
 *
 * The engine's contract is that trial i depends only on (seed, i), so
 * parallel execution must be bit-identical to serial execution at any
 * worker count — including when trials throw or return non-finite
 * values. These tests pin that contract across 1, 2, and 8 workers
 * (more workers than this machine has cores, so oversubscription is
 * exercised) with a small explicit chunk size so every run spans many
 * chunks.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/structures_sim.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"
#include "util/simd.h"
#include "wearout/population.h"
#include "wearout/weibull.h"

namespace lemons::sim {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/** Small chunks: 501 trials split into 8 chunks, so multi-chunk
 *  scheduling (including the odd-sized tail chunk) is exercised. */
constexpr uint64_t kChunk = 64;

/** A nontrivial metric: structure lifetime of a 40-of-60 parallel
 *  structure, consuming 60 Rng draws per trial. */
double
structureMetric(Rng &rng)
{
    const wearout::Weibull device(10.0, 12.0);
    const arch::LifetimeSampler sampler = [&](Rng &r) {
        return device.sample(r);
    };
    return static_cast<double>(
        arch::sampleParallelSurvivedAccesses(sampler, 60, 40, rng));
}

/** Bitwise vector equality (distinguishes -0.0/0.0, compares NaNs). */
void
expectBitIdentical(const std::vector<double> &got,
                   const std::vector<double> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(std::bit_cast<uint64_t>(got[i]),
                  std::bit_cast<uint64_t>(want[i]))
            << "trial " << i;
}

TEST(Determinism, PooledSamplesBitIdenticalToSerial)
{
    const MonteCarlo engine(4242, 501); // odd count: tail-chunk remainder
    const std::vector<double> serial =
        engine.run(structureMetric, {.faults = FaultPolicy::Rethrow})
            .samples;
    for (const unsigned threads : kThreadCounts) {
        const std::vector<double> pooled =
            engine
                .run(structureMetric, {.threads = threads,
                                       .chunkSize = kChunk,
                                       .faults = FaultPolicy::Rethrow})
                .samples;
        expectBitIdentical(pooled, serial);
    }
}

TEST(Determinism, StreamingStatsMatchSerialAtAnyThreadCount)
{
    const MonteCarlo engine(4242, 501);
    const RunningStats serial =
        engine.run(structureMetric, {.faults = FaultPolicy::Rethrow})
            .stats;
    for (const unsigned threads : kThreadCounts) {
        const RunningStats streamed =
            engine
                .run(structureMetric, {.threads = threads,
                                       .chunkSize = kChunk,
                                       .keepSamples = false,
                                       .faults = FaultPolicy::Rethrow})
                .stats;
        // Count and extrema are exact at any worker count; mean and
        // variance agree up to floating-point reassociation.
        EXPECT_EQ(streamed.count(), serial.count());
        EXPECT_EQ(std::bit_cast<uint64_t>(streamed.min()),
                  std::bit_cast<uint64_t>(serial.min()));
        EXPECT_EQ(std::bit_cast<uint64_t>(streamed.max()),
                  std::bit_cast<uint64_t>(serial.max()));
        EXPECT_NEAR(streamed.mean(), serial.mean(),
                    1e-9 * std::abs(serial.mean()));
        EXPECT_NEAR(streamed.variance(), serial.variance(),
                    1e-6 * serial.variance());
    }
}

TEST(Determinism, StreamingStatsBitIdenticalAcrossThreadCounts)
{
    // Chunk partials are merged in chunk order, which depends only on
    // the chunk size — so even the reassociation-sensitive moments are
    // bit-identical at ANY thread count (the old strided engine only
    // promised this per fixed thread count).
    const MonteCarlo engine(9001, 300);
    const McRunOptions base{.chunkSize = kChunk,
                            .keepSamples = false,
                            .faults = FaultPolicy::Rethrow};
    McRunOptions two = base;
    two.threads = 2;
    const RunningStats a = engine.run(structureMetric, two).stats;
    for (const unsigned threads : kThreadCounts) {
        McRunOptions options = base;
        options.threads = threads;
        const RunningStats b = engine.run(structureMetric, options).stats;
        EXPECT_EQ(std::bit_cast<uint64_t>(a.mean()),
                  std::bit_cast<uint64_t>(b.mean()))
            << threads;
        EXPECT_EQ(std::bit_cast<uint64_t>(a.variance()),
                  std::bit_cast<uint64_t>(b.variance()))
            << threads;
    }
}

TEST(Determinism, CapturedFailuresAreThreadInvariant)
{
    const MonteCarlo engine(7, 200);
    const auto metric = [](Rng &rng, uint64_t trial) -> double {
        if (trial == 57 || trial == 133)
            throw std::runtime_error("trial " + std::to_string(trial));
        return rng.nextDouble();
    };
    for (const unsigned threads : kThreadCounts) {
        const TrialReport report = engine.run(
            metric, {.threads = threads, .chunkSize = kChunk});
        ASSERT_EQ(report.failedTrials.size(), 2u) << threads;
        EXPECT_EQ(report.failedTrials[0], 57u);
        EXPECT_EQ(report.failedTrials[1], 133u);
        EXPECT_EQ(report.firstError, "trial 57");
        EXPECT_EQ(report.cleanTrials(), 198u);
    }
}

TEST(Determinism, RethrowPolicyThrowIsDeterministic)
{
    const MonteCarlo engine(7, 128);
    const auto throwingMetric = [](Rng &rng) -> double {
        const double x = rng.nextDouble();
        if (x > 0.95)
            throw std::runtime_error("u = " + std::to_string(x));
        return x;
    };

    std::string firstMessage;
    for (const unsigned threads : kThreadCounts) {
        try {
            static_cast<void>(engine.run(
                throwingMetric, {.threads = threads,
                                 .chunkSize = 16,
                                 .faults = FaultPolicy::Rethrow}));
            FAIL() << "expected a rethrow at " << threads << " threads";
        } catch (const std::runtime_error &e) {
            if (firstMessage.empty())
                firstMessage = e.what();
            // The lowest-indexed throwing trial wins regardless of
            // worker interleaving, so the message is thread-invariant.
            EXPECT_EQ(std::string(e.what()), firstMessage)
                << threads << " threads";
        }
    }
}

TEST(Determinism, NonFiniteQuarantineIsThreadInvariant)
{
    const MonteCarlo engine(13, 400);
    const auto metric = [](Rng &rng, uint64_t trial) -> double {
        if (trial % 97 == 3)
            return std::numeric_limits<double>::infinity();
        if (trial % 101 == 7)
            return std::numeric_limits<double>::quiet_NaN();
        return rng.nextDouble();
    };

    const TrialReport serial = engine.run(metric, {.threads = 1});
    EXPECT_FALSE(serial.complete());
    EXPECT_FALSE(serial.nonFiniteTrials.empty());
    for (const unsigned threads : kThreadCounts) {
        const TrialReport report = engine.run(
            metric, {.threads = threads, .chunkSize = kChunk});
        EXPECT_EQ(report.trials, serial.trials);
        EXPECT_EQ(report.failedTrials, serial.failedTrials);
        EXPECT_EQ(report.nonFiniteTrials, serial.nonFiniteTrials);
        EXPECT_EQ(report.firstError, serial.firstError);
        EXPECT_EQ(report.stats.count(), serial.stats.count());
        EXPECT_EQ(std::bit_cast<uint64_t>(report.stats.min()),
                  std::bit_cast<uint64_t>(serial.stats.min()));
        EXPECT_EQ(std::bit_cast<uint64_t>(report.stats.max()),
                  std::bit_cast<uint64_t>(serial.stats.max()));
        expectBitIdentical(report.samples, serial.samples);
    }
}

TEST(Determinism, EarlyStopPointIsThreadInvariant)
{
    // Early stopping is decided at wave boundaries from chunk-ordered
    // streaming statistics, so the stopped trial count and the kept
    // samples are identical at any thread count.
    const MonteCarlo engine(21, 100000);
    const McRunOptions base{
        .chunkSize = 128,
        .faults = FaultPolicy::Rethrow,
        .earlyStop = EarlyStop{.relHalfWidth = 0.02,
                               .minTrials = 512,
                               .checkEveryChunks = 4}};
    McRunOptions serialOptions = base;
    const TrialReport serial = engine.run(structureMetric, serialOptions);
    EXPECT_TRUE(serial.stoppedEarly);
    EXPECT_LT(serial.trials, serial.requestedTrials);
    for (const unsigned threads : kThreadCounts) {
        McRunOptions options = base;
        options.threads = threads;
        const TrialReport report = engine.run(structureMetric, options);
        EXPECT_EQ(report.trials, serial.trials) << threads;
        EXPECT_EQ(report.stoppedEarly, serial.stoppedEarly) << threads;
        expectBitIdentical(report.samples, serial.samples);
    }
}

// ---------------------------------------------------------------------------
// Counter-based stream goldens.
//
// The Philox trial stream is definitional: the digests below were
// recorded once when the counter-based stream was introduced and must
// never change. A failure here is a break of the reproducibility
// contract (samples depend only on (seed, trial)), not a
// re-baselining opportunity.
// ---------------------------------------------------------------------------

/** A metric that drives the nominal-lot batched kernels, so the Philox
 *  fill/extremum paths (SIMD when available) are on the hot path:
 *  a 1-of-40 parallel bank plus an 8-deep series chain per trial. */
double
nominalKernelMetric(Rng &rng)
{
    const wearout::DeviceFactory factory(
        {9.3, 12.0}, wearout::ProcessVariation::none());
    return static_cast<double>(
        arch::sampleParallelSurvivedAccesses(factory, 40, 1, rng) +
        arch::sampleSeriesSurvivedAccesses(factory, 8, rng));
}

/** FNV-1a over the exact bit patterns of the samples. */
uint64_t
bitDigest(const std::vector<double> &samples)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (const double sample : samples) {
        hash ^= std::bit_cast<uint64_t>(sample);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** FNV-1a over the streaming-statistics state words. */
uint64_t
statsDigest(const RunningStats &stats)
{
    const uint64_t words[] = {stats.count(),
                              std::bit_cast<uint64_t>(stats.mean()),
                              std::bit_cast<uint64_t>(stats.variance()),
                              std::bit_cast<uint64_t>(stats.min()),
                              std::bit_cast<uint64_t>(stats.max())};
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (const uint64_t word : words) {
        hash ^= word;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

constexpr uint64_t kGoldenSeed = 20170624;
constexpr uint64_t kGoldenTrials = 501;
/** Digest of the 501 per-trial samples — invariant across threads,
 *  chunk sizes, SIMD level, early-stop arming, and resume. */
constexpr uint64_t kGoldenSampleDigest = 0x6ea8701c802e958fULL;
/** Digest of the streaming statistics at chunkSize 64. The moments
 *  are merged in chunk order, so this one is pinned per chunk size
 *  (the per-trial samples above are chunk-size invariant). */
constexpr uint64_t kGoldenStatsDigestChunk64 = 0xc00f4c1b61165276ULL;

TEST(Determinism, SimdLevelDoesNotChangeSamples)
{
    // The vectorized kernels mirror the scalar ones op-for-op, so a
    // whole run is bit-identical whichever path dispatch picks.
    if (simd::detectedLevel() == simd::Level::Scalar)
        GTEST_SKIP() << "host has no AVX2; scalar-vs-scalar is vacuous";
    const MonteCarlo engine(kGoldenSeed, kGoldenTrials);
    const McRunOptions options{.chunkSize = kChunk,
                               .faults = FaultPolicy::Rethrow};
    simd::setLevelForTesting(simd::Level::Avx2);
    const std::vector<double> vectorized =
        engine.run(nominalKernelMetric, options).samples;
    simd::setLevelForTesting(simd::Level::Scalar);
    const std::vector<double> scalar =
        engine.run(nominalKernelMetric, options).samples;
    simd::clearLevelForTesting();
    expectBitIdentical(vectorized, scalar);
}

TEST(Determinism, GoldenDigestAcrossThreadsChunksAndEarlyStopArming)
{
    // Every scheduling configuration must reproduce the recorded
    // sample digest bit-for-bit. The armed early stop uses a target
    // half-width no run can reach, so arming the machinery (wave
    // bookkeeping, boundary checks) must not perturb the stream.
    // (A *firing* early stop legitimately depends on the chunk size,
    // because stop points are wave boundaries; thread invariance of
    // the fired case is pinned by EarlyStopPointIsThreadInvariant.)
    const MonteCarlo engine(kGoldenSeed, kGoldenTrials);
    const uint64_t chunkSizes[] = {0, 1, 7, 4096};
    for (const unsigned threads : kThreadCounts) {
        for (const uint64_t chunk : chunkSizes) {
            for (const bool armed : {false, true}) {
                McRunOptions options;
                options.threads = threads;
                options.chunkSize = chunk;
                options.faults = FaultPolicy::Rethrow;
                if (armed)
                    options.earlyStop =
                        EarlyStop{.relHalfWidth = 1e-12,
                                  .minTrials = kGoldenTrials,
                                  .checkEveryChunks = 1};
                const TrialReport report =
                    engine.run(nominalKernelMetric, options);
                EXPECT_FALSE(report.stoppedEarly);
                EXPECT_EQ(bitDigest(report.samples), kGoldenSampleDigest)
                    << "threads=" << threads << " chunk=" << chunk
                    << " earlyStopArmed=" << armed;
            }
        }
    }
}

TEST(Determinism, CheckpointResumeReproducesGoldenDigest)
{
    // Resuming from any interior checkpoint lands on the same pinned
    // streaming digest as the uninterrupted run, at any thread count.
    const MonteCarlo engine(kGoldenSeed, kGoldenTrials);
    std::vector<engine::EngineCheckpoint> checkpoints;
    McRunOptions recording;
    recording.chunkSize = kChunk;
    recording.keepSamples = false;
    recording.faults = FaultPolicy::Rethrow;
    recording.checkpointEveryChunks = 2;
    recording.checkpoint = [&](const engine::EngineCheckpoint &checkpoint) {
        checkpoints.push_back(checkpoint);
    };
    const TrialReport full = engine.run(nominalKernelMetric, recording);
    EXPECT_EQ(statsDigest(full.stats), kGoldenStatsDigestChunk64);
    ASSERT_GE(checkpoints.size(), 2u);
    const engine::EngineCheckpoint &mid = checkpoints[checkpoints.size() / 2];
    ASSERT_GT(mid.executedChunks, 0u);
    ASSERT_LT(mid.executedChunks * kChunk, kGoldenTrials);
    for (const unsigned threads : kThreadCounts) {
        McRunOptions resume;
        resume.threads = threads;
        resume.chunkSize = kChunk;
        resume.keepSamples = false;
        resume.faults = FaultPolicy::Rethrow;
        resume.resumeFrom = &mid;
        const TrialReport resumed =
            engine.run(nominalKernelMetric, resume);
        EXPECT_EQ(statsDigest(resumed.stats), kGoldenStatsDigestChunk64)
            << "resume at " << threads << " threads";
    }
}

} // namespace
} // namespace lemons::sim
