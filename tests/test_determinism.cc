/**
 * @file
 * Thread-count invariance of the Monte Carlo engine.
 *
 * The engine's contract is that trial i depends only on (seed, i), so
 * parallel execution must be bit-identical to serial execution at any
 * worker count — including when trials throw or return non-finite
 * values. These tests pin that contract across 1, 2, and 8 workers
 * (more workers than this machine has cores, so oversubscription is
 * exercised) with a small explicit chunk size so every run spans many
 * chunks.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/structures_sim.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::sim {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/** Small chunks: 501 trials split into 8 chunks, so multi-chunk
 *  scheduling (including the odd-sized tail chunk) is exercised. */
constexpr uint64_t kChunk = 64;

/** A nontrivial metric: structure lifetime of a 40-of-60 parallel
 *  structure, consuming 60 Rng draws per trial. */
double
structureMetric(Rng &rng)
{
    const wearout::Weibull device(10.0, 12.0);
    const arch::LifetimeSampler sampler = [&](Rng &r) {
        return device.sample(r);
    };
    return static_cast<double>(
        arch::sampleParallelSurvivedAccesses(sampler, 60, 40, rng));
}

/** Bitwise vector equality (distinguishes -0.0/0.0, compares NaNs). */
void
expectBitIdentical(const std::vector<double> &got,
                   const std::vector<double> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(std::bit_cast<uint64_t>(got[i]),
                  std::bit_cast<uint64_t>(want[i]))
            << "trial " << i;
}

TEST(Determinism, PooledSamplesBitIdenticalToSerial)
{
    const MonteCarlo engine(4242, 501); // odd count: tail-chunk remainder
    const std::vector<double> serial =
        engine.run(structureMetric, {.faults = FaultPolicy::Rethrow})
            .samples;
    for (const unsigned threads : kThreadCounts) {
        const std::vector<double> pooled =
            engine
                .run(structureMetric, {.threads = threads,
                                       .chunkSize = kChunk,
                                       .faults = FaultPolicy::Rethrow})
                .samples;
        expectBitIdentical(pooled, serial);
    }
}

TEST(Determinism, StreamingStatsMatchSerialAtAnyThreadCount)
{
    const MonteCarlo engine(4242, 501);
    const RunningStats serial =
        engine.run(structureMetric, {.faults = FaultPolicy::Rethrow})
            .stats;
    for (const unsigned threads : kThreadCounts) {
        const RunningStats streamed =
            engine
                .run(structureMetric, {.threads = threads,
                                       .chunkSize = kChunk,
                                       .keepSamples = false,
                                       .faults = FaultPolicy::Rethrow})
                .stats;
        // Count and extrema are exact at any worker count; mean and
        // variance agree up to floating-point reassociation.
        EXPECT_EQ(streamed.count(), serial.count());
        EXPECT_EQ(std::bit_cast<uint64_t>(streamed.min()),
                  std::bit_cast<uint64_t>(serial.min()));
        EXPECT_EQ(std::bit_cast<uint64_t>(streamed.max()),
                  std::bit_cast<uint64_t>(serial.max()));
        EXPECT_NEAR(streamed.mean(), serial.mean(),
                    1e-9 * std::abs(serial.mean()));
        EXPECT_NEAR(streamed.variance(), serial.variance(),
                    1e-6 * serial.variance());
    }
}

TEST(Determinism, StreamingStatsBitIdenticalAcrossThreadCounts)
{
    // Chunk partials are merged in chunk order, which depends only on
    // the chunk size — so even the reassociation-sensitive moments are
    // bit-identical at ANY thread count (the old strided engine only
    // promised this per fixed thread count).
    const MonteCarlo engine(9001, 300);
    const McRunOptions base{.chunkSize = kChunk,
                            .keepSamples = false,
                            .faults = FaultPolicy::Rethrow};
    McRunOptions two = base;
    two.threads = 2;
    const RunningStats a = engine.run(structureMetric, two).stats;
    for (const unsigned threads : kThreadCounts) {
        McRunOptions options = base;
        options.threads = threads;
        const RunningStats b = engine.run(structureMetric, options).stats;
        EXPECT_EQ(std::bit_cast<uint64_t>(a.mean()),
                  std::bit_cast<uint64_t>(b.mean()))
            << threads;
        EXPECT_EQ(std::bit_cast<uint64_t>(a.variance()),
                  std::bit_cast<uint64_t>(b.variance()))
            << threads;
    }
}

TEST(Determinism, CapturedFailuresAreThreadInvariant)
{
    const MonteCarlo engine(7, 200);
    const auto metric = [](Rng &rng, uint64_t trial) -> double {
        if (trial == 57 || trial == 133)
            throw std::runtime_error("trial " + std::to_string(trial));
        return rng.nextDouble();
    };
    for (const unsigned threads : kThreadCounts) {
        const TrialReport report = engine.run(
            metric, {.threads = threads, .chunkSize = kChunk});
        ASSERT_EQ(report.failedTrials.size(), 2u) << threads;
        EXPECT_EQ(report.failedTrials[0], 57u);
        EXPECT_EQ(report.failedTrials[1], 133u);
        EXPECT_EQ(report.firstError, "trial 57");
        EXPECT_EQ(report.cleanTrials(), 198u);
    }
}

TEST(Determinism, RethrowPolicyThrowIsDeterministic)
{
    const MonteCarlo engine(7, 128);
    const auto throwingMetric = [](Rng &rng) -> double {
        const double x = rng.nextDouble();
        if (x > 0.95)
            throw std::runtime_error("u = " + std::to_string(x));
        return x;
    };

    std::string firstMessage;
    for (const unsigned threads : kThreadCounts) {
        try {
            static_cast<void>(engine.run(
                throwingMetric, {.threads = threads,
                                 .chunkSize = 16,
                                 .faults = FaultPolicy::Rethrow}));
            FAIL() << "expected a rethrow at " << threads << " threads";
        } catch (const std::runtime_error &e) {
            if (firstMessage.empty())
                firstMessage = e.what();
            // The lowest-indexed throwing trial wins regardless of
            // worker interleaving, so the message is thread-invariant.
            EXPECT_EQ(std::string(e.what()), firstMessage)
                << threads << " threads";
        }
    }
}

TEST(Determinism, NonFiniteQuarantineIsThreadInvariant)
{
    const MonteCarlo engine(13, 400);
    const auto metric = [](Rng &rng, uint64_t trial) -> double {
        if (trial % 97 == 3)
            return std::numeric_limits<double>::infinity();
        if (trial % 101 == 7)
            return std::numeric_limits<double>::quiet_NaN();
        return rng.nextDouble();
    };

    const TrialReport serial = engine.run(metric, {.threads = 1});
    EXPECT_FALSE(serial.complete());
    EXPECT_FALSE(serial.nonFiniteTrials.empty());
    for (const unsigned threads : kThreadCounts) {
        const TrialReport report = engine.run(
            metric, {.threads = threads, .chunkSize = kChunk});
        EXPECT_EQ(report.trials, serial.trials);
        EXPECT_EQ(report.failedTrials, serial.failedTrials);
        EXPECT_EQ(report.nonFiniteTrials, serial.nonFiniteTrials);
        EXPECT_EQ(report.firstError, serial.firstError);
        EXPECT_EQ(report.stats.count(), serial.stats.count());
        EXPECT_EQ(std::bit_cast<uint64_t>(report.stats.min()),
                  std::bit_cast<uint64_t>(serial.stats.min()));
        EXPECT_EQ(std::bit_cast<uint64_t>(report.stats.max()),
                  std::bit_cast<uint64_t>(serial.stats.max()));
        expectBitIdentical(report.samples, serial.samples);
    }
}

TEST(Determinism, EarlyStopPointIsThreadInvariant)
{
    // Early stopping is decided at wave boundaries from chunk-ordered
    // streaming statistics, so the stopped trial count and the kept
    // samples are identical at any thread count.
    const MonteCarlo engine(21, 100000);
    const McRunOptions base{
        .chunkSize = 128,
        .faults = FaultPolicy::Rethrow,
        .earlyStop = EarlyStop{.relHalfWidth = 0.02,
                               .minTrials = 512,
                               .checkEveryChunks = 4}};
    McRunOptions serialOptions = base;
    const TrialReport serial = engine.run(structureMetric, serialOptions);
    EXPECT_TRUE(serial.stoppedEarly);
    EXPECT_LT(serial.trials, serial.requestedTrials);
    for (const unsigned threads : kThreadCounts) {
        McRunOptions options = base;
        options.threads = threads;
        const TrialReport report = engine.run(structureMetric, options);
        EXPECT_EQ(report.trials, serial.trials) << threads;
        EXPECT_EQ(report.stoppedEarly, serial.stoppedEarly) << threads;
        expectBitIdentical(report.samples, serial.samples);
    }
}

} // namespace
} // namespace lemons::sim
