/**
 * @file
 * Tests for the engineering-space exploration drivers: the sweeps
 * must reproduce the qualitative trends of Figures 4, 5, 8, and 9.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/explorer.h"

namespace lemons::core {
namespace {

TEST(SweepDeviceCount, CoversAllRequestedAlphas)
{
    const auto points =
        sweepDeviceCount({10.0, 12.0, 14.0}, 8.0, 0.1, 91250);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_DOUBLE_EQ(points[0].alpha, 10.0);
    EXPECT_DOUBLE_EQ(points[2].alpha, 14.0);
    for (const auto &p : points) {
        EXPECT_DOUBLE_EQ(p.beta, 8.0);
        EXPECT_DOUBLE_EQ(p.kFraction, 0.1);
        EXPECT_TRUE(p.design.feasible);
    }
}

TEST(SweepDeviceCount, EncodedBeatsUnencodedPointwise)
{
    // Fig 4b vs 4a: at every device technology, redundant encoding
    // needs fewer switches than the plain parallel design. (The
    // per-alpha totals are jagged under our strict integer-access
    // criteria — see EXPERIMENTS.md — but the encoded < unencoded
    // ordering is robust.)
    const std::vector<double> alphas = {10.0, 14.0, 20.0};
    const auto encoded = sweepDeviceCount(alphas, 8.0, 0.1, 91250);
    const auto plain = sweepDeviceCount(alphas, 8.0, 0.0, 91250);
    for (size_t i = 0; i < alphas.size(); ++i) {
        ASSERT_TRUE(encoded[i].design.feasible)
            << "alpha = " << alphas[i];
        ASSERT_TRUE(plain[i].design.feasible) << "alpha = " << alphas[i];
        EXPECT_LT(encoded[i].design.totalDevices,
                  plain[i].design.totalDevices)
            << "alpha = " << alphas[i];
    }
    // And all encoded designs stay feasible across the full range.
    const auto fullRange = sweepDeviceCount(
        {10.0, 12.0, 14.0, 16.0, 18.0, 20.0}, 8.0, 0.1, 91250);
    for (const auto &p : fullRange)
        EXPECT_TRUE(p.design.feasible) << "alpha = " << p.alpha;
}

TEST(SweepDeviceCount, UnencodedExplodesAcrossAlpha)
{
    // Fig 4a: log-scale growth without encoding.
    const auto points = sweepDeviceCount({10.0, 14.0}, 8.0, 0.0, 91250);
    ASSERT_TRUE(points[0].design.feasible);
    ASSERT_TRUE(points[1].design.feasible);
    EXPECT_GT(points[1].design.totalDevices,
              50 * points[0].design.totalDevices);
}

TEST(SweepDeviceCount, TargetingIsOrdersOfMagnitudeSmaller)
{
    // Fig 5 vs Fig 4: LAB = 100 vs 91,250.
    const auto connection =
        sweepDeviceCount({14.0}, 8.0, 0.1, 91250);
    const auto targeting = sweepDeviceCount({14.0}, 8.0, 0.1, 100);
    ASSERT_TRUE(connection[0].design.feasible);
    ASSERT_TRUE(targeting[0].design.feasible);
    EXPECT_GT(connection[0].design.totalDevices,
              100 * targeting[0].design.totalDevices);
}

TEST(SweepDeviceCount, UpperBoundOptionPropagates)
{
    const auto strict = sweepDeviceCount({14.0}, 8.0, 0.1, 91250);
    const auto relaxed =
        sweepDeviceCount({14.0}, 8.0, 0.1, 91250, {}, 200000);
    ASSERT_TRUE(strict[0].design.feasible);
    ASSERT_TRUE(relaxed[0].design.feasible);
    EXPECT_LT(relaxed[0].design.totalDevices,
              strict[0].design.totalDevices);
}

TEST(SweepOtp, GridDimensionsAndContents)
{
    const auto grid = sweepOtpThresholdHeight({8, 16}, {4, 8}, 128,
                                              {10.0, 1.0});
    ASSERT_EQ(grid.size(), 4u);
    for (const auto &point : grid) {
        EXPECT_GE(point.receiverSuccess, 0.0);
        EXPECT_LE(point.receiverSuccess, 1.0);
        EXPECT_GE(point.adversarySuccess, 0.0);
        EXPECT_LE(point.adversarySuccess, point.receiverSuccess + 1e-12);
    }
}

TEST(SweepOtp, MatchesDirectAnalytics)
{
    const auto grid =
        sweepOtpThresholdHeight({8}, {4}, 128, {10.0, 1.0});
    ASSERT_EQ(grid.size(), 1u);
    const OtpAnalytics direct(grid[0].params);
    EXPECT_DOUBLE_EQ(grid[0].receiverSuccess, direct.receiverSuccess());
    EXPECT_DOUBLE_EQ(grid[0].adversarySuccess, direct.adversarySuccess());
}

TEST(SweepOtp, Figure8SuccessSpaceExists)
{
    // There must be (k, H) cells where the receiver succeeds and the
    // adversary fails — the paper's "success space" (Fig 8).
    const auto grid = sweepOtpThresholdHeight(
        {1, 8, 16, 32, 64, 96, 128}, {2, 4, 6, 8, 10, 12}, 128,
        {10.0, 1.0});
    int successCells = 0;
    for (const auto &point : grid)
        if (point.receiverSuccess > 0.99 && point.adversarySuccess < 0.01)
            ++successCells;
    EXPECT_GT(successCells, 5);
}

TEST(SweepOtp, Figure9AlphaTrend)
{
    // Fig 9: at fixed k and H, higher alpha raises receiver success.
    const auto grid =
        sweepOtpAlphaHeight({2.0, 10.0, 40.0, 80.0}, {6}, 128, 8, 1.0);
    ASSERT_EQ(grid.size(), 4u);
    for (size_t i = 1; i < grid.size(); ++i)
        EXPECT_GE(grid[i].receiverSuccess + 1e-12,
                  grid[i - 1].receiverSuccess);
}

TEST(SweepOtp, Figure9HeightBlocksAdversary)
{
    // Fig 9b: H >= 8 withstands adversaries across the alpha range.
    const auto grid =
        sweepOtpAlphaHeight({10.0, 40.0, 80.0}, {8, 10}, 128, 8, 1.0);
    for (const auto &point : grid)
        EXPECT_LT(point.adversarySuccess, 0.01);
}

} // namespace
} // namespace lemons::core
