# Schema check for the benchmark harness's BENCH_results.json: parse
# with CMake's JSON support (3.19+) and assert the stable contract
# consumers rely on — schema tag, run parameters, and per-benchmark
# name / reps / wall_ns.{median,mad,min} with sane values.
#
# Usage:
#   cmake -DJSON=<BENCH_results.json> -DMIN_BENCHMARKS=20
#         -P verify_bench_json.cmake

if(NOT JSON OR NOT MIN_BENCHMARKS)
    message(FATAL_ERROR "verify_bench_json.cmake needs JSON and "
                        "MIN_BENCHMARKS")
endif()
if(CMAKE_VERSION VERSION_LESS 3.19)
    message(FATAL_ERROR "verify_bench_json.cmake needs CMake >= 3.19 "
                        "for string(JSON)")
endif()

file(READ "${JSON}" content)

string(JSON schema ERROR_VARIABLE err GET "${content}" schema)
if(err OR NOT schema STREQUAL "lemons-bench/1")
    message(FATAL_ERROR "bad or missing schema tag in ${JSON}: "
                        "'${schema}' ${err}")
endif()

foreach(field quick scale reps warmup)
    string(JSON value ERROR_VARIABLE err GET "${content}" ${field})
    if(err)
        message(FATAL_ERROR "missing run parameter '${field}': ${err}")
    endif()
endforeach()

string(JSON count ERROR_VARIABLE err LENGTH "${content}" benchmarks)
if(err)
    message(FATAL_ERROR "missing benchmarks array: ${err}")
endif()
if(count LESS MIN_BENCHMARKS)
    message(FATAL_ERROR "only ${count} benchmarks in ${JSON}; expected "
                        "at least ${MIN_BENCHMARKS}")
endif()

math(EXPR last "${count} - 1")
set(previous "")
foreach(i RANGE 0 ${last})
    string(JSON name ERROR_VARIABLE err
           GET "${content}" benchmarks ${i} name)
    if(err)
        message(FATAL_ERROR "benchmark ${i} has no name: ${err}")
    endif()
    if(NOT previous STREQUAL "" AND NOT previous STRLESS name)
        message(FATAL_ERROR "benchmarks not name-sorted: '${previous}' "
                            "before '${name}'")
    endif()
    set(previous "${name}")

    string(JSON reps ERROR_VARIABLE err
           GET "${content}" benchmarks ${i} reps)
    if(err OR reps LESS 1)
        message(FATAL_ERROR "${name}: bad reps '${reps}' ${err}")
    endif()

    foreach(stat median mad min)
        string(JSON value ERROR_VARIABLE err
               GET "${content}" benchmarks ${i} wall_ns ${stat})
        if(err)
            message(FATAL_ERROR "${name}: missing wall_ns.${stat}: "
                                "${err}")
        endif()
        if(NOT stat STREQUAL "mad" AND value LESS_EQUAL 0)
            message(FATAL_ERROR "${name}: wall_ns.${stat} = ${value} "
                                "should be positive")
        endif()
    endforeach()

    # metrics / counters / timers must exist (possibly empty objects).
    foreach(section metrics counters timers)
        string(JSON type ERROR_VARIABLE err
               TYPE "${content}" benchmarks ${i} ${section})
        if(err OR NOT type STREQUAL "OBJECT")
            message(FATAL_ERROR "${name}: section '${section}' missing "
                                "or not an object: ${err}")
        endif()
    endforeach()
endforeach()

message(STATUS "${JSON}: schema lemons-bench/1, ${count} benchmarks OK")
