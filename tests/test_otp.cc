/**
 * @file
 * Unit tests for the one-time-pad XOR cipher.
 */

#include <gtest/gtest.h>

#include "crypto/otp.h"
#include "util/rng.h"

namespace lemons::crypto {
namespace {

TEST(Otp, EncryptDecryptRoundTrip)
{
    Rng rng(1);
    const std::vector<uint8_t> msg = {'s', 'e', 'c', 'r', 'e', 't'};
    const auto pad = generatePad(rng, msg.size());
    const auto cipher = otpApply(msg, pad);
    EXPECT_EQ(otpApply(cipher, pad), msg);
}

TEST(Otp, CiphertextDiffersFromPlaintext)
{
    Rng rng(2);
    const std::vector<uint8_t> msg(64, 0x41);
    const auto pad = generatePad(rng, msg.size());
    EXPECT_NE(otpApply(msg, pad), msg);
}

TEST(Otp, LongerPadAllowed)
{
    Rng rng(3);
    const std::vector<uint8_t> msg = {1, 2, 3};
    const auto pad = generatePad(rng, 10);
    const auto cipher = otpApply(msg, pad);
    EXPECT_EQ(cipher.size(), 3u);
    EXPECT_EQ(otpApply(cipher, pad), msg);
}

TEST(Otp, ShortPadRejected)
{
    Rng rng(4);
    const std::vector<uint8_t> msg = {1, 2, 3, 4};
    const auto pad = generatePad(rng, 3);
    EXPECT_THROW(otpApply(msg, pad), std::invalid_argument);
}

TEST(Otp, EmptyMessage)
{
    const auto cipher = otpApply({}, {});
    EXPECT_TRUE(cipher.empty());
}

TEST(Otp, ZeroPadIsIdentity)
{
    const std::vector<uint8_t> msg = {9, 8, 7};
    const std::vector<uint8_t> pad(3, 0);
    EXPECT_EQ(otpApply(msg, pad), msg);
}

TEST(Otp, PadBytesLookUniform)
{
    Rng rng(5);
    const auto pad = generatePad(rng, 100000);
    std::vector<int> counts(256, 0);
    for (uint8_t b : pad)
        ++counts[b];
    double chi = 0.0;
    const double expected = 100000.0 / 256.0;
    for (int c : counts)
        chi += (c - expected) * (c - expected) / expected;
    EXPECT_LT(chi, 400.0); // 255 dof, ~6 sigma
}

TEST(Otp, SameMessageDifferentPadsDifferentCiphertexts)
{
    // The property that makes key reuse catastrophic and single use
    // perfect: ciphertext depends entirely on the pad.
    Rng rng(6);
    const std::vector<uint8_t> msg(32, 0x00);
    const auto c1 = otpApply(msg, generatePad(rng, 32));
    const auto c2 = otpApply(msg, generatePad(rng, 32));
    EXPECT_NE(c1, c2);
    // With an all-zero message the ciphertext IS the pad: reuse leaks.
}

} // namespace
} // namespace lemons::crypto
