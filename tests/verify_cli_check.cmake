# Negative-control driver for the lemons-lint CLI: run it on a
# seeded-violation config and assert that it (a) exits non-zero and
# (b) emits every expected stable diagnostic code.
#
# Usage:
#   cmake -DLINT=<lemons-lint> -DCONFIG=<file.lemons>
#         -DEXPECT_CODES=V201,V202 [-DFLAGS=--analyze,--werror]
#         -P verify_cli_check.cmake
#
# FLAGS defaults to --verify; pass a comma-separated list to exercise
# other modes (e.g. --analyze,--werror for warning-severity A-codes).

if(NOT LINT OR NOT CONFIG OR NOT EXPECT_CODES)
    message(FATAL_ERROR "verify_cli_check.cmake needs LINT, CONFIG and "
                        "EXPECT_CODES")
endif()
if(NOT FLAGS)
    set(FLAGS "--verify")
endif()
string(REPLACE "," ";" flag_list "${FLAGS}")

execute_process(COMMAND ${LINT} ${flag_list} ${CONFIG}
                OUTPUT_VARIABLE stdout
                ERROR_VARIABLE stderr
                RESULT_VARIABLE status)

if(status EQUAL 0)
    message(FATAL_ERROR "expected a non-zero exit from ${LINT} ${FLAGS} "
                        "${CONFIG}, got success; output:\n${stdout}${stderr}")
endif()

string(REPLACE "," ";" expected "${EXPECT_CODES}")
foreach(code IN LISTS expected)
    string(FIND "${stdout}${stderr}" "[${code}]" at)
    if(at EQUAL -1)
        message(FATAL_ERROR "expected [${code}] in the diagnostics for "
                            "${CONFIG}; output:\n${stdout}${stderr}")
    endif()
endforeach()
