# Negative-control driver for `lemons-lint --verify`: run the CLI on a
# seeded-violation config and assert that it (a) exits non-zero and
# (b) emits every expected stable diagnostic code.
#
# Usage:
#   cmake -DLINT=<lemons-lint> -DCONFIG=<file.lemons>
#         -DEXPECT_CODES=V201,V202 -P verify_cli_check.cmake

if(NOT LINT OR NOT CONFIG OR NOT EXPECT_CODES)
    message(FATAL_ERROR "verify_cli_check.cmake needs LINT, CONFIG and "
                        "EXPECT_CODES")
endif()

execute_process(COMMAND ${LINT} --verify ${CONFIG}
                OUTPUT_VARIABLE stdout
                ERROR_VARIABLE stderr
                RESULT_VARIABLE status)

if(status EQUAL 0)
    message(FATAL_ERROR "expected a non-zero exit from ${LINT} --verify "
                        "${CONFIG}, got success; output:\n${stdout}${stderr}")
endif()

string(REPLACE "," ";" expected "${EXPECT_CODES}")
foreach(code IN LISTS expected)
    string(FIND "${stdout}${stderr}" "[${code}]" at)
    if(at EQUAL -1)
        message(FATAL_ERROR "expected [${code}] in the diagnostics for "
                            "${CONFIG}; output:\n${stdout}${stderr}")
    endif()
endforeach()
