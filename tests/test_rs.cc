/**
 * @file
 * Unit and property tests for the Reed-Solomon erasure code.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "rs/reed_solomon.h"
#include "util/rng.h"

namespace lemons::rs {
namespace {

std::vector<uint8_t>
randomMessage(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

TEST(RsCode, RejectsBadParameters)
{
    EXPECT_THROW(RsCode(0, 5), std::invalid_argument);
    EXPECT_THROW(RsCode(6, 5), std::invalid_argument);
    EXPECT_THROW(RsCode(1, 256), std::invalid_argument);
}

TEST(RsCode, ShareSizeIsCeilOfMessageOverK)
{
    const RsCode code(3, 7);
    EXPECT_EQ(code.shareSize(0), 0u);
    EXPECT_EQ(code.shareSize(1), 1u);
    EXPECT_EQ(code.shareSize(3), 1u);
    EXPECT_EQ(code.shareSize(4), 2u);
    EXPECT_EQ(code.shareSize(32), 11u);
}

TEST(RsCode, SystematicSharesCarryRawData)
{
    const RsCode code(2, 5);
    const std::vector<uint8_t> msg = {1, 2, 3, 4};
    const auto shares = code.encode(msg);
    ASSERT_EQ(shares.size(), 5u);
    EXPECT_EQ(shares[0].payload, (std::vector<uint8_t>{1, 2}));
    EXPECT_EQ(shares[1].payload, (std::vector<uint8_t>{3, 4}));
}

TEST(RsCode, DecodeFromFirstKShares)
{
    const RsCode code(3, 6);
    Rng rng(1);
    const auto msg = randomMessage(rng, 20);
    auto shares = code.encode(msg);
    shares.resize(3);
    const auto decoded = code.decode(shares, msg.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
}

TEST(RsCode, DecodeFromParityOnly)
{
    const RsCode code(3, 6);
    Rng rng(2);
    const auto msg = randomMessage(rng, 9);
    const auto shares = code.encode(msg);
    const std::vector<Share> parity = {shares[3], shares[4], shares[5]};
    const auto decoded = code.decode(parity, msg.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
}

TEST(RsCode, TooFewSharesFails)
{
    const RsCode code(4, 8);
    Rng rng(3);
    const auto msg = randomMessage(rng, 16);
    auto shares = code.encode(msg);
    shares.resize(3);
    EXPECT_FALSE(code.decode(shares, msg.size()).has_value());
}

TEST(RsCode, DuplicateIndicesRejected)
{
    const RsCode code(2, 4);
    Rng rng(4);
    const auto msg = randomMessage(rng, 4);
    auto shares = code.encode(msg);
    std::vector<Share> bad = {shares[0], shares[0]};
    EXPECT_FALSE(code.decode(bad, msg.size()).has_value());
}

TEST(RsCode, OutOfRangeIndexRejected)
{
    const RsCode code(2, 4);
    Rng rng(5);
    const auto msg = randomMessage(rng, 4);
    auto shares = code.encode(msg);
    shares[0].index = 200;
    EXPECT_FALSE(
        code.decode({shares[0], shares[1]}, msg.size()).has_value());
}

TEST(RsCode, CorruptedExtraShareDetected)
{
    const RsCode code(2, 5);
    Rng rng(6);
    const auto msg = randomMessage(rng, 8);
    auto shares = code.encode(msg);
    shares[4].payload[0] ^= 0x01;
    EXPECT_FALSE(code.verifyConsistent(shares));
    EXPECT_FALSE(code.decode(shares, msg.size()).has_value());
}

TEST(RsCode, ConsistentSharesVerify)
{
    const RsCode code(3, 7);
    Rng rng(7);
    const auto msg = randomMessage(rng, 15);
    const auto shares = code.encode(msg);
    EXPECT_TRUE(code.verifyConsistent(shares));
}

TEST(RsCode, EmptyMessageRoundTrips)
{
    const RsCode code(2, 4);
    const std::vector<uint8_t> empty;
    const auto shares = code.encode(empty);
    const auto decoded = code.decode(shares, 0);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->empty());
}

TEST(RsCode, PaddedMessageSizeRestored)
{
    // Message length not divisible by k: padding must be stripped.
    const RsCode code(3, 5);
    Rng rng(8);
    const auto msg = randomMessage(rng, 10);
    const auto shares = code.encode(msg);
    const auto decoded = code.decode(shares, msg.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->size(), 10u);
    EXPECT_EQ(*decoded, msg);
}

TEST(RsCode, WrongMessageSizeFails)
{
    const RsCode code(2, 4);
    Rng rng(9);
    const auto msg = randomMessage(rng, 8);
    const auto shares = code.encode(msg);
    // Claiming a size that implies a different chunking is rejected.
    EXPECT_FALSE(code.decode(shares, 100).has_value());
}

TEST(Share, SerializationRoundTrip)
{
    const Share share{7, {1, 2, 3}};
    const auto bytes = share.toBytes();
    EXPECT_EQ(bytes, (std::vector<uint8_t>{7, 1, 2, 3}));
    const auto parsed = Share::fromBytes(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, share);
}

TEST(Share, FromBytesRejectsEmpty)
{
    EXPECT_FALSE(Share::fromBytes({}).has_value());
}

/** Property sweep: every k-subset of shares reconstructs the message. */
class RsSubsetProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(RsSubsetProperty, EveryKSubsetDecodes)
{
    const auto [k, n] = GetParam();
    const RsCode code(k, n);
    Rng rng(1000 + 17 * k + n);
    const auto msg = randomMessage(rng, 12);
    const auto shares = code.encode(msg);

    // 200 random k-subsets (or all, for tiny spaces).
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<Share> subset(shares.begin(), shares.end());
        // Fisher-Yates prefix shuffle to pick k distinct shares.
        for (size_t i = 0; i < k; ++i) {
            const size_t j =
                i + static_cast<size_t>(rng.nextBelow(subset.size() - i));
            std::swap(subset[i], subset[j]);
        }
        subset.resize(k);
        const auto decoded = code.decode(subset, msg.size());
        ASSERT_TRUE(decoded.has_value())
            << "k=" << k << " n=" << n << " trial=" << trial;
        EXPECT_EQ(*decoded, msg);
    }
}

INSTANTIATE_TEST_SUITE_P(
    KnGrid, RsSubsetProperty,
    ::testing::Values(std::make_tuple<size_t, size_t>(1, 1),
                      std::make_tuple<size_t, size_t>(1, 8),
                      std::make_tuple<size_t, size_t>(2, 3),
                      std::make_tuple<size_t, size_t>(3, 10),
                      std::make_tuple<size_t, size_t>(6, 60),
                      std::make_tuple<size_t, size_t>(8, 128),
                      std::make_tuple<size_t, size_t>(30, 60),
                      std::make_tuple<size_t, size_t>(18, 175),
                      std::make_tuple<size_t, size_t>(16, 255)));

} // namespace
} // namespace lemons::rs
