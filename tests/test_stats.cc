/**
 * @file
 * Unit tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/rng.h"
#include "util/stats.h"

namespace lemons {
namespace {

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.meanStdError(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(4.2);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.2);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.2);
    EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(RunningStats, MatchesDirectComputation)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    // Sample variance with Bessel correction: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.meanStdError(), s.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStats, NumericallyStableForShiftedData)
{
    RunningStats s;
    const double offset = 1e9;
    for (int i = 0; i < 1000; ++i)
        s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(s.mean(), offset, 1e-3);
    EXPECT_NEAR(s.variance(), 1.001, 0.01);
}

TEST(RunningStats, QuarantinesNonFiniteObservations)
{
    RunningStats s;
    s.add(1.0);
    s.add(std::numeric_limits<double>::quiet_NaN());
    s.add(3.0);
    s.add(std::numeric_limits<double>::infinity());
    s.add(-std::numeric_limits<double>::infinity());

    // The aggregates see only the finite samples...
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_TRUE(std::isfinite(s.variance()));
    // ...but the exclusions are not silent.
    EXPECT_EQ(s.nonFiniteCount(), 3u);
}

TEST(RunningStats, AllNonFiniteLeavesAccumulatorEmpty)
{
    RunningStats s;
    s.add(std::numeric_limits<double>::quiet_NaN());
    s.add(std::numeric_limits<double>::infinity());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.nonFiniteCount(), 2u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsMerge, EquivalentToSingleAccumulator)
{
    RunningStats whole;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 5000; ++i) {
        const double x = 1e6 + std::cos(0.37 * i) * (1.0 + 0.01 * (i % 13));
        whole.add(x);
        (i % 3 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-6);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6 * whole.variance());
}

TEST(RunningStatsMerge, EmptyIsIdentityOnBothSides)
{
    RunningStats filled;
    filled.add(1.0);
    filled.add(3.0);

    RunningStats intoEmpty;
    intoEmpty.merge(filled);
    EXPECT_EQ(intoEmpty.count(), 2u);
    EXPECT_DOUBLE_EQ(intoEmpty.mean(), 2.0);
    EXPECT_DOUBLE_EQ(intoEmpty.min(), 1.0);
    EXPECT_DOUBLE_EQ(intoEmpty.max(), 3.0);

    filled.merge(RunningStats{});
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_DOUBLE_EQ(filled.mean(), 2.0);

    RunningStats bothEmpty;
    bothEmpty.merge(RunningStats{});
    EXPECT_EQ(bothEmpty.count(), 0u);
    EXPECT_EQ(bothEmpty.mean(), 0.0);
}

TEST(RunningStatsMerge, QuarantineTallySurvivesEveryBranch)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // Empty target with prior quarantine absorbing a filled source.
    RunningStats target;
    target.add(nan);
    RunningStats source;
    source.add(2.0);
    source.add(nan);
    target.merge(source);
    EXPECT_EQ(target.count(), 1u);
    EXPECT_EQ(target.nonFiniteCount(), 2u);

    // Empty source still donates its quarantine count.
    RunningStats onlyNan;
    onlyNan.add(nan);
    target.merge(onlyNan);
    EXPECT_EQ(target.count(), 1u);
    EXPECT_EQ(target.nonFiniteCount(), 3u);
}

TEST(SharedRunningStats, SnapshotSeesAddsAndMerges)
{
    SharedRunningStats shared;
    shared.add(1.0);
    RunningStats local;
    local.add(5.0);
    local.add(9.0);
    shared.mergeFrom(local);
    const RunningStats snap = shared.snapshot();
    EXPECT_EQ(snap.count(), 3u);
    EXPECT_DOUBLE_EQ(snap.mean(), 5.0);
    EXPECT_DOUBLE_EQ(snap.min(), 1.0);
    EXPECT_DOUBLE_EQ(snap.max(), 9.0);
}

TEST(Quantile, MedianOfOddSet)
{
    EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, Extremes)
{
    const std::vector<double> xs = {5.0, 1.0, 9.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, LinearInterpolation)
{
    // Sorted: 0, 10. q=0.25 -> 2.5.
    EXPECT_DOUBLE_EQ(quantile({10.0, 0.0}, 0.25), 2.5);
}

TEST(Quantile, RejectsEmptyAndBadQ)
{
    EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
    EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(WilsonInterval, ContainsEstimate)
{
    const auto ci = wilsonInterval(30, 100);
    EXPECT_NEAR(ci.estimate, 0.3, 1e-12);
    EXPECT_LT(ci.low, 0.3);
    EXPECT_GT(ci.high, 0.3);
    EXPECT_GE(ci.low, 0.0);
    EXPECT_LE(ci.high, 1.0);
}

TEST(WilsonInterval, ZeroSuccessesHasPositiveUpperBound)
{
    const auto ci = wilsonInterval(0, 100);
    EXPECT_EQ(ci.estimate, 0.0);
    EXPECT_EQ(ci.low, 0.0);
    EXPECT_GT(ci.high, 0.0);
    EXPECT_LT(ci.high, 0.1);
}

TEST(WilsonInterval, AllSuccesses)
{
    // At p-hat = 1 the Wilson upper bound is exactly 1 and the lower
    // bound is strictly below it.
    const auto ci = wilsonInterval(100, 100);
    EXPECT_EQ(ci.estimate, 1.0);
    EXPECT_LT(ci.low, 1.0);
    EXPECT_GT(ci.low, 0.9);
    EXPECT_DOUBLE_EQ(ci.high, 1.0);
}

TEST(WilsonInterval, WidthShrinksWithTrials)
{
    const auto narrow = wilsonInterval(500, 1000);
    const auto wide = wilsonInterval(5, 10);
    EXPECT_LT(narrow.high - narrow.low, wide.high - wide.low);
}

TEST(WilsonInterval, RejectsBadInputs)
{
    EXPECT_THROW(wilsonInterval(1, 0), std::invalid_argument);
    EXPECT_THROW(wilsonInterval(11, 10), std::invalid_argument);
}

TEST(RunningStats, EmptyExtremaAreIdentityElements)
{
    // Documented contract — and a hard requirement now that shards
    // are serialized: reading min()/max() of an empty accumulator
    // must be +inf/-inf, never uninitialized memory.
    const RunningStats empty;
    EXPECT_EQ(empty.min(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(empty.max(), -std::numeric_limits<double>::infinity());

    RunningStats quarantineOnly;
    quarantineOnly.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(quarantineOnly.min(),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(quarantineOnly.max(),
              -std::numeric_limits<double>::infinity());
}

TEST(RunningStats, MergeEmptyShardWithQuarantinedNaNs)
{
    // Regression: merging a shard that saw only quarantined non-finite
    // samples must carry the quarantine count across without
    // perturbing the receiver's mean/variance/extrema.
    RunningStats filled;
    for (double x : {2.0, 4.0, 9.0})
        filled.add(x);
    const double meanBefore = filled.mean();
    const double varianceBefore = filled.variance();

    RunningStats quarantineOnly;
    quarantineOnly.add(std::numeric_limits<double>::quiet_NaN());
    quarantineOnly.add(std::numeric_limits<double>::infinity());

    filled.merge(quarantineOnly);
    EXPECT_EQ(filled.count(), 3u);
    EXPECT_EQ(filled.nonFiniteCount(), 2u);
    EXPECT_EQ(filled.mean(), meanBefore);
    EXPECT_EQ(filled.variance(), varianceBefore);
    EXPECT_DOUBLE_EQ(filled.min(), 2.0);
    EXPECT_DOUBLE_EQ(filled.max(), 9.0);

    // And the mirror direction: quarantine-only receiver absorbing a
    // filled shard adopts its aggregates exactly.
    RunningStats receiver;
    receiver.add(std::numeric_limits<double>::quiet_NaN());
    RunningStats donor;
    for (double x : {2.0, 4.0, 9.0})
        donor.add(x);
    receiver.merge(donor);
    EXPECT_EQ(receiver.count(), 3u);
    EXPECT_EQ(receiver.nonFiniteCount(), 1u);
    EXPECT_EQ(receiver.mean(), donor.mean());
    EXPECT_EQ(receiver.variance(), donor.variance());
    EXPECT_DOUBLE_EQ(receiver.min(), 2.0);
    EXPECT_DOUBLE_EQ(receiver.max(), 9.0);
}

TEST(RunningStats, StateRoundTripIsBitExact)
{
    RunningStats s;
    Rng rng(42);
    for (int i = 0; i < 1000; ++i)
        s.add(rng.nextGaussian() * 1e6);
    s.add(std::numeric_limits<double>::quiet_NaN());

    const RunningStats::State state = s.state();
    const RunningStats restored = RunningStats::fromState(state);
    EXPECT_EQ(restored.count(), s.count());
    EXPECT_EQ(restored.nonFiniteCount(), s.nonFiniteCount());
    EXPECT_EQ(std::bit_cast<uint64_t>(restored.mean()),
              std::bit_cast<uint64_t>(s.mean()));
    EXPECT_EQ(std::bit_cast<uint64_t>(restored.variance()),
              std::bit_cast<uint64_t>(s.variance()));
    EXPECT_EQ(std::bit_cast<uint64_t>(restored.min()),
              std::bit_cast<uint64_t>(s.min()));
    EXPECT_EQ(std::bit_cast<uint64_t>(restored.max()),
              std::bit_cast<uint64_t>(s.max()));

    // The empty accumulator's state round-trips too (the identity
    // extrema are representable and preserved).
    const RunningStats::State emptyState = RunningStats{}.state();
    const RunningStats emptyRestored =
        RunningStats::fromState(emptyState);
    EXPECT_EQ(emptyRestored.count(), 0u);
    EXPECT_EQ(emptyRestored.min(),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(emptyRestored.max(),
              -std::numeric_limits<double>::infinity());
}

} // namespace
} // namespace lemons
