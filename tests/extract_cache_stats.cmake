# Extract the engine memo-cache statistics from BENCH_results.json
# into a small standalone JSON artifact for the CI bench-smoke job.
#
# Scans every benchmark entry for cache metrics (cache_hits,
# cache_misses, cache_hit_rate — emitted by the mc_engine.* group) plus
# any sim.mc.cache.* counters, and fails if none are found: the engine
# caches going silent in the bench run is a regression, not a no-op.
#
# Usage:
#   cmake -DJSON=<BENCH_results.json> -DOUT=<ENGINE_cache_stats.json>
#         -P extract_cache_stats.cmake

if(NOT JSON OR NOT OUT)
    message(FATAL_ERROR "extract_cache_stats.cmake needs JSON and OUT")
endif()
if(CMAKE_VERSION VERSION_LESS 3.19)
    message(FATAL_ERROR "extract_cache_stats.cmake needs CMake >= 3.19 "
                        "for string(JSON)")
endif()

file(READ "${JSON}" content)

string(JSON count ERROR_VARIABLE err LENGTH "${content}" benchmarks)
if(err)
    message(FATAL_ERROR "missing benchmarks array in ${JSON}: ${err}")
endif()

set(result "{}")
set(found 0)
math(EXPR last "${count} - 1")
foreach(i RANGE 0 ${last})
    string(JSON name GET "${content}" benchmarks ${i} name)

    # Per-benchmark cache metrics (hit/miss deltas measured in-bench).
    string(JSON rate ERROR_VARIABLE rateErr
           GET "${content}" benchmarks ${i} metrics cache_hit_rate)
    if(NOT rateErr)
        string(JSON hits GET "${content}" benchmarks ${i} metrics
               cache_hits)
        string(JSON misses GET "${content}" benchmarks ${i} metrics
               cache_misses)
        string(JSON result SET "${result}" "${name}"
               "{\"cache_hits\": ${hits}, \"cache_misses\": ${misses}, \
\"cache_hit_rate\": ${rate}}")
        math(EXPR found "${found} + 1")
        message(STATUS "${name}: hit_rate=${rate} "
                       "(${hits} hits / ${misses} misses)")
    endif()

    # Run-wide sim.mc.cache.* counters recorded alongside the entry.
    string(JSON ncounters ERROR_VARIABLE cntErr
           LENGTH "${content}" benchmarks ${i} counters)
    if(NOT cntErr AND ncounters GREATER 0)
        math(EXPR lastCounter "${ncounters} - 1")
        foreach(c RANGE 0 ${lastCounter})
            string(JSON key MEMBER "${content}" benchmarks ${i}
                   counters ${c})
            if(key MATCHES "^sim\\.mc\\.cache\\.")
                string(JSON value GET "${content}" benchmarks ${i}
                       counters "${key}")
                string(JSON result SET "${result}"
                       "${name}:${key}" "${value}")
            endif()
        endforeach()
    endif()
endforeach()

if(found EQUAL 0)
    message(FATAL_ERROR "no cache_hit_rate metrics found in ${JSON}; "
                        "the mc_engine cache benchmarks are missing")
endif()

file(WRITE "${OUT}" "${result}\n")
message(STATUS "wrote ${found} cache-stat entr(y/ies) to ${OUT}")
