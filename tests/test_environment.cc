/**
 * @file
 * Tests for the harsh-environment model: the attacker-cannot-extend-
 * lifetime asymmetry of Section 2.1.
 */

#include <gtest/gtest.h>

#include "util/rng.h"
#include "wearout/environment.h"

namespace lemons::wearout {
namespace {

TEST(EnvironmentModel, ReferenceAndBelowGiveFactorOne)
{
    const EnvironmentModel model;
    EXPECT_DOUBLE_EQ(model.lifetimeFactor(25.0), 1.0);
    EXPECT_DOUBLE_EQ(model.lifetimeFactor(0.0), 1.0);
    // Freezing the chip does not extend device life (fracture
    // remains): the factor is capped at 1.
    EXPECT_DOUBLE_EQ(model.lifetimeFactor(-196.0), 1.0);
}

TEST(EnvironmentModel, FactorNeverExceedsOne)
{
    const EnvironmentModel model;
    for (double t = -273.0; t <= 2000.0; t += 7.3)
        EXPECT_LE(model.lifetimeFactor(t), 1.0) << "T = " << t;
}

TEST(EnvironmentModel, FactorMonotoneDecreasingAboveReference)
{
    const EnvironmentModel model;
    double prev = 1.0;
    for (double t = 25.0; t <= 1500.0; t += 25.0) {
        const double f = model.lifetimeFactor(t);
        EXPECT_LE(f, prev);
        prev = f;
    }
}

TEST(EnvironmentModel, SicAnchorAt500C)
{
    // Paper Section 2.1: SiC NEMS run > 21e9 cycles at 25 C but only
    // > 2e9 at 500 C: a derating of roughly 2/21.
    const EnvironmentModel model;
    EXPECT_NEAR(model.lifetimeFactor(500.0), 2.0 / 21.0, 0.01);
}

TEST(EnvironmentModel, FactorFloorsAtMinimum)
{
    const EnvironmentModel model(25.0, 201.9, 1e-6);
    EXPECT_DOUBLE_EQ(model.lifetimeFactor(1e6), 1e-6);
}

TEST(EnvironmentModel, CyclesPerActuationIsReciprocal)
{
    const EnvironmentModel model;
    EXPECT_DOUBLE_EQ(model.cyclesPerActuation(25.0), 1.0);
    EXPECT_NEAR(model.cyclesPerActuation(500.0), 21.0 / 2.0, 1.0);
}

TEST(EnvironmentModel, RejectsBadParameters)
{
    EXPECT_THROW(EnvironmentModel(25.0, 0.0), std::invalid_argument);
    EXPECT_THROW(EnvironmentModel(25.0, 100.0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(EnvironmentModel(25.0, 100.0, 1.5),
                 std::invalid_argument);
}

TEST(HarshEnvironmentSwitch, RoomTemperatureMatchesPlainSwitch)
{
    HarshEnvironmentSwitch sw(3.0, EnvironmentModel{});
    EXPECT_TRUE(sw.actuateAt(25.0));
    EXPECT_TRUE(sw.actuateAt(25.0));
    EXPECT_TRUE(sw.actuateAt(25.0));
    EXPECT_FALSE(sw.actuateAt(25.0));
    EXPECT_TRUE(sw.failed());
}

TEST(HarshEnvironmentSwitch, HeatOnlyDestroysFaster)
{
    // At 500 C each actuation burns ~10.5 cycles of budget: a 21-cycle
    // switch survives only two hot actuations instead of 21 cool ones.
    HarshEnvironmentSwitch hot(21.0, EnvironmentModel{});
    int hotActuations = 0;
    while (hot.actuateAt(500.0))
        ++hotActuations;
    EXPECT_LE(hotActuations, 2);

    HarshEnvironmentSwitch cool(21.0, EnvironmentModel{});
    int coolActuations = 0;
    while (cool.actuateAt(25.0))
        ++coolActuations;
    EXPECT_EQ(coolActuations, 21);
}

TEST(HarshEnvironmentSwitch, ColdGivesNoExtraLife)
{
    HarshEnvironmentSwitch frozen(5.0, EnvironmentModel{});
    int actuations = 0;
    while (frozen.actuateAt(-100.0))
        ++actuations;
    EXPECT_EQ(actuations, 5); // exactly the reference budget
}

TEST(HarshEnvironmentSwitch, MixedTemperaturesAccumulate)
{
    HarshEnvironmentSwitch sw(12.0, EnvironmentModel{});
    // One hot actuation (~10.5 cycles) plus one cool one = ~11.5.
    EXPECT_TRUE(sw.actuateAt(500.0));
    EXPECT_TRUE(sw.actuateAt(25.0));
    // The next cool actuation crosses 12 cycles of budget.
    EXPECT_FALSE(sw.actuateAt(25.0));
    EXPECT_TRUE(sw.failed());
}

TEST(HarshEnvironmentSwitch, FailureIsPermanentEvenIfCooled)
{
    HarshEnvironmentSwitch sw(2.0, EnvironmentModel{});
    while (sw.actuateAt(800.0)) {
    }
    EXPECT_TRUE(sw.failed());
    EXPECT_FALSE(sw.actuateAt(-50.0));
}

TEST(HarshEnvironmentSwitch, SampledLifetimeConstructor)
{
    const Weibull model(10.0, 8.0);
    Rng rng(1);
    const HarshEnvironmentSwitch sw(model, rng, EnvironmentModel{});
    EXPECT_GT(sw.lifetime(), 0.0);
    EXPECT_FALSE(sw.failed());
}

TEST(EnvironmentModel, CyclesPerActuationCapsAtReciprocalFloor)
{
    // At the derating floor one actuation costs exactly 1 / minFactor
    // reference cycles — the cap that keeps extreme temperatures from
    // underflowing into "free" infinite wear.
    const EnvironmentModel model(25.0, 201.9, 1e-6);
    EXPECT_DOUBLE_EQ(model.cyclesPerActuation(1e6), 1e6);
    EXPECT_DOUBLE_EQ(model.cyclesPerActuation(5000.0), 1e6);

    const EnvironmentModel looseFloor(25.0, 201.9, 0.25);
    EXPECT_DOUBLE_EQ(looseFloor.cyclesPerActuation(1e6), 4.0);
}

TEST(HarshEnvironmentSwitch, FloorTemperatureDestroysLongLivedSwitch)
{
    // Even a 100,000-cycle device dies on its very first actuation at a
    // floor-factor temperature: one hot cycle burns 10^6 reference
    // cycles of budget.
    const EnvironmentModel model(25.0, 201.9, 1e-6);
    HarshEnvironmentSwitch sw(1e5, model);
    EXPECT_FALSE(sw.actuateAt(1e6));
    EXPECT_TRUE(sw.failed());
    EXPECT_GE(sw.cyclesConsumed(), sw.lifetime());
}

TEST(HarshEnvironmentSwitch, ExactIntegerBudgetBoundaryAtReference)
{
    // At the reference temperature the budget is consumed in exact
    // unit steps: a lifetime-N switch closes exactly N times, and the
    // (N+1)-th actuation fails — no off-by-one drift from the derating
    // arithmetic.
    for (int n : {1, 2, 7, 100}) {
        HarshEnvironmentSwitch sw(static_cast<double>(n),
                                  EnvironmentModel{});
        for (int i = 0; i < n; ++i)
            ASSERT_TRUE(sw.actuateAt(25.0)) << "n = " << n << " i = " << i;
        EXPECT_FALSE(sw.actuateAt(25.0)) << "n = " << n;
        EXPECT_TRUE(sw.failed());
        EXPECT_DOUBLE_EQ(sw.cyclesConsumed(),
                         static_cast<double>(n) + 1.0);
    }

    // A zero-lifetime switch never closes.
    HarshEnvironmentSwitch dead(0.0, EnvironmentModel{});
    EXPECT_FALSE(dead.actuateAt(25.0));
    EXPECT_TRUE(dead.failed());
}

TEST(HarshEnvironmentSwitch, NoScheduleBeatsTheReferenceBudget)
{
    // Deterministic adversarial schedules (not just random ones): every
    // temperature profile yields at most floor(budget) successes,
    // because each actuation consumes >= 1 reference cycle.
    const double schedules[][4] = {
        {25.0, 25.0, 25.0, 25.0},       // all reference
        {-273.0, -196.0, -40.0, 0.0},   // deep cold
        {25.0, -200.0, 25.0, -200.0},   // alternating cold
        {24.999, 25.0, 24.0, -1.0},     // just below reference
    };
    for (const auto &schedule : schedules) {
        HarshEnvironmentSwitch sw(6.5, EnvironmentModel{});
        int successes = 0;
        for (int cycle = 0; !sw.failed(); ++cycle) {
            if (sw.actuateAt(schedule[cycle % 4]))
                ++successes;
        }
        EXPECT_EQ(successes, 6); // floor(6.5): cold never adds cycles
    }
}

TEST(HarshEnvironmentSwitch, AttackerCannotBeatTheSecurityBound)
{
    // The key asymmetry: over any temperature schedule the attacker
    // chooses, the number of successful actuations never exceeds the
    // reference-temperature lifetime.
    Rng rng(2);
    const Weibull model(20.0, 8.0);
    const EnvironmentModel environment;
    for (int trial = 0; trial < 200; ++trial) {
        HarshEnvironmentSwitch sw(model, rng, environment);
        const double budget = sw.lifetime();
        int successes = 0;
        Rng schedule = rng.split(static_cast<uint64_t>(trial));
        while (!sw.failed()) {
            // Adversarial schedule: random temperatures from -200 to
            // 1000 C.
            const double t =
                -200.0 + 1200.0 * schedule.nextDouble();
            if (sw.actuateAt(t))
                ++successes;
        }
        EXPECT_LE(successes, static_cast<int>(budget) + 1)
            << "trial " << trial;
    }
}

} // namespace
} // namespace lemons::wearout
