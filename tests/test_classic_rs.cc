/**
 * @file
 * Tests for the classic errors-and-erasures Reed-Solomon codec:
 * encode/decode round trips, random error/erasure injection up to the
 * guaranteed capacity, and failure detection beyond it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "rs/classic_rs.h"
#include "util/rng.h"

namespace lemons::rs {
namespace {

std::vector<uint8_t>
randomMessage(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

/** Flip @p count distinct random positions to different values. */
std::vector<size_t>
injectErrors(std::vector<uint8_t> &word, size_t count, Rng &rng)
{
    std::set<size_t> positions;
    while (positions.size() < count)
        positions.insert(
            static_cast<size_t>(rng.nextBelow(word.size())));
    for (size_t pos : positions) {
        const auto delta = static_cast<uint8_t>(1 + rng.nextBelow(255));
        word[pos] = word[pos] ^ delta;
    }
    return {positions.begin(), positions.end()};
}

TEST(ClassicRs, RejectsBadParameters)
{
    EXPECT_THROW(ClassicRsCodec(10, 0), std::invalid_argument);
    EXPECT_THROW(ClassicRsCodec(10, 10), std::invalid_argument);
    EXPECT_THROW(ClassicRsCodec(256, 10), std::invalid_argument);
}

TEST(ClassicRs, EncodeIsSystematic)
{
    const ClassicRsCodec codec(15, 11);
    Rng rng(1);
    const auto message = randomMessage(rng, 11);
    const auto codeword = codec.encode(message);
    ASSERT_EQ(codeword.size(), 15u);
    EXPECT_TRUE(std::equal(message.begin(), message.end(),
                           codeword.begin()));
    EXPECT_TRUE(codec.isCodeword(codeword));
}

TEST(ClassicRs, EncodeRejectsWrongMessageSize)
{
    const ClassicRsCodec codec(15, 11);
    EXPECT_THROW(codec.encode(std::vector<uint8_t>(10)),
                 std::invalid_argument);
}

TEST(ClassicRs, CleanCodewordDecodes)
{
    const ClassicRsCodec codec(255, 223);
    Rng rng(2);
    const auto message = randomMessage(rng, 223);
    const auto decoded = codec.decode(codec.encode(message));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->message, message);
    EXPECT_EQ(decoded->correctedErrors, 0u);
}

TEST(ClassicRs, CorrectsSingleError)
{
    const ClassicRsCodec codec(15, 11);
    Rng rng(3);
    const auto message = randomMessage(rng, 11);
    for (size_t pos = 0; pos < 15; ++pos) {
        auto word = codec.encode(message);
        word[pos] ^= 0x5a;
        const auto decoded = codec.decode(word);
        ASSERT_TRUE(decoded.has_value()) << "pos " << pos;
        EXPECT_EQ(decoded->message, message) << "pos " << pos;
        EXPECT_EQ(decoded->correctedErrors, 1u);
    }
}

TEST(ClassicRs, CorrectsUpToCapacityErrors)
{
    const ClassicRsCodec codec(255, 223); // t = 16
    Rng rng(4);
    for (int trial = 0; trial < 20; ++trial) {
        const auto message = randomMessage(rng, 223);
        auto word = codec.encode(message);
        const size_t errors =
            1 + static_cast<size_t>(rng.nextBelow(16));
        injectErrors(word, errors, rng);
        const auto decoded = codec.decode(word);
        ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
        EXPECT_EQ(decoded->message, message);
        EXPECT_EQ(decoded->correctedErrors, errors);
    }
}

TEST(ClassicRs, CorrectsFullErasureBudget)
{
    const ClassicRsCodec codec(60, 30); // 30 parity -> 30 erasures
    Rng rng(5);
    const auto message = randomMessage(rng, 30);
    auto word = codec.encode(message);
    std::vector<size_t> erasures;
    for (size_t pos = 0; erasures.size() < 30; pos += 2) {
        word[pos] = 0x00; // stomp the symbol
        erasures.push_back(pos);
    }
    const auto decoded = codec.decode(word, erasures);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->message, message);
    EXPECT_EQ(decoded->correctedErasures, 30u);
}

TEST(ClassicRs, CorrectsMixedErrorsAndErasures)
{
    // 2 errors + erasures <= n - k: t errors plus e erasures with
    // 2t + e = 16 exactly.
    const ClassicRsCodec codec(63, 47); // 16 parity
    Rng rng(6);
    for (int trial = 0; trial < 20; ++trial) {
        const auto message = randomMessage(rng, 47);
        auto word = codec.encode(message);
        const size_t errors = static_cast<size_t>(rng.nextBelow(9)); // 0..8
        const size_t erasures = 16 - 2 * errors;
        const auto errorPositions = injectErrors(word, errors, rng);
        std::vector<size_t> erasurePositions;
        for (size_t pos = 0;
             erasurePositions.size() < erasures && pos < word.size();
             ++pos) {
            if (std::find(errorPositions.begin(), errorPositions.end(),
                          pos) != errorPositions.end())
                continue;
            word[pos] ^= 0xff;
            erasurePositions.push_back(pos);
        }
        const auto decoded = codec.decode(word, erasurePositions);
        ASSERT_TRUE(decoded.has_value())
            << "trial " << trial << " errors " << errors;
        EXPECT_EQ(decoded->message, message);
    }
}

TEST(ClassicRs, DetectsBeyondCapacity)
{
    // t+1 ... 2t errors: decoding must fail (or at least not return
    // the wrong message silently in the guaranteed-detection band
    // t+1..n-k for a random codeword this is overwhelmingly detected).
    const ClassicRsCodec codec(255, 223); // t = 16
    Rng rng(7);
    int failures = 0;
    const int trials = 20;
    for (int trial = 0; trial < trials; ++trial) {
        const auto message = randomMessage(rng, 223);
        auto word = codec.encode(message);
        injectErrors(word, 20, rng); // > t
        const auto decoded = codec.decode(word);
        if (!decoded || decoded->message != message)
            ++failures;
    }
    // All trials must either fail or (astronomically unlikely) land on
    // a wrong codeword; none may silently return the right message.
    EXPECT_EQ(failures, trials);
}

TEST(ClassicRs, TooManyErasuresRejected)
{
    const ClassicRsCodec codec(15, 11);
    Rng rng(8);
    const auto word = codec.encode(randomMessage(rng, 11));
    EXPECT_FALSE(codec.decode(word, {0, 1, 2, 3, 4}).has_value());
}

TEST(ClassicRs, InvalidErasureArgumentsThrow)
{
    const ClassicRsCodec codec(15, 11);
    Rng rng(9);
    const auto word = codec.encode(randomMessage(rng, 11));
    EXPECT_THROW(codec.decode(word, {15}), std::invalid_argument);
    EXPECT_THROW(codec.decode(word, {3, 3}), std::invalid_argument);
    EXPECT_THROW(codec.decode(std::vector<uint8_t>(14)),
                 std::invalid_argument);
}

TEST(ClassicRs, IsCodewordRejectsCorruption)
{
    const ClassicRsCodec codec(15, 11);
    Rng rng(10);
    auto word = codec.encode(randomMessage(rng, 11));
    EXPECT_TRUE(codec.isCodeword(word));
    word[7] ^= 1;
    EXPECT_FALSE(codec.isCodeword(word));
    EXPECT_FALSE(codec.isCodeword(std::vector<uint8_t>(14)));
}

/** Property sweep over (n, k) with random error loads at capacity. */
class ClassicRsProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(ClassicRsProperty, RandomErrorsAtCapacityAlwaysCorrected)
{
    const auto [n, k] = GetParam();
    const ClassicRsCodec codec(n, k);
    const size_t t = codec.errorCapacity();
    Rng rng(4242 + 13 * n + k);
    for (int trial = 0; trial < 30; ++trial) {
        const auto message = randomMessage(rng, k);
        auto word = codec.encode(message);
        if (t > 0)
            injectErrors(word, t, rng);
        const auto decoded = codec.decode(word);
        ASSERT_TRUE(decoded.has_value())
            << "n=" << n << " k=" << k << " trial=" << trial;
        EXPECT_EQ(decoded->message, message);
    }
}

INSTANTIATE_TEST_SUITE_P(
    NkGrid, ClassicRsProperty,
    ::testing::Values(std::make_tuple<size_t, size_t>(3, 1),
                      std::make_tuple<size_t, size_t>(7, 3),
                      std::make_tuple<size_t, size_t>(15, 11),
                      std::make_tuple<size_t, size_t>(31, 15),
                      std::make_tuple<size_t, size_t>(63, 32),
                      std::make_tuple<size_t, size_t>(255, 223),
                      std::make_tuple<size_t, size_t>(255, 127)));

} // namespace
} // namespace lemons::rs
