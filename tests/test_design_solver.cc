/**
 * @file
 * Tests for the design-space solver: criteria satisfaction, the
 * paper's scaling trends (Figs 4 and 5), and regression values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/design_solver.h"

namespace lemons::core {
namespace {

DesignRequest
baseRequest(double alpha, double beta, double kFraction = 0.0)
{
    DesignRequest request;
    request.device = {alpha, beta};
    request.legitimateAccessBound = 91250;
    request.kFraction = kFraction;
    return request;
}

TEST(DesignSolver, RejectsBadRequests)
{
    DesignRequest bad = baseRequest(0.0, 8.0);
    EXPECT_THROW(DesignSolver{bad}, std::invalid_argument);
    bad = baseRequest(10.0, 8.0);
    bad.kFraction = 1.0;
    EXPECT_THROW(DesignSolver{bad}, std::invalid_argument);
    bad = baseRequest(10.0, 8.0);
    bad.criteria.minReliability = 1.0;
    EXPECT_THROW(DesignSolver{bad}, std::invalid_argument);
    bad = baseRequest(10.0, 8.0);
    bad.upperBoundTarget = 1000; // below LAB
    EXPECT_THROW(DesignSolver{bad}, std::invalid_argument);
    bad = baseRequest(10.0, 8.0);
    bad.legitimateAccessBound = 0;
    EXPECT_THROW(DesignSolver{bad}, std::invalid_argument);
}

TEST(DesignSolver, SolutionSatisfiesCriteria)
{
    const DesignRequest request = baseRequest(14.0, 8.0, 0.1);
    const DesignSolver solver(request);
    const Design d = solver.solve();
    ASSERT_TRUE(d.feasible);
    EXPECT_GE(d.reliabilityAtBound, request.criteria.minReliability);
    EXPECT_LE(d.reliabilityPastBound,
              request.criteria.maxResidualReliability);
    EXPECT_EQ(d.copies, (91250 + d.perCopyBound - 1) / d.perCopyBound);
    EXPECT_EQ(d.totalDevices, d.width * d.copies);
    EXPECT_EQ(d.threshold,
              static_cast<uint64_t>(std::llround(0.1 *
                                                 static_cast<double>(
                                                     d.width))));
}

TEST(DesignSolver, SystemServesTheLab)
{
    // N copies at t accesses each must cover the LAB.
    for (double alpha : {10.0, 14.0, 20.0}) {
        const Design d =
            DesignSolver(baseRequest(alpha, 8.0, 0.1)).solve();
        ASSERT_TRUE(d.feasible) << "alpha = " << alpha;
        EXPECT_GE(d.copies * d.perCopyBound, 91250u);
    }
}

TEST(DesignSolver, UnencodedIsMinimal)
{
    // Shrinking the solved width by one must violate a criterion.
    const DesignRequest request = baseRequest(14.0, 8.0);
    const DesignSolver solver(request);
    const Design d = solver.solve();
    ASSERT_TRUE(d.feasible);
    EXPECT_GE(d.reliabilityAtBound, 0.99);
    const double shrunk = solver.copyReliability(
        d.width - 1, 1, static_cast<double>(d.perCopyBound));
    EXPECT_LT(shrunk, 0.99);
}

TEST(DesignSolver, EncodingSavesOrdersOfMagnitude)
{
    // The paper's headline (Fig 4a vs 4b): redundant encoding cuts the
    // (alpha=14, beta=8) architecture by roughly four orders of
    // magnitude.
    const Design plain = DesignSolver(baseRequest(14.0, 8.0)).solve();
    const Design coded = DesignSolver(baseRequest(14.0, 8.0, 0.1)).solve();
    ASSERT_TRUE(plain.feasible);
    ASSERT_TRUE(coded.feasible);
    EXPECT_GT(plain.totalDevices / coded.totalDevices, 1000u);
}

TEST(DesignSolver, UnencodedGrowsExponentiallyWithAlpha)
{
    // Fig 4a: device count explodes with looser wearout bounds.
    const Design a10 = DesignSolver(baseRequest(10.0, 8.0)).solve();
    const Design a14 = DesignSolver(baseRequest(14.0, 8.0)).solve();
    ASSERT_TRUE(a10.feasible);
    ASSERT_TRUE(a14.feasible);
    EXPECT_GT(a14.totalDevices, 100 * a10.totalDevices);
}

TEST(DesignSolver, EncodedScalesRoughlyLinearlyWithAlpha)
{
    // Fig 4b: with encoding, doubling alpha should cost only a small
    // constant factor, not orders of magnitude.
    const Design a10 = DesignSolver(baseRequest(10.0, 8.0, 0.1)).solve();
    const Design a20 = DesignSolver(baseRequest(20.0, 8.0, 0.1)).solve();
    ASSERT_TRUE(a10.feasible);
    ASSERT_TRUE(a20.feasible);
    const double ratio = static_cast<double>(a20.totalDevices) /
                         static_cast<double>(a10.totalDevices);
    EXPECT_LT(ratio, 8.0);
}

TEST(DesignSolver, HigherBetaNeedsFewerDevices)
{
    // Fig 4a/4b: consistent devices (high beta) shrink the design.
    const Design b8 = DesignSolver(baseRequest(14.0, 8.0, 0.1)).solve();
    const Design b16 = DesignSolver(baseRequest(14.0, 16.0, 0.1)).solve();
    ASSERT_TRUE(b8.feasible);
    ASSERT_TRUE(b16.feasible);
    EXPECT_LT(b16.totalDevices, b8.totalDevices);
}

TEST(DesignSolver, EncodingToleratesHighVariationBeta4)
{
    // Fig 4b includes beta = 4 curves: encoding keeps the design
    // feasible even with very inconsistent devices.
    const Design d = DesignSolver(baseRequest(14.0, 4.0, 0.1)).solve();
    EXPECT_TRUE(d.feasible);
}

TEST(DesignSolver, UnencodedInfeasibleAtHighVariation)
{
    // Without encoding, beta = 4 devices cannot meet the strict
    // degradation criteria at any sane width (exponential blow-up).
    DesignRequest request = baseRequest(14.0, 4.0);
    const Design d = DesignSolver(request).solve();
    EXPECT_FALSE(d.feasible);
}

TEST(DesignSolver, RelaxedResidualCutsDevices)
{
    // Fig 4c: p = 1 % -> 10 % cuts the device count by tens of percent
    // and raises the expected empirical upper bound.
    DesignRequest strict = baseRequest(14.0, 8.0, 0.1);
    DesignRequest relaxed = strict;
    relaxed.criteria.maxResidualReliability = 0.10;
    const Design dStrict = DesignSolver(strict).solve();
    const Design dRelaxed = DesignSolver(relaxed).solve();
    ASSERT_TRUE(dStrict.feasible);
    ASSERT_TRUE(dRelaxed.feasible);
    EXPECT_LT(dRelaxed.totalDevices, dStrict.totalDevices);
    const double saving =
        1.0 - static_cast<double>(dRelaxed.totalDevices) /
                  static_cast<double>(dStrict.totalDevices);
    EXPECT_GT(saving, 0.2); // paper reports ~40 %
    EXPECT_GT(dRelaxed.expectedSystemTotal, dStrict.expectedSystemTotal);
}

TEST(DesignSolver, ExpectedSystemTotalBracketsLab)
{
    const Design d = DesignSolver(baseRequest(14.0, 8.0, 0.1)).solve();
    ASSERT_TRUE(d.feasible);
    EXPECT_GE(d.expectedSystemTotal, 91250.0 * 0.999);
    // With 1 % residual, overshoot stays within a fraction of a
    // percent of the LAB (paper: 91,326 vs 91,250).
    EXPECT_LT(d.expectedSystemTotal, 91250.0 * 1.02);
}

TEST(DesignSolver, UpperBoundTargetShrinksArchitecture)
{
    // Fig 4d: tolerating up to 100,000 / 200,000 total attempts cuts
    // the architecture by an order of magnitude or more.
    const Design baseline = DesignSolver(baseRequest(14.0, 8.0, 0.1))
                                .solve();
    DesignRequest u100 = baseRequest(14.0, 8.0, 0.1);
    u100.upperBoundTarget = 100000;
    DesignRequest u200 = baseRequest(14.0, 8.0, 0.1);
    u200.upperBoundTarget = 200000;
    const Design d100 = DesignSolver(u100).solve();
    const Design d200 = DesignSolver(u200).solve();
    ASSERT_TRUE(baseline.feasible);
    ASSERT_TRUE(d100.feasible);
    ASSERT_TRUE(d200.feasible);
    EXPECT_LT(d100.totalDevices, baseline.totalDevices / 5);
    EXPECT_LT(d200.totalDevices, d100.totalDevices);
    // The expected system total must respect each target.
    EXPECT_LE(d100.expectedSystemTotal, 100000.0);
    EXPECT_LE(d200.expectedSystemTotal, 200000.0);
    EXPECT_GE(d100.reliabilityAtBound, 0.99);
    EXPECT_GE(d200.reliabilityAtBound, 0.99);
}

TEST(DesignSolver, TargetingSystemIsSmall)
{
    // Section 5: LAB = 100 shrinks everything by orders of magnitude
    // relative to the 91,250-access connection.
    DesignRequest connection = baseRequest(10.0, 8.0, 0.1);
    DesignRequest targeting = connection;
    targeting.legitimateAccessBound = 100;
    const Design dConn = DesignSolver(connection).solve();
    const Design dTarget = DesignSolver(targeting).solve();
    ASSERT_TRUE(dConn.feasible);
    ASSERT_TRUE(dTarget.feasible);
    EXPECT_LT(dTarget.totalDevices, dConn.totalDevices / 20);
    EXPECT_LE(dTarget.copies, 11u);
}

TEST(DesignSolver, StrongerMinimumReliabilityCostsMoreDevices)
{
    // Section 4.3.3: 99.99999 % lower-bound reliability with ~3x
    // devices.
    DesignRequest normal = baseRequest(14.0, 8.0, 0.1);
    DesignRequest strong = normal;
    strong.criteria.minReliability = 0.9999999;
    const Design dNormal = DesignSolver(normal).solve();
    const Design dStrong = DesignSolver(strong).solve();
    ASSERT_TRUE(dNormal.feasible);
    ASSERT_TRUE(dStrong.feasible);
    EXPECT_GT(dStrong.totalDevices, dNormal.totalDevices);
    EXPECT_LT(dStrong.totalDevices, 5 * dNormal.totalDevices);
    EXPECT_GE(dStrong.reliabilityAtBound, 0.9999999);
}

TEST(DesignSolver, RegressionPinnedValues)
{
    // Deterministic solver outputs pinned to catch silent changes.
    const Design coded = DesignSolver(baseRequest(14.0, 8.0, 0.1)).solve();
    EXPECT_EQ(coded.perCopyBound, 15u);
    EXPECT_EQ(coded.width, 175u);
    EXPECT_EQ(coded.threshold, 18u);
    EXPECT_EQ(coded.copies, 6084u);
    EXPECT_EQ(coded.totalDevices, 1064700u);

    const Design plain = DesignSolver(baseRequest(14.0, 8.0)).solve();
    EXPECT_EQ(plain.perCopyBound, 20u);
    EXPECT_EQ(plain.copies, 4563u);
}

TEST(DesignSolver, CopyReliabilityMatchesEquationSix)
{
    const DesignSolver solver(baseRequest(9.3, 12.0));
    const double r = std::exp(-std::pow(10.0 / 9.3, 12.0));
    EXPECT_NEAR(solver.copyReliability(40, 1, 10.0),
                1.0 - std::pow(1.0 - r, 40.0), 1e-9);
}

TEST(DesignSolver, ExpectedOvershootDropsWithWidthWhenEncoded)
{
    DesignRequest request = baseRequest(14.0, 8.0, 0.1);
    const DesignSolver solver(request);
    const double narrow = solver.expectedOvershoot(50, 5, 15);
    const double wide = solver.expectedOvershoot(500, 50, 15);
    EXPECT_LT(wide, narrow);
}

} // namespace
} // namespace lemons::core
