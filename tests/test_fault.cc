/**
 * @file
 * Tests for the fault-injection subsystem and the fault-tolerant
 * Monte Carlo engine: null-plan bit-identity with the unfaulted
 * simulator, stuck-closed monotonicity of attacker success, glitch and
 * infant-mortality semantics, degraded-but-alive health reporting, and
 * TrialReport capture of throwing / non-finite trials.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "arch/structures_sim.h"
#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "core/gate.h"
#include "core/mway.h"
#include "core/targeting.h"
#include "fault/fault_plan.h"
#include "fault/faulty_device.h"
#include "sim/monte_carlo.h"

namespace lemons::fault {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

DeviceFactory
idealFactory()
{
    return DeviceFactory({10.0, 12.0}, ProcessVariation::none());
}

core::Design
smallDesign()
{
    core::DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    return core::DesignSolver(request).solve();
}

std::vector<uint8_t>
secretBytes()
{
    return {0xca, 0xfe, 0xf0, 0x0d};
}

TEST(FaultPlan, ValidationAndNullness)
{
    EXPECT_TRUE(FaultPlan::none().isNull());
    EXPECT_FALSE(FaultPlan::stuckClosed(1e-3).isNull());
    EXPECT_FALSE(FaultPlan::infantMortality(0.05).isNull());

    FaultPlan negative;
    negative.stuckClosedRate = -0.1;
    EXPECT_THROW(negative.validate(), std::invalid_argument);

    FaultPlan tooLarge;
    tooLarge.infantFraction = 1.5;
    EXPECT_THROW(tooLarge.validate(), std::invalid_argument);

    FaultPlan badShape;
    badShape.infantFraction = 0.1;
    badShape.infantShape = 0.0;
    EXPECT_THROW(badShape.validate(), std::invalid_argument);

    EXPECT_THROW(FaultyDeviceFactory(idealFactory(), negative),
                 std::invalid_argument);
}

// Acceptance (a): an all-zero FaultPlan must be bit-identical to the
// unfaulted simulator for the same seed, draw for draw.
TEST(NullPlan, LifetimesBitIdenticalToBaseFactory)
{
    const DeviceFactory base({10.0, 12.0}, {0.05, 0.02});
    const FaultyDeviceFactory faulty(base, FaultPlan::none());

    Rng baseRng(99);
    Rng faultyRng(99);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(base.sampleLifetime(baseRng),
                  faulty.sampleLifetime(faultyRng));
    }
}

TEST(NullPlan, StructureSamplesBitIdentical)
{
    const DeviceFactory base({10.0, 12.0}, {0.05, 0.02});
    const FaultyDeviceFactory faulty(base, FaultPlan::none());

    for (uint64_t trial = 0; trial < 200; ++trial) {
        Rng baseRng = Rng(7).split(trial);
        Rng faultyRng = Rng(7).split(trial);
        const uint64_t ideal = arch::sampleParallelSurvivedAccesses(
            base, 20, 3, baseRng);
        const arch::FaultySurvival injected =
            arch::sampleFaultyParallelSurvivedAccesses(faulty, 20, 3,
                                                       faultyRng);
        EXPECT_FALSE(injected.unbounded);
        EXPECT_EQ(injected.stuckDevices, 0u);
        EXPECT_EQ(injected.accesses, ideal);
    }
}

TEST(NullPlan, GateAccessSequenceBitIdentical)
{
    const core::Design design = smallDesign();
    ASSERT_TRUE(design.feasible);

    Rng idealRng(42);
    core::LimitedUseGate ideal(design, idealFactory(), secretBytes(),
                               idealRng);

    Rng faultyRng(42);
    const FaultyDeviceFactory factory(idealFactory(), FaultPlan::none());
    core::LimitedUseGate faulty(design, factory, secretBytes(), faultyRng);

    // Drive both gates to exhaustion; every access must agree.
    while (!ideal.exhausted()) {
        const auto a = ideal.access();
        const auto b = faulty.access();
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
            EXPECT_EQ(*a, *b);
        }
    }
    EXPECT_TRUE(faulty.exhausted());
    EXPECT_EQ(ideal.accessCount(), faulty.accessCount());
}

// Acceptance (b): attacker success is monotonically non-decreasing in
// the stuck-closed rate epsilon. The common-random-numbers coupling in
// FaultyDeviceFactory makes this hold per-trial, not just on average.
TEST(StuckClosed, UnboundedAccessMonotoneInEpsilonPerTrial)
{
    const DeviceFactory base = idealFactory();
    const double epsilons[] = {0.05, 0.15, 0.3};
    constexpr size_t n = 20;
    constexpr size_t k = 4;
    constexpr uint64_t trials = 300;

    uint64_t unboundedAtLowest = 0;
    for (uint64_t trial = 0; trial < trials; ++trial) {
        bool previous = false;
        for (double eps : epsilons) {
            const FaultyDeviceFactory factory(base,
                                              FaultPlan::stuckClosed(eps));
            Rng rng = Rng(1234).split(trial);
            const arch::FaultySurvival outcome =
                arch::sampleFaultyParallelSurvivedAccesses(factory, n, k,
                                                           rng);
            // Once a trial is unbounded at some epsilon it must stay
            // unbounded at every larger epsilon (same uniforms, larger
            // acceptance region).
            EXPECT_GE(outcome.unbounded, previous)
                << "trial " << trial << " eps " << eps;
            previous = outcome.unbounded;
            if (eps == epsilons[0] && outcome.unbounded)
                ++unboundedAtLowest;
        }
    }
    // And epsilon = 0 can never produce an unbounded structure, which
    // anchors the chain at zero.
    const FaultyDeviceFactory nullFactory(base, FaultPlan::none());
    for (uint64_t trial = 0; trial < trials; ++trial) {
        Rng rng = Rng(1234).split(trial);
        EXPECT_FALSE(arch::sampleFaultyParallelSurvivedAccesses(
                         nullFactory, n, k, rng)
                         .unbounded);
    }
    // Sanity: the sweep actually exercised both outcomes.
    EXPECT_GT(unboundedAtLowest, 0u);
    EXPECT_LT(unboundedAtLowest, trials);
}

TEST(StuckClosed, AnalyticAdversarySuccessMonotone)
{
    core::OtpParams params;
    params.height = 6;
    params.copies = 64;
    params.threshold = 4;
    params.device = {2.0, 1.0};
    const core::OtpAnalytics analytics(params);

    EXPECT_NEAR(analytics.pathSuccessWithStuckClosed(0.0),
                analytics.pathSuccess(), 1e-15);
    EXPECT_NEAR(analytics.adversarySuccessWithStuckClosed(0.0),
                analytics.adversarySuccess(), 1e-15);

    double previous = 0.0;
    for (double eps : {0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0}) {
        const double success = analytics.adversarySuccessWithStuckClosed(eps);
        EXPECT_GE(success, previous) << "eps " << eps;
        previous = success;
    }
    // A fully stuck-closed population conducts every path: the
    // adversary's per-copy traversal always succeeds.
    EXPECT_NEAR(analytics.pathSuccessWithStuckClosed(1.0), 1.0, 1e-12);
}

TEST(StuckClosed, SwitchNeverWearsOut)
{
    const FaultyLifetime fate{std::numeric_limits<double>::infinity(),
                              DeviceFaultMode::StuckClosed};
    FaultyNemsSwitch sw(fate, /*glitchRate=*/0.0, /*glitchSeed=*/0);
    EXPECT_TRUE(sw.stuckClosed());
    for (int i = 0; i < 10000; ++i)
        ASSERT_TRUE(sw.actuate());
    EXPECT_FALSE(sw.failed());
    EXPECT_TRUE(sw.alive());
}

TEST(StuckClosed, GateReportsAttackBoundViolationAndOutlivesBound)
{
    const core::Design design = smallDesign();
    ASSERT_TRUE(design.feasible);
    const FaultyDeviceFactory factory(idealFactory(),
                                      FaultPlan::stuckClosed(1.0));
    Rng rng(5);
    core::LimitedUseGate gate(design, factory, secretBytes(), rng);

    const core::GateHealth health = gate.health();
    EXPECT_TRUE(health.attackBoundViolated);
    EXPECT_FALSE(health.exhausted);
    EXPECT_EQ(health.activeStuckShares, design.width);

    // The gate should blow straight through the design's access bound:
    // this is exactly the guarantee stuck-closed contacts destroy.
    const auto bound = static_cast<uint64_t>(design.expectedSystemTotal);
    for (uint64_t i = 0; i < 3 * bound + 10; ++i)
        ASSERT_TRUE(gate.access().has_value());
    EXPECT_FALSE(gate.exhausted());
}

TEST(Glitch, FailsReadsWithoutConsumingLifetime)
{
    const FaultyLifetime fate{100.0, DeviceFaultMode::None};
    FaultyNemsSwitch sw(fate, /*glitchRate=*/1.0, /*glitchSeed=*/77);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(sw.actuate());
    EXPECT_EQ(sw.glitchCount(), 50u);
    EXPECT_EQ(sw.cyclesUsed(), 50u);
    EXPECT_FALSE(sw.failed());
    EXPECT_TRUE(sw.alive()); // glitches cost availability, not life
}

TEST(Glitch, ZeroRateMatchesPlainSwitch)
{
    const FaultyLifetime fate{3.0, DeviceFaultMode::None};
    FaultyNemsSwitch sw(fate, /*glitchRate=*/0.0, /*glitchSeed=*/0);
    EXPECT_TRUE(sw.actuate());
    EXPECT_TRUE(sw.actuate());
    EXPECT_TRUE(sw.actuate());
    EXPECT_FALSE(sw.actuate()); // lifetime 3.0 exhausted
    EXPECT_TRUE(sw.failed());
    EXPECT_EQ(sw.glitchCount(), 0u);
}

TEST(InfantMortality, ShortensEarlyLifetimes)
{
    const DeviceFactory base = idealFactory();
    FaultPlan plan;
    plan.infantFraction = 1.0; // every device is an infant-mortality one
    const FaultyDeviceFactory faulty(base, plan);

    Rng baseRng(11);
    Rng faultyRng(11);
    double baseMean = 0.0;
    double infantMean = 0.0;
    constexpr int draws = 4000;
    for (int i = 0; i < draws; ++i) {
        baseMean += base.sampleLifetime(baseRng);
        const FaultyLifetime fate = faulty.sampleFaultyLifetime(faultyRng);
        EXPECT_EQ(fate.mode, DeviceFaultMode::InfantMortality);
        infantMean += fate.lifetime;
    }
    baseMean /= draws;
    infantMean /= draws;
    // Infant devices live on a Weibull with a fraction of the scale and
    // an early-failure shape: the population mean must collapse.
    EXPECT_LT(infantMean, 0.5 * baseMean);
}

TEST(InfantMortality, PopulationReliabilityMatchesSampling)
{
    // Cross-validate the analytic bathtub-mixture bridge against the
    // competing-risks sampler: empirical survival frequencies must
    // match populationReliability, and the pure mixture view (which
    // ignores the wearout cap on infant draws) must upper-bound it.
    FaultPlan plan;
    plan.stuckClosedRate = 0.02;
    plan.infantFraction = 0.3;
    const FaultyDeviceFactory factory(idealFactory(), plan);

    constexpr int draws = 20000;
    Rng rng(21);
    std::vector<double> lifetimes;
    lifetimes.reserve(draws);
    for (int i = 0; i < draws; ++i)
        lifetimes.push_back(factory.sampleLifetime(rng));

    const wearout::BathtubModel bathtub = factory.populationModel();
    for (double x : {0.5, 2.0, 5.0, 9.0, 11.0}) {
        int survivors = 0;
        for (double t : lifetimes) {
            if (t > x) // stuck devices are +inf: always survive
                ++survivors;
        }
        const double empirical =
            static_cast<double>(survivors) / static_cast<double>(draws);
        const double analytic = factory.populationReliability(x);
        EXPECT_NEAR(empirical, analytic, 0.015) << "x = " << x;
        // Mixture view without the stuck offset can only exceed the
        // exact mortal reliability.
        const double mixtureView =
            plan.stuckClosedRate +
            (1.0 - plan.stuckClosedRate) * bathtub.reliability(x);
        EXPECT_GE(mixtureView + 1e-12, analytic) << "x = " << x;
    }
}

TEST(Health, ParallelDegradedAndDeadStates)
{
    const FaultyDeviceFactory factory(idealFactory(), FaultPlan::none());

    Rng rng(3);
    // Probe access 1: alpha = 10 devices essentially all close.
    const arch::StructureHealth fresh =
        arch::probeParallelHealth(factory, 12, 3, 1, rng);
    EXPECT_EQ(fresh.status, arch::HealthStatus::Healthy);
    EXPECT_EQ(fresh.alive, 12u);
    EXPECT_FALSE(fresh.attackBoundViolated);

    // Probe far beyond alpha: everything has worn out.
    Rng lateRng(3);
    const arch::StructureHealth dead =
        arch::probeParallelHealth(factory, 12, 3, 1000, lateRng);
    EXPECT_EQ(dead.status, arch::HealthStatus::Dead);
    EXPECT_EQ(dead.alive, 0u);

    // Probe near alpha with a tight beta: some devices are gone but the
    // low threshold keeps the structure alive -> Degraded shows up.
    bool sawDegraded = false;
    Rng midRng(3);
    for (int i = 0; i < 200 && !sawDegraded; ++i) {
        const arch::StructureHealth mid =
            arch::probeParallelHealth(factory, 12, 2, 10, midRng);
        sawDegraded = mid.status == arch::HealthStatus::Degraded;
    }
    EXPECT_TRUE(sawDegraded);
}

TEST(Health, SeriesChainCannotBeBrokenByStuckDevices)
{
    // Half the devices stuck closed: a series chain still conducts only
    // while the *mortal* devices survive, and the bound is violated only
    // when every device is stuck.
    const FaultyDeviceFactory half(idealFactory(),
                                   FaultPlan::stuckClosed(0.5));
    Rng rng(8);
    const arch::StructureHealth health =
        arch::probeSeriesHealth(half, 10, 1, rng);
    EXPECT_EQ(health.threshold, 10u);
    EXPECT_FALSE(health.attackBoundViolated);

    const FaultyDeviceFactory all(idealFactory(), FaultPlan::stuckClosed(1.0));
    Rng allRng(8);
    const arch::StructureHealth unkillable =
        arch::probeSeriesHealth(all, 10, 1000000, allRng);
    EXPECT_TRUE(unkillable.attackBoundViolated);
    EXPECT_EQ(unkillable.status, arch::HealthStatus::Healthy);
}

TEST(Health, TargetingAndMWayExposeGateHealth)
{
    const core::Design design = smallDesign();
    const FaultyDeviceFactory factory(idealFactory(),
                                      FaultPlan::stuckClosed(1.0));

    Rng rng(17);
    core::LaunchStation station(design, factory, secretBytes(), rng);
    EXPECT_TRUE(station.health().attackBoundViolated);

    Rng mwayRng(18);
    core::MWayReplication mway(3, design, factory, "alpha", secretBytes(),
                               mwayRng);
    const core::MWayHealth health = mway.health();
    EXPECT_EQ(health.modulesRemaining, 3u);
    EXPECT_TRUE(health.activeGate.attackBoundViolated);
    EXPECT_FALSE(health.exhausted);
}

// Acceptance (c): a metric throwing on one trial of the parallel
// engine must not std::terminate; the capture policy names the trial
// and completes the run, the rethrow policy rethrows on the caller.
TEST(TrialReport, NamesThrowingTrialAndCompletesRun)
{
    const sim::MonteCarlo mc(2024, 100);
    const auto report = mc.run(
        [](Rng &rng, uint64_t trial) {
            if (trial == 37)
                throw std::runtime_error("deliberate failure in trial 37");
            return rng.nextDouble();
        },
        {.threads = 4, .chunkSize = 16});

    ASSERT_EQ(report.failedTrials.size(), 1u);
    EXPECT_EQ(report.failedTrials[0], 37u);
    EXPECT_EQ(report.firstError, "deliberate failure in trial 37");
    EXPECT_TRUE(std::isnan(report.samples[37]));
    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.trials, 100u);
    EXPECT_EQ(report.cleanTrials(), 99u);
    EXPECT_EQ(report.stats.count(), 99u);
    EXPECT_TRUE(report.nonFiniteTrials.empty());
}

TEST(TrialReport, QuarantinesNonFiniteSamples)
{
    const sim::MonteCarlo mc(7, 50);
    const auto report = mc.run(
        [](Rng &, uint64_t trial) {
            if (trial == 5)
                return std::numeric_limits<double>::infinity();
            if (trial == 20)
                return std::numeric_limits<double>::quiet_NaN();
            return 1.0;
        },
        {.threads = 3, .chunkSize = 16});

    ASSERT_EQ(report.nonFiniteTrials.size(), 2u);
    EXPECT_EQ(report.nonFiniteTrials[0], 5u);
    EXPECT_EQ(report.nonFiniteTrials[1], 20u);
    EXPECT_TRUE(report.failedTrials.empty());
    EXPECT_EQ(report.cleanTrials(), 48u);
    EXPECT_EQ(report.stats.count(), 48u);
    EXPECT_EQ(report.stats.nonFiniteCount(), 2u);
    EXPECT_DOUBLE_EQ(report.stats.mean(), 1.0);
}

TEST(TrialReport, CleanRunMatchesRethrowPolicySamples)
{
    const sim::MonteCarlo mc(31337, 64);
    const auto metric = [](Rng &rng) { return rng.nextDouble(); };
    const auto samples =
        mc.run(metric, {.threads = 2,
                        .chunkSize = 16,
                        .faults = sim::FaultPolicy::Rethrow})
            .samples;
    const auto report = mc.run(metric, {.threads = 5, .chunkSize = 8});
    EXPECT_TRUE(report.complete());
    EXPECT_TRUE(report.firstError.empty());
    ASSERT_EQ(report.samples.size(), samples.size());
    for (size_t i = 0; i < samples.size(); ++i)
        EXPECT_EQ(report.samples[i], samples[i]); // bit-identical
}

TEST(RethrowPolicy, RethrowsOnCallerInsteadOfTerminating)
{
    const sim::MonteCarlo mc(1, 32);
    uint64_t calls = 0;
    const auto metric = [&calls](Rng &rng) {
        // Single-threaded: trials run in order, so call 13 is trial 12.
        if (++calls == 13)
            throw std::runtime_error("worker-thread failure");
        return rng.nextDouble();
    };
    try {
        static_cast<void>(mc.run(
            metric,
            {.threads = 1, .faults = sim::FaultPolicy::Rethrow}));
        FAIL() << "expected the metric's exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker-thread failure");
    }
}

} // namespace
} // namespace lemons::fault
