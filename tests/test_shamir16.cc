/**
 * @file
 * Tests for wide (GF(2^16)) Shamir sharing, including shares counts
 * beyond the GF(2^8) limit of 255.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "shamir/shamir16.h"
#include "util/rng.h"

namespace lemons::shamir {
namespace {

std::vector<uint8_t>
randomSecret(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

TEST(WideScheme, RejectsBadParameters)
{
    EXPECT_THROW(WideScheme(0, 5), std::invalid_argument);
    EXPECT_THROW(WideScheme(6, 5), std::invalid_argument);
    EXPECT_THROW(WideScheme(1, 65536), std::invalid_argument);
}

TEST(WideScheme, RoundTripBasic)
{
    const WideScheme scheme(3, 7);
    Rng rng(1);
    const auto secret = randomSecret(rng, 32);
    auto shares = scheme.split(secret, rng);
    ASSERT_EQ(shares.size(), 7u);
    shares.resize(3);
    const auto recovered = scheme.combine(shares, secret.size());
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, secret);
}

TEST(WideScheme, OddLengthSecretRoundTrips)
{
    const WideScheme scheme(2, 4);
    Rng rng(2);
    const auto secret = randomSecret(rng, 31); // odd: padding exercised
    const auto shares = scheme.split(secret, rng);
    const auto recovered = scheme.combine(shares, 31);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, secret);
}

TEST(WideScheme, BeyondGf256ShareCounts)
{
    // The whole point of the wide scheme: > 255 shares, as the beta=4
    // encoded designs need (Fig 4b).
    const WideScheme scheme(275, 2750);
    Rng rng(3);
    const auto secret = randomSecret(rng, 32);
    auto shares = scheme.split(secret, rng);
    ASSERT_EQ(shares.size(), 2750u);
    // Reconstruct from an arbitrary k-subset in the upper index range.
    std::vector<WideShare> subset(shares.begin() + 2400,
                                  shares.begin() + 2400 + 275);
    const auto recovered = scheme.combine(subset, secret.size());
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, secret);
}

TEST(WideScheme, TooFewSharesFails)
{
    const WideScheme scheme(4, 8);
    Rng rng(4);
    auto shares = scheme.split(randomSecret(rng, 8), rng);
    shares.resize(3);
    EXPECT_FALSE(scheme.combine(shares, 8).has_value());
}

TEST(WideScheme, MalformedSharesRejected)
{
    const WideScheme scheme(2, 4);
    Rng rng(5);
    auto shares = scheme.split(randomSecret(rng, 8), rng);
    // Duplicate index.
    EXPECT_FALSE(scheme.combine({shares[0], shares[0]}, 8).has_value());
    // Out-of-range index.
    auto bad = shares;
    bad[0].index = 0;
    EXPECT_FALSE(scheme.combine({bad[0], bad[1]}, 8).has_value());
    bad[1].index = 9;
    EXPECT_FALSE(scheme.combine({bad[1], bad[2]}, 8).has_value());
    // Wrong payload size.
    auto clipped = shares;
    clipped[1].payload.pop_back();
    EXPECT_FALSE(
        scheme.combine({clipped[0], clipped[1]}, 8).has_value());
}

TEST(WideShare, SerializationRoundTrip)
{
    const WideShare share{0x1234, {0xbeef, 0x0001}};
    const auto bytes = share.toBytes();
    EXPECT_EQ(bytes, (std::vector<uint8_t>{0x12, 0x34, 0xbe, 0xef, 0x00,
                                           0x01}));
    const auto parsed = WideShare::fromBytes(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, share);
}

TEST(WideShare, FromBytesRejectsMalformed)
{
    EXPECT_FALSE(WideShare::fromBytes({}).has_value());
    EXPECT_FALSE(WideShare::fromBytes({1}).has_value());
    EXPECT_FALSE(WideShare::fromBytes({1, 2, 3}).has_value());
}

TEST(WideScheme, EmptySecretRoundTrips)
{
    const WideScheme scheme(2, 3);
    Rng rng(6);
    const auto shares = scheme.split({}, rng);
    const auto recovered = scheme.combine(shares, 0);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_TRUE(recovered->empty());
}

/** Property sweep over (k, n) including wide configurations. */
class WideSubsetProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(WideSubsetProperty, RandomKSubsetsRecover)
{
    const auto [k, n] = GetParam();
    const WideScheme scheme(k, n);
    Rng rng(777 + 7 * k + n);
    const auto secret = randomSecret(rng, 24);
    const auto shares = scheme.split(secret, rng);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<WideShare> subset(shares.begin(), shares.end());
        for (size_t i = 0; i < k; ++i) {
            const size_t j =
                i + static_cast<size_t>(rng.nextBelow(subset.size() - i));
            std::swap(subset[i], subset[j]);
        }
        subset.resize(k);
        const auto recovered = scheme.combine(subset, secret.size());
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(*recovered, secret);
    }
}

INSTANTIATE_TEST_SUITE_P(
    KnGrid, WideSubsetProperty,
    ::testing::Values(std::make_tuple<size_t, size_t>(1, 2),
                      std::make_tuple<size_t, size_t>(2, 3),
                      std::make_tuple<size_t, size_t>(18, 175),
                      std::make_tuple<size_t, size_t>(50, 500),
                      std::make_tuple<size_t, size_t>(176, 1760),
                      std::make_tuple<size_t, size_t>(100, 4000)));

} // namespace
} // namespace lemons::shamir
