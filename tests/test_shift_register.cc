/**
 * @file
 * Tests for the read-destructive PISO shift register (paper Fig 7).
 */

#include <gtest/gtest.h>

#include "arch/shift_register.h"

namespace lemons::arch {
namespace {

TEST(ShiftRegister, EmptyRegisterIsDrained)
{
    ShiftRegister reg({});
    EXPECT_EQ(reg.capacityBits(), 0u);
    EXPECT_TRUE(reg.drained());
    EXPECT_FALSE(reg.clockOut().has_value());
    EXPECT_TRUE(reg.drain().empty());
}

TEST(ShiftRegister, ClocksOutMsbFirst)
{
    ShiftRegister reg({0b10110001});
    const bool expected[] = {1, 0, 1, 1, 0, 0, 0, 1};
    for (bool bit : expected) {
        const auto out = reg.clockOut();
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, bit);
    }
    EXPECT_TRUE(reg.drained());
    EXPECT_FALSE(reg.clockOut().has_value());
}

TEST(ShiftRegister, DrainReconstructsBytes)
{
    const std::vector<uint8_t> data = {0xde, 0xad, 0xbe, 0xef};
    ShiftRegister reg(data);
    EXPECT_EQ(reg.drain(), data);
    EXPECT_TRUE(reg.drained());
}

TEST(ShiftRegister, PartialDrainAfterManualClocks)
{
    // Clock three bits of 0xF0 (1, 1, 1), then drain the rest
    // (1 0000 of the first byte + 0x0F): packed MSB-first.
    ShiftRegister reg({0xf0, 0x0f});
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(reg.clockOut().has_value());
    EXPECT_EQ(reg.remainingBits(), 13u);
    const auto rest = reg.drain();
    // Remaining bit stream: 10000 00001111 -> bytes 1000 0000 and the
    // final five bits 01111 left-aligned: 0111 1000.
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0], 0b10000000);
    EXPECT_EQ(rest[1], 0b01111000);
}

TEST(ShiftRegister, ReadIsDestructive)
{
    ShiftRegister reg({0xff});
    (void)reg.clockOut();
    (void)reg.clockOut();
    // Draining after two clocks yields only the surviving six bits;
    // re-draining yields nothing — the emitted bits are gone.
    EXPECT_EQ(reg.remainingBits(), 6u);
    (void)reg.drain();
    EXPECT_TRUE(reg.drain().empty());
    EXPECT_EQ(reg.remainingBits(), 0u);
}

TEST(ShiftRegister, PaperReadoutLatency)
{
    // Section 6.5.2: 1000 H bits at 20 ns/bit; H = 4 -> 0.08 ms.
    ShiftRegister reg(std::vector<uint8_t>(500, 0xaa)); // 4000 bits
    EXPECT_DOUBLE_EQ(reg.readoutLatencyNs(), 80000.0);
    (void)reg.clockOut();
    EXPECT_DOUBLE_EQ(reg.readoutLatencyNs(), 79980.0);
    EXPECT_DOUBLE_EQ(reg.readoutLatencyNs(10.0), 39990.0);
}

TEST(ShiftRegister, RoundTripArbitraryPayloads)
{
    for (uint8_t seedByte = 0; seedByte < 200; seedByte += 7) {
        std::vector<uint8_t> data;
        for (size_t i = 0; i < 1u + seedByte % 13u; ++i)
            data.push_back(static_cast<uint8_t>(seedByte * 31 + i * 17));
        ShiftRegister reg(data);
        EXPECT_EQ(reg.drain(), data) << "seed byte " << int{seedByte};
    }
}

} // namespace
} // namespace lemons::arch
