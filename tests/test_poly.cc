/**
 * @file
 * Unit and property tests for polynomials over GF(2^8).
 */

#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "gf/poly.h"
#include "util/rng.h"

namespace lemons::gf {
namespace {

TEST(Poly, ZeroPolynomial)
{
    const Poly zero;
    EXPECT_EQ(zero.degree(), -1);
    EXPECT_EQ(zero.eval(17), 0);
    EXPECT_EQ(zero.coefficient(0), 0);
}

TEST(Poly, TrailingZerosTrimmed)
{
    const Poly p(std::vector<uint8_t>{1, 2, 0, 0});
    EXPECT_EQ(p.degree(), 1);
    EXPECT_EQ(p.coefficients().size(), 2u);
}

TEST(Poly, EvalByHorner)
{
    // p(x) = 3 + 5x + 7x^2 over GF(256).
    const Poly p(std::vector<uint8_t>{3, 5, 7});
    for (unsigned x = 0; x < 256; x += 11) {
        const auto xu = static_cast<uint8_t>(x);
        const uint8_t expected =
            add(add(3, mul(5, xu)), mul(7, mul(xu, xu)));
        EXPECT_EQ(p.eval(xu), expected) << "x = " << x;
    }
}

TEST(Poly, EvalAtZeroIsConstantTerm)
{
    const Poly p(std::vector<uint8_t>{42, 1, 2, 3});
    EXPECT_EQ(p.eval(0), 42);
}

TEST(Poly, AdditionIsPointwise)
{
    Rng rng(5);
    const Poly a = Poly::random(10, 4, rng);
    const Poly b = Poly::random(20, 6, rng);
    const Poly sum = a + b;
    for (unsigned x = 0; x < 256; x += 17)
        EXPECT_EQ(sum.eval(static_cast<uint8_t>(x)),
                  add(a.eval(static_cast<uint8_t>(x)),
                      b.eval(static_cast<uint8_t>(x))));
}

TEST(Poly, AdditionCancelsSelf)
{
    Rng rng(6);
    const Poly a = Poly::random(9, 5, rng);
    EXPECT_EQ((a + a).degree(), -1); // characteristic 2
}

TEST(Poly, MultiplicationIsPointwise)
{
    Rng rng(7);
    const Poly a = Poly::random(1, 3, rng);
    const Poly b = Poly::random(2, 4, rng);
    const Poly prod = a * b;
    EXPECT_EQ(prod.degree(), a.degree() + b.degree());
    for (unsigned x = 0; x < 256; x += 13)
        EXPECT_EQ(prod.eval(static_cast<uint8_t>(x)),
                  mul(a.eval(static_cast<uint8_t>(x)),
                      b.eval(static_cast<uint8_t>(x))));
}

TEST(Poly, MultiplicationByZeroIsZero)
{
    Rng rng(8);
    const Poly a = Poly::random(1, 3, rng);
    EXPECT_EQ((a * Poly()).degree(), -1);
}

TEST(Poly, ScaledMatchesMultiplication)
{
    Rng rng(9);
    const Poly a = Poly::random(5, 4, rng);
    const Poly viaMul = a * Poly(std::vector<uint8_t>{7});
    EXPECT_EQ(a.scaled(7), viaMul);
}

TEST(Poly, RandomHasBoundedDegreeAndExactConstant)
{
    Rng rng(10);
    for (size_t degree = 0; degree <= 10; ++degree) {
        const Poly p = Poly::random(123, degree, rng);
        EXPECT_LE(p.degree(), static_cast<int>(degree));
        EXPECT_EQ(p.eval(0), 123);
    }
}

TEST(Poly, RandomLeadingCoefficientCanBeZero)
{
    // Perfect secrecy requires uniform coefficients; over many draws
    // the leading coefficient must sometimes be zero (degree drops).
    Rng rng(1011);
    int dropped = 0;
    for (int i = 0; i < 2000; ++i)
        if (Poly::random(7, 3, rng).degree() < 3)
            ++dropped;
    EXPECT_GT(dropped, 0);
    EXPECT_LT(dropped, 40); // ~1/256 of draws
}

TEST(Interpolate, RecoversPolynomialThroughPoints)
{
    Rng rng(11);
    const Poly truth = Poly::random(77, 5, rng);
    std::vector<Point> points;
    for (uint8_t x = 1; x <= 6; ++x)
        points.push_back({x, truth.eval(x)});
    const Poly recovered = interpolate(points);
    EXPECT_EQ(recovered, truth);
}

TEST(Interpolate, ExactDegreeFromMinimalPoints)
{
    // Two points define a line.
    const Poly line = interpolate({{1, 5}, {2, 9}});
    EXPECT_LE(line.degree(), 1);
    EXPECT_EQ(line.eval(1), 5);
    EXPECT_EQ(line.eval(2), 9);
}

TEST(Interpolate, RejectsDuplicateX)
{
    EXPECT_THROW(interpolate({{1, 2}, {1, 3}}), std::invalid_argument);
}

TEST(Interpolate, RejectsEmpty)
{
    EXPECT_THROW(interpolate({}), std::invalid_argument);
}

TEST(InterpolateAtZero, MatchesFullInterpolation)
{
    Rng rng(12);
    for (int trial = 0; trial < 50; ++trial) {
        const Poly truth = Poly::random(
            static_cast<uint8_t>(rng.nextBelow(256)), 7, rng);
        std::vector<Point> points;
        for (uint8_t x = 1; x <= 8; ++x)
            points.push_back({x, truth.eval(x)});
        EXPECT_EQ(interpolateAtZero(points),
                  interpolate(points).coefficient(0));
        EXPECT_EQ(interpolateAtZero(points), truth.eval(0));
    }
}

TEST(InterpolateAtZero, RejectsPointAtZero)
{
    EXPECT_THROW(interpolateAtZero({{0, 1}, {1, 2}}),
                 std::invalid_argument);
}

TEST(InterpolateAtZero, AnySubsetOfPointsAgrees)
{
    Rng rng(13);
    const Poly truth = Poly::random(200, 2, rng);
    // Degree-2 polynomial: any 3 of these 6 points recover eval(0).
    std::vector<Point> all;
    for (uint8_t x = 1; x <= 6; ++x)
        all.push_back({x, truth.eval(x)});
    for (size_t i = 0; i < 6; ++i)
        for (size_t j = i + 1; j < 6; ++j)
            for (size_t k = j + 1; k < 6; ++k) {
                EXPECT_EQ(interpolateAtZero({all[i], all[j], all[k]}), 200);
            }
}

} // namespace
} // namespace lemons::gf
