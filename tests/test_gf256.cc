/**
 * @file
 * Field-axiom property tests for GF(2^8).
 */

#include <gtest/gtest.h>

#include "gf/gf256.h"

namespace lemons::gf {
namespace {

TEST(Gf256, AddIsXor)
{
    EXPECT_EQ(add(0x53, 0xca), 0x53 ^ 0xca);
    EXPECT_EQ(add(0, 0xff), 0xff);
}

TEST(Gf256, AddIsItsOwnInverse)
{
    for (unsigned a = 0; a < 256; ++a)
        EXPECT_EQ(sub(add(static_cast<uint8_t>(a), 0x9c), 0x9c), a);
}

TEST(Gf256, MulMatchesBitwiseReference)
{
    // Exhaustive 256 x 256 cross-check of the table-driven fast path.
    for (unsigned a = 0; a < 256; ++a)
        for (unsigned b = 0; b < 256; ++b)
            ASSERT_EQ(mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                      mulSlow(static_cast<uint8_t>(a),
                              static_cast<uint8_t>(b)))
                << a << " * " << b;
}

TEST(Gf256, KnownProduct)
{
    // Classic AES-field example under 0x11d arithmetic:
    EXPECT_EQ(mul(2, 128), 0x1d ^ 0x00); // 2*128 = x^8 = 0x11d - 0x100
}

TEST(Gf256, MultiplicationIsCommutative)
{
    for (unsigned a = 0; a < 256; a += 3)
        for (unsigned b = 0; b < 256; b += 5)
            EXPECT_EQ(mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                      mul(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
}

TEST(Gf256, MultiplicationIsAssociative)
{
    for (unsigned a = 1; a < 256; a += 17)
        for (unsigned b = 1; b < 256; b += 13)
            for (unsigned c = 1; c < 256; c += 11) {
                const auto ab = mul(static_cast<uint8_t>(a),
                                    static_cast<uint8_t>(b));
                const auto bc = mul(static_cast<uint8_t>(b),
                                    static_cast<uint8_t>(c));
                EXPECT_EQ(mul(ab, static_cast<uint8_t>(c)),
                          mul(static_cast<uint8_t>(a), bc));
            }
}

TEST(Gf256, DistributesOverAddition)
{
    for (unsigned a = 0; a < 256; a += 7)
        for (unsigned b = 0; b < 256; b += 5)
            for (unsigned c = 0; c < 256; c += 11) {
                const auto au = static_cast<uint8_t>(a);
                const auto bu = static_cast<uint8_t>(b);
                const auto cu = static_cast<uint8_t>(c);
                EXPECT_EQ(mul(au, add(bu, cu)),
                          add(mul(au, bu), mul(au, cu)));
            }
}

TEST(Gf256, OneIsMultiplicativeIdentity)
{
    for (unsigned a = 0; a < 256; ++a)
        EXPECT_EQ(mul(static_cast<uint8_t>(a), 1), a);
}

TEST(Gf256, ZeroAnnihilates)
{
    for (unsigned a = 0; a < 256; ++a)
        EXPECT_EQ(mul(static_cast<uint8_t>(a), 0), 0);
}

TEST(Gf256, EveryNonzeroElementHasInverse)
{
    for (unsigned a = 1; a < 256; ++a)
        EXPECT_EQ(mul(static_cast<uint8_t>(a), inv(static_cast<uint8_t>(a))),
                  1)
            << "a = " << a;
}

TEST(Gf256, InverseOfZeroRejected)
{
    EXPECT_THROW(inv(0), std::invalid_argument);
}

TEST(Gf256, DivisionInvertsMultiplication)
{
    for (unsigned a = 0; a < 256; a += 3)
        for (unsigned b = 1; b < 256; b += 7) {
            const auto au = static_cast<uint8_t>(a);
            const auto bu = static_cast<uint8_t>(b);
            EXPECT_EQ(div(mul(au, bu), bu), au);
        }
}

TEST(Gf256, DivisionByZeroRejected)
{
    EXPECT_THROW(div(1, 0), std::invalid_argument);
}

TEST(Gf256, ExpLogRoundTrip)
{
    for (unsigned a = 1; a < 256; ++a)
        EXPECT_EQ(exp(log(static_cast<uint8_t>(a))), a);
}

TEST(Gf256, LogOfZeroRejected)
{
    EXPECT_THROW(log(0), std::invalid_argument);
}

TEST(Gf256, GeneratorHasFullOrder)
{
    // g = 2 generates the whole multiplicative group: powers 0..254 are
    // distinct.
    bool seen[256] = {};
    for (unsigned e = 0; e < groupOrder; ++e) {
        const uint8_t value = exp(e);
        EXPECT_FALSE(seen[value]) << "repeat at e = " << e;
        seen[value] = true;
    }
}

TEST(Gf256, PowMatchesRepeatedMultiplication)
{
    for (unsigned a = 0; a < 256; a += 13) {
        uint8_t acc = 1;
        for (uint64_t e = 0; e < 20; ++e) {
            EXPECT_EQ(pow(static_cast<uint8_t>(a), e), acc)
                << a << "^" << e;
            acc = mul(acc, static_cast<uint8_t>(a));
        }
    }
}

TEST(Gf256, PowHandlesHugeExponents)
{
    // a^255 = 1 for nonzero a, so a^(255 q + r) = a^r.
    EXPECT_EQ(pow(7, 255), 1);
    EXPECT_EQ(pow(7, 255 * 1000000 + 3), pow(7, 3));
    EXPECT_EQ(pow(0, 0), 1);
    EXPECT_EQ(pow(0, 5), 0);
}

} // namespace
} // namespace lemons::gf
