/**
 * @file
 * SHA-256 against FIPS 180-4 / NIST CAVS reference vectors.
 */

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.h"

namespace lemons::crypto {
namespace {

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(toHex(sha256(std::string{})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(toHex(sha256(std::string{"abc"})),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(toHex(sha256(std::string{
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                  "nopq"})),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(toHex(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, ExactlyOneBlock)
{
    // 64 bytes forces the padding into a second block.
    const std::string msg(64, 'x');
    EXPECT_EQ(toHex(sha256(msg)), toHex(sha256(msg))); // deterministic
    Sha256 h;
    h.update(msg);
    EXPECT_EQ(toHex(h.finalize()), toHex(sha256(msg)));
}

TEST(Sha256, FiftyFiveAndFiftySixBytes)
{
    // 55 bytes is the largest message whose padding fits one block;
    // 56 spills. Both must round-trip through the incremental API.
    for (size_t len : {55u, 56u, 63u, 64u, 65u}) {
        const std::string msg(len, 'q');
        Sha256 whole;
        whole.update(msg);
        Sha256 split;
        split.update(msg.substr(0, len / 2));
        split.update(msg.substr(len / 2));
        EXPECT_EQ(toHex(whole.finalize()), toHex(split.finalize()))
            << "len = " << len;
    }
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg = "The quick brown fox jumps over the lazy dog";
    Sha256 h;
    for (char c : msg)
        h.update(std::string(1, c));
    EXPECT_EQ(toHex(h.finalize()), toHex(sha256(msg)));
}

TEST(Sha256, KnownFoxDigest)
{
    EXPECT_EQ(toHex(sha256(std::string{
                  "The quick brown fox jumps over the lazy dog"})),
              "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf"
              "37c9e592");
}

TEST(Sha256, VectorAndStringAgree)
{
    const std::string text = "hello";
    const std::vector<uint8_t> bytes(text.begin(), text.end());
    EXPECT_EQ(sha256(text), sha256(bytes));
}

TEST(Sha256, FinalizeTwiceRejected)
{
    Sha256 h;
    h.update(std::string{"x"});
    (void)h.finalize();
    EXPECT_THROW(h.finalize(), std::logic_error);
    EXPECT_THROW(h.update(std::string{"y"}), std::logic_error);
}

TEST(Sha256, DistinctMessagesDistinctDigests)
{
    EXPECT_NE(sha256(std::string{"a"}), sha256(std::string{"b"}));
    EXPECT_NE(sha256(std::string{""}), sha256(std::string{"\0", 1}));
}

TEST(ToHex, FormatsAllBytes)
{
    Digest d{};
    d[0] = 0x00;
    d[1] = 0xff;
    d[31] = 0x5a;
    const std::string hex = toHex(d);
    ASSERT_EQ(hex.size(), 64u);
    EXPECT_EQ(hex.substr(0, 4), "00ff");
    EXPECT_EQ(hex.substr(62, 2), "5a");
}

} // namespace
} // namespace lemons::crypto
