/**
 * @file
 * Monte Carlo validation of the system-level usage bounds (Fig 4c):
 * the empirical total-access distribution of solved designs must
 * bracket the LAB and track the analytic expectation.
 */

#include <gtest/gtest.h>

#include "core/design_solver.h"
#include "core/usage_bounds.h"

namespace lemons::core {
namespace {

Design
smallDesign(double maxResidual = 0.01)
{
    // A targeting-scale design keeps the MC affordable.
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    request.criteria.maxResidualReliability = maxResidual;
    return DesignSolver(request).solve();
}

TEST(UsageBounds, RejectsInfeasibleDesign)
{
    const Design infeasible;
    EXPECT_THROW(estimateUsageBounds(infeasible, {10.0, 12.0},
                                     wearout::ProcessVariation::none(),
                                     10, 1),
                 std::invalid_argument);
}

TEST(UsageBounds, MeanTracksAnalyticExpectation)
{
    const Design d = smallDesign();
    ASSERT_TRUE(d.feasible);
    const UsageBounds bounds = estimateUsageBounds(
        d, {10.0, 12.0}, wearout::ProcessVariation::none(), 2000, 7);
    EXPECT_NEAR(bounds.meanTotalAccesses, d.expectedSystemTotal,
                0.01 * d.expectedSystemTotal);
}

TEST(UsageBounds, SystemAlmostAlwaysServesTheLab)
{
    const Design d = smallDesign();
    ASSERT_TRUE(d.feasible);
    const UsageBounds bounds = estimateUsageBounds(
        d, {10.0, 12.0}, wearout::ProcessVariation::none(), 2000, 11);
    // 0.1 % quantile within a hair of the LAB: each copy fails its
    // bound with probability <= 1 %, and shortfalls are single
    // accesses.
    EXPECT_GE(bounds.q001,
              static_cast<double>(d.copies * d.perCopyBound) * 0.97);
    EXPECT_GE(bounds.meanTotalAccesses, 100.0);
}

TEST(UsageBounds, UpperBoundStaysTight)
{
    const Design d = smallDesign();
    ASSERT_TRUE(d.feasible);
    const UsageBounds bounds = estimateUsageBounds(
        d, {10.0, 12.0}, wearout::ProcessVariation::none(), 2000, 13);
    // With 1 % residual per copy, the 99.9 % quantile exceeds the
    // nominal bound by at most a few accesses.
    EXPECT_LE(bounds.q999,
              static_cast<double>(d.copies * d.perCopyBound) + 10.0);
}

TEST(UsageBounds, RelaxedResidualRaisesEmpiricalUpperBound)
{
    // Fig 4c: p = 1 % -> 10 % raises the empirical upper bound
    // (91,326 -> 92,028 in the paper's full-size instance).
    const Design strict = smallDesign(0.01);
    const Design relaxed = smallDesign(0.10);
    ASSERT_TRUE(strict.feasible);
    ASSERT_TRUE(relaxed.feasible);
    const UsageBounds strictBounds = estimateUsageBounds(
        strict, {10.0, 12.0}, wearout::ProcessVariation::none(), 2000, 17);
    const UsageBounds relaxedBounds = estimateUsageBounds(
        relaxed, {10.0, 12.0}, wearout::ProcessVariation::none(), 2000, 17);
    const double strictOvershoot =
        strictBounds.meanTotalAccesses -
        static_cast<double>(strict.copies * strict.perCopyBound);
    const double relaxedOvershoot =
        relaxedBounds.meanTotalAccesses -
        static_cast<double>(relaxed.copies * relaxed.perCopyBound);
    EXPECT_GT(relaxedOvershoot, strictOvershoot);
}

TEST(UsageBounds, ProcessVariationWidensTheDistribution)
{
    const Design d = smallDesign();
    ASSERT_TRUE(d.feasible);
    const UsageBounds exact = estimateUsageBounds(
        d, {10.0, 12.0}, wearout::ProcessVariation::none(), 2000, 19);
    const UsageBounds varied = estimateUsageBounds(
        d, {10.0, 12.0}, {0.2, 0.0}, 2000, 19);
    const double exactSpread =
        exact.maxTotalAccesses - exact.minTotalAccesses;
    const double variedSpread =
        varied.maxTotalAccesses - varied.minTotalAccesses;
    EXPECT_GT(variedSpread, exactSpread);
}

TEST(UsageBounds, TrialsRecorded)
{
    const Design d = smallDesign();
    const UsageBounds bounds = estimateUsageBounds(
        d, {10.0, 12.0}, wearout::ProcessVariation::none(), 500, 23);
    EXPECT_EQ(bounds.trials, 500u);
    EXPECT_LE(bounds.minTotalAccesses, bounds.meanTotalAccesses);
    EXPECT_LE(bounds.meanTotalAccesses, bounds.maxTotalAccesses);
    EXPECT_LE(bounds.q001, bounds.q999);
}

} // namespace
} // namespace lemons::core
