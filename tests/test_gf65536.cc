/**
 * @file
 * Field-axiom property tests for GF(2^16) (sampled; the field is too
 * large for exhaustive cross-products).
 */

#include <gtest/gtest.h>

#include "gf/gf65536.h"
#include "util/rng.h"

namespace lemons::gf16 {
namespace {

TEST(Gf65536, AddIsXor)
{
    EXPECT_EQ(add(0x1234, 0xfedc), 0x1234 ^ 0xfedc);
    EXPECT_EQ(sub(add(0xbeef, 0x1111), 0x1111), 0xbeef);
}

TEST(Gf65536, MulMatchesBitwiseReferenceSampled)
{
    Rng rng(1);
    for (int i = 0; i < 200000; ++i) {
        const auto a = static_cast<uint16_t>(rng.nextBelow(65536));
        const auto b = static_cast<uint16_t>(rng.nextBelow(65536));
        ASSERT_EQ(mul(a, b), mulSlow(a, b)) << a << " * " << b;
    }
}

TEST(Gf65536, MultiplicationCommutesAndAssociates)
{
    Rng rng(2);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<uint16_t>(rng.nextBelow(65536));
        const auto b = static_cast<uint16_t>(rng.nextBelow(65536));
        const auto c = static_cast<uint16_t>(rng.nextBelow(65536));
        EXPECT_EQ(mul(a, b), mul(b, a));
        EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
    }
}

TEST(Gf65536, DistributesOverAddition)
{
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<uint16_t>(rng.nextBelow(65536));
        const auto b = static_cast<uint16_t>(rng.nextBelow(65536));
        const auto c = static_cast<uint16_t>(rng.nextBelow(65536));
        EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }
}

TEST(Gf65536, IdentityAndZero)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const auto a = static_cast<uint16_t>(rng.nextBelow(65536));
        EXPECT_EQ(mul(a, 1), a);
        EXPECT_EQ(mul(a, 0), 0);
    }
}

TEST(Gf65536, EveryNonzeroElementHasInverse)
{
    // Exhaustive: 65,535 inversions are cheap with tables.
    for (unsigned a = 1; a < fieldSize; ++a) {
        const auto au = static_cast<uint16_t>(a);
        ASSERT_EQ(mul(au, inv(au)), 1) << "a = " << a;
    }
}

TEST(Gf65536, InverseAndLogOfZeroRejected)
{
    EXPECT_THROW(inv(0), std::invalid_argument);
    EXPECT_THROW(log(0), std::invalid_argument);
    EXPECT_THROW(div(1, 0), std::invalid_argument);
}

TEST(Gf65536, DivisionInvertsMultiplication)
{
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<uint16_t>(rng.nextBelow(65536));
        const auto b = static_cast<uint16_t>(1 + rng.nextBelow(65535));
        EXPECT_EQ(div(mul(a, b), b), a);
    }
}

TEST(Gf65536, ExpLogRoundTripSampled)
{
    Rng rng(6);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<uint16_t>(1 + rng.nextBelow(65535));
        EXPECT_EQ(exp(log(a)), a);
    }
}

TEST(Gf65536, GeneratorHasFullOrder)
{
    // 2 generates the multiplicative group for the chosen primitive
    // polynomial: 2^groupOrder = 1 and 2^(groupOrder/q) != 1 for the
    // prime factors q of 65535 = 3 * 5 * 17 * 257.
    EXPECT_EQ(pow(2, groupOrder), 1);
    for (unsigned q : {3u, 5u, 17u, 257u})
        EXPECT_NE(pow(2, groupOrder / q), 1) << "q = " << q;
}

TEST(Gf65536, PowHandlesHugeExponents)
{
    EXPECT_EQ(pow(7, 0), 1);
    EXPECT_EQ(pow(0, 0), 1);
    EXPECT_EQ(pow(0, 9), 0);
    EXPECT_EQ(pow(7, uint64_t{65535} * 1000000 + 5), pow(7, 5));
}

} // namespace
} // namespace lemons::gf16
