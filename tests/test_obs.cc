/**
 * @file
 * lemons::obs in its default (enabled) configuration: metric
 * primitives, registry semantics, snapshot deltas, JSON serialization,
 * and the global-registry macros. The disabled configuration is pinned
 * separately by test_obs_disabled.cc, whose translation unit defines
 * LEMONS_OBS_DISABLED.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"

namespace lemons::obs {
namespace {

TEST(ObsCounter, AddGetReset)
{
    Counter c;
    EXPECT_EQ(c.get(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.get(), 42u);
    c.reset();
    EXPECT_EQ(c.get(), 0u);
}

TEST(ObsTimer, RecordAndMean)
{
    Timer t;
    EXPECT_EQ(t.count(), 0u);
    EXPECT_DOUBLE_EQ(t.meanNs(), 0.0);
    t.record(100);
    t.record(300);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.totalNs(), 400u);
    EXPECT_DOUBLE_EQ(t.meanNs(), 200.0);
    t.reset();
    EXPECT_EQ(t.count(), 0u);
    EXPECT_EQ(t.totalNs(), 0u);
}

TEST(ObsTimer, ScopedTimerRecordsElapsedTime)
{
    Timer t;
    {
        const ScopedTimer guard(t);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(t.count(), 1u);
    EXPECT_GE(t.totalNs(), 1000000u); // at least 1 ms of the 2 ms sleep
}

TEST(ObsHistogram, RecordsIntoSharedHistogram)
{
    HistogramMetric h(0.0, 10.0, 5);
    h.add(1.0);
    h.add(3.0);
    h.add(-1.0);
    h.add(99.0);
    const Histogram snap = h.snapshot();
    EXPECT_EQ(snap.binValue(0), 1u);
    EXPECT_EQ(snap.binValue(1), 1u);
    EXPECT_EQ(snap.underflow(), 1u);
    EXPECT_EQ(snap.overflow(), 1u);
    h.reset();
    const Histogram cleared = h.snapshot();
    EXPECT_EQ(cleared.binValue(0), 0u);
    EXPECT_EQ(cleared.underflow(), 0u);
    EXPECT_EQ(cleared.binCount(), 5u); // layout preserved across reset
}

TEST(ObsRegistry, LookupOrCreateReturnsStableReferences)
{
    Registry registry;
    Counter &a = registry.counter("alpha");
    Counter &b = registry.counter("alpha");
    EXPECT_EQ(&a, &b);
    Timer &t1 = registry.timer("alpha"); // same name, different kind
    Timer &t2 = registry.timer("alpha");
    EXPECT_EQ(&t1, &t2);
    // Histogram layout is fixed by the first caller.
    HistogramMetric &h1 = registry.histogram("hist", 0.0, 1.0, 10);
    HistogramMetric &h2 = registry.histogram("hist", 5.0, 9.0, 2);
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h1.snapshot().binCount(), 10u);

    EXPECT_EQ(registry.size(), 3u);
    EXPECT_TRUE(registry.contains("alpha"));
    EXPECT_TRUE(registry.contains("hist"));
    EXPECT_FALSE(registry.contains("beta"));
}

TEST(ObsRegistry, SnapshotIsNameSorted)
{
    Registry registry;
    registry.counter("zeta").add(1);
    registry.counter("alpha").add(2);
    registry.counter("mid").add(3);
    const Snapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].name, "alpha");
    EXPECT_EQ(snap.counters[1].name, "mid");
    EXPECT_EQ(snap.counters[2].name, "zeta");
    EXPECT_EQ(snap.counters[0].value, 2u);
}

TEST(ObsRegistry, SnapshotDeltasDropUnchangedMetrics)
{
    Registry registry;
    registry.counter("steady").add(10);
    registry.counter("active").add(1);
    registry.timer("quiet").record(50);
    const Snapshot before = registry.snapshot();

    registry.counter("active").add(4);
    registry.counter("fresh").add(7);
    registry.timer("busy").record(300);
    const Snapshot after = registry.snapshot();

    const auto counterDeltas = after.countersSince(before);
    ASSERT_EQ(counterDeltas.size(), 2u);
    EXPECT_EQ(counterDeltas[0].name, "active");
    EXPECT_EQ(counterDeltas[0].value, 4u);
    EXPECT_EQ(counterDeltas[1].name, "fresh");
    EXPECT_EQ(counterDeltas[1].value, 7u);

    const auto timerDeltas = after.timersSince(before);
    ASSERT_EQ(timerDeltas.size(), 1u);
    EXPECT_EQ(timerDeltas[0].name, "busy");
    EXPECT_EQ(timerDeltas[0].count, 1u);
    EXPECT_EQ(timerDeltas[0].totalNs, 300u);
}

TEST(ObsRegistry, ResetAllZeroesValuesButKeepsRegistrations)
{
    Registry registry;
    Counter &c = registry.counter("events");
    c.add(9);
    registry.timer("span").record(1000);
    registry.resetAll();
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(c.get(), 0u); // cached call-site reference still valid
    EXPECT_EQ(registry.timer("span").totalNs(), 0u);
}

TEST(ObsRegistry, ToJsonRoundTrip)
{
    Registry registry;
    registry.counter("sim.trials").add(3);
    registry.timer("sim.run").record(1500);
    registry.histogram("lat", 0.0, 2.0, 2).add(0.5);
    EXPECT_EQ(registry.toJson(),
              "{\"counters\":{\"sim.trials\":3},"
              "\"timers\":{\"sim.run\":{\"count\":1,\"total_ns\":1500}},"
              "\"histograms\":{\"lat\":{\"low\":0,\"high\":2,"
              "\"underflow\":0,\"overflow\":0,\"bins\":[1,0]}}}");
}

TEST(ObsJson, WriterEscapesAndNestsCorrectly)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("quote\"backslash\\");
    json.value("line\nbreak");
    json.key("nums");
    json.beginArray();
    json.value(1.5);
    json.value(uint64_t{7});
    json.value(-2);
    json.value(true);
    json.null();
    json.endArray();
    json.endObject();
    EXPECT_TRUE(json.complete());
    EXPECT_EQ(out.str(),
              "{\"quote\\\"backslash\\\\\":\"line\\nbreak\","
              "\"nums\":[1.5,7,-2,true,null]}");
}

TEST(ObsJson, NonFiniteDoublesBecomeNull)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginArray();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.endArray();
    EXPECT_EQ(out.str(), "[null,null]");
}

TEST(ObsMacros, RegisterAndCountInGlobalRegistry)
{
    // Names unique to this test so the global registry's state from
    // other instrumented code paths cannot interfere.
    LEMONS_OBS_COUNT("test.obs.macro.count", 5);
    LEMONS_OBS_INCREMENT("test.obs.macro.count");
    ASSERT_TRUE(Registry::global().contains("test.obs.macro.count"));
    EXPECT_EQ(Registry::global().counter("test.obs.macro.count").get(),
              6u);

    {
        LEMONS_OBS_SCOPED_TIMER("test.obs.macro.timer");
    }
    ASSERT_TRUE(Registry::global().contains("test.obs.macro.timer"));
    EXPECT_EQ(Registry::global().timer("test.obs.macro.timer").count(),
              1u);
}

} // namespace
} // namespace lemons::obs
