/**
 * @file
 * Tests for the one-time-pad decision trees: Eq. 9-15 analytics,
 * Monte Carlo cross-validation, and the runtime hardware model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/decision_tree.h"
#include "sim/monte_carlo.h"
#include "util/math.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

OtpParams
paperParams(unsigned height = 4, uint64_t threshold = 8)
{
    OtpParams p;
    p.height = height;
    p.copies = 128;
    p.threshold = threshold;
    p.device = {10.0, 1.0}; // Section 6.4's example technology
    return p;
}

TEST(OtpAnalytics, RejectsBadParams)
{
    OtpParams p = paperParams();
    p.height = 0;
    EXPECT_THROW(OtpAnalytics{p}, std::invalid_argument);
    p = paperParams();
    p.threshold = 0;
    EXPECT_THROW(OtpAnalytics{p}, std::invalid_argument);
    p = paperParams();
    p.threshold = 129;
    EXPECT_THROW(OtpAnalytics{p}, std::invalid_argument);
}

TEST(OtpAnalytics, PathSuccessMatchesEquationNine)
{
    // Eq. 9: s = exp(-(1/alpha)^beta * H). With alpha=10, beta=1:
    // R(1) = e^-0.1, so s = e^-(0.1 H).
    for (unsigned h : {1u, 4u, 8u, 12u}) {
        const OtpAnalytics analytics(paperParams(h));
        EXPECT_NEAR(analytics.pathSuccess(),
                    std::exp(-0.1 * static_cast<double>(h)), 1e-12)
            << "H = " << h;
    }
}

TEST(OtpAnalytics, PathCountIsTwoToHMinusOne)
{
    EXPECT_DOUBLE_EQ(OtpAnalytics(paperParams(1)).pathCount(), 1.0);
    EXPECT_DOUBLE_EQ(OtpAnalytics(paperParams(4)).pathCount(), 8.0);
    EXPECT_DOUBLE_EQ(OtpAnalytics(paperParams(8)).pathCount(), 128.0);
}

TEST(OtpAnalytics, ReceiverSuccessMatchesEquationTen)
{
    const OtpAnalytics analytics(paperParams(4, 8));
    const double s = analytics.pathSuccess();
    double direct = 0.0;
    for (uint64_t i = 8; i <= 128; ++i)
        direct += std::exp(logBinomialPmf(128, i, s));
    EXPECT_NEAR(analytics.receiverSuccess(), direct, 1e-9);
}

TEST(OtpAnalytics, ReceiverNearCertainAtPaperPoint)
{
    // H=4, k=8, n=128, alpha=10: the paper's working design point lies
    // deep inside the receiver's success region (Fig 8a).
    const OtpAnalytics analytics(paperParams(4, 8));
    EXPECT_GT(analytics.receiverSuccess(), 0.9999);
}

TEST(OtpAnalytics, AdversaryBlockedByHeightEight)
{
    // Fig 8b: "When the tree height is 8 or more, the adversaries'
    // success probability reduces to zero even if the redundancy level
    // is very high."
    const OtpAnalytics analytics(paperParams(8, 8));
    EXPECT_LT(analytics.adversarySuccess(), 1e-6);
    // And the receiver still succeeds (right path known).
    EXPECT_GT(analytics.receiverSuccess(), 0.99);
}

TEST(OtpAnalytics, AdversaryWeakerThanReceiverEverywhere)
{
    for (unsigned h : {2u, 4u, 6u, 8u}) {
        for (uint64_t k : {4u, 8u, 16u, 32u}) {
            const OtpAnalytics analytics(paperParams(h, k));
            EXPECT_LE(analytics.adversarySuccess(),
                      analytics.receiverSuccess() + 1e-12)
                << "H=" << h << " k=" << k;
        }
    }
}

TEST(OtpAnalytics, HigherThresholdLowersBothSuccesses)
{
    const double recvK8 = OtpAnalytics(paperParams(4, 8)).receiverSuccess();
    const double recvK64 =
        OtpAnalytics(paperParams(4, 64)).receiverSuccess();
    EXPECT_GT(recvK8, recvK64);
    const double advK8 = OtpAnalytics(paperParams(4, 8)).adversarySuccess();
    const double advK64 =
        OtpAnalytics(paperParams(4, 64)).adversarySuccess();
    EXPECT_GT(advK8, advK64);
}

TEST(OtpAnalytics, TallerTreesBlockAdversariesFaster)
{
    double prev = 1.0;
    for (unsigned h = 1; h <= 10; ++h) {
        const double adv = OtpAnalytics(paperParams(h, 8))
                               .adversarySuccess();
        EXPECT_LE(adv, prev + 1e-12) << "H = " << h;
        prev = adv;
    }
}

TEST(OtpAnalytics, HigherAlphaHelpsBothParties)
{
    // Fig 9: looser wearout bounds (higher alpha) raise everyone's
    // success probability.
    OtpParams weak = paperParams(6, 8);
    weak.device.alpha = 5.0;
    OtpParams strong = paperParams(6, 8);
    strong.device.alpha = 50.0;
    EXPECT_LT(OtpAnalytics(weak).receiverSuccess(),
              OtpAnalytics(strong).receiverSuccess());
    EXPECT_LE(OtpAnalytics(weak).adversarySuccess(),
              OtpAnalytics(strong).adversarySuccess() + 1e-12);
}

TEST(OtpAnalytics, LogAdversaryConsistentWithLinear)
{
    const OtpAnalytics analytics(paperParams(4, 8));
    EXPECT_NEAR(std::exp(analytics.logAdversarySuccess()),
                analytics.adversarySuccess(), 1e-12);
}

TEST(DecisionTree, RejectsBadConstruction)
{
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(1);
    EXPECT_THROW(DecisionTree(0, {}, factory, rng), std::invalid_argument);
    EXPECT_THROW(DecisionTree(3, {{1}, {2}}, factory, rng),
                 std::invalid_argument); // needs 4 leaves
}

TEST(DecisionTree, TraverseReturnsLeafPayload)
{
    const DeviceFactory immortal({1e9, 8.0}, ProcessVariation::none());
    Rng rng(2);
    DecisionTree tree(3, {{0}, {1}, {2}, {3}}, immortal, rng);
    EXPECT_EQ(tree.leafCount(), 4u);
    for (uint64_t path = 0; path < 4; ++path) {
        const auto payload = tree.traverse(path);
        ASSERT_TRUE(payload.has_value());
        EXPECT_EQ((*payload)[0], static_cast<uint8_t>(path));
    }
}

TEST(DecisionTree, LeavesAreReadDestructive)
{
    const DeviceFactory immortal({1e9, 8.0}, ProcessVariation::none());
    Rng rng(3);
    DecisionTree tree(2, {{7}, {8}}, immortal, rng);
    EXPECT_TRUE(tree.traverse(0).has_value());
    EXPECT_FALSE(tree.traverse(0).has_value()); // consumed
    EXPECT_TRUE(tree.traverse(1).has_value());  // sibling untouched
}

TEST(DecisionTree, PathOutOfRangeRejected)
{
    const DeviceFactory immortal({1e9, 8.0}, ProcessVariation::none());
    Rng rng(4);
    DecisionTree tree(2, {{1}, {2}}, immortal, rng);
    EXPECT_THROW(tree.traverse(2), std::invalid_argument);
}

std::vector<std::vector<uint8_t>>
leafBytes(size_t count)
{
    std::vector<std::vector<uint8_t>> leaves(count);
    for (size_t i = 0; i < count; ++i)
        leaves[i] = {static_cast<uint8_t>(i)};
    return leaves;
}

TEST(DecisionTree, EntrySwitchWearBlocksAllPaths)
{
    const DeviceFactory oneShot({1.0, 100.0}, ProcessVariation::none());
    Rng rng(6);
    DecisionTree tree(3, leafBytes(4), oneShot, rng);
    // First traversal consumes the entry switch (lifetime ~1 cycle).
    (void)tree.traverse(0);
    // Every subsequent path shares the dead entry switch.
    for (uint64_t path = 0; path < 4; ++path)
        EXPECT_FALSE(tree.traverse(path).has_value());
}

TEST(DecisionTree, TraversalCountTracksAttempts)
{
    const DeviceFactory immortal({1e9, 8.0}, ProcessVariation::none());
    Rng rng(7);
    DecisionTree tree(2, leafBytes(2), immortal, rng);
    (void)tree.traverse(0);
    (void)tree.traverse(1);
    (void)tree.traverse(1);
    EXPECT_EQ(tree.traversalCount(), 3u);
}

std::vector<uint8_t>
padKey()
{
    std::vector<uint8_t> key(32);
    for (size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<uint8_t>(0x11 * (i % 15) + 1);
    return key;
}

TEST(OneTimePad, ReceiverRetrievesWithRightPath)
{
    const OtpParams params = paperParams(4, 8);
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(8);
    OneTimePad pad(params, padKey(), /*rightPath=*/5, factory, rng);
    const auto key = pad.retrieve(5);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, padKey());
}

TEST(OneTimePad, WrongPathYieldsNothing)
{
    const OtpParams params = paperParams(4, 8);
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(9);
    OneTimePad pad(params, padKey(), 5, factory, rng);
    EXPECT_FALSE(pad.retrieve(3).has_value());
}

TEST(OneTimePad, RetrievalIsOneShot)
{
    const OtpParams params = paperParams(4, 8);
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(10);
    OneTimePad pad(params, padKey(), 2, factory, rng);
    ASSERT_TRUE(pad.retrieve(2).has_value());
    // Leaves destroyed; a second retrieval cannot gather k shares.
    EXPECT_FALSE(pad.retrieve(2).has_value());
}

TEST(OneTimePad, RejectsBadConstruction)
{
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(11);
    OtpParams params = paperParams(4, 8);
    EXPECT_THROW(OneTimePad(params, {}, 0, factory, rng),
                 std::invalid_argument);
    EXPECT_THROW(OneTimePad(params, padKey(), 8, factory, rng),
                 std::invalid_argument); // only 8 paths: 0..7
    params.copies = 300;
    EXPECT_THROW(OneTimePad(params, padKey(), 0, factory, rng),
                 std::invalid_argument);
}

TEST(OneTimePad, ReceiverSuccessRateMatchesAnalytics)
{
    // MC over fabricated pads vs Eq. 10.
    const OtpParams params = paperParams(4, 8);
    const OtpAnalytics analytics(params);
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    const sim::MonteCarlo engine(12, 400);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        OneTimePad pad(params, padKey(), 5, factory, rng);
        return pad.retrieve(5).has_value();
    });
    const double analytic = analytics.receiverSuccess();
    EXPECT_GT(analytic, ci.low - 0.02);
    EXPECT_LT(analytic, ci.high + 0.02);
}

TEST(OneTimePad, AdversarySuccessRateMatchesAnalytics)
{
    // Use a small tree (H=2 -> 2 paths) where the adversary sometimes
    // wins, and compare against Eq. 15.
    const OtpParams params = paperParams(2, 8);
    const OtpAnalytics analytics(params);
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    const sim::MonteCarlo engine(13, 400);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        OneTimePad pad(params, padKey(), 1, factory, rng);
        Rng attacker = rng.split(999);
        return pad.randomPathAttack(attacker).has_value();
    });
    const double analytic = analytics.adversarySuccess();
    EXPECT_GT(analytic, ci.low - 0.05);
    EXPECT_LT(analytic, ci.high + 0.05);
}

TEST(OneTimePad, TallTreeDefeatsAdversaryInSimulation)
{
    const OtpParams params = paperParams(8, 8);
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    const sim::MonteCarlo engine(14, 100);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        OneTimePad pad(params, padKey(), 77, factory, rng);
        Rng attacker = rng.split(31337);
        return pad.randomPathAttack(attacker).has_value();
    });
    EXPECT_EQ(ci.estimate, 0.0);
}

TEST(OneTimePad, AttackConsumesTheReceiverPad)
{
    // Evil-maid style: after an attack pass, the legitimate receiver
    // usually cannot retrieve anymore — availability is lost, but the
    // key was not leaked.
    const OtpParams params = paperParams(4, 96); // high threshold
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(15);
    OneTimePad pad(params, padKey(), 3, factory, rng);
    Rng attacker(16);
    EXPECT_FALSE(pad.randomPathAttack(attacker).has_value());
    EXPECT_FALSE(pad.retrieve(3).has_value());
}

} // namespace
} // namespace lemons::core
