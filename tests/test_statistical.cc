/**
 * @file
 * Seeded goodness-of-fit tests for the stochastic substrates.
 *
 * Every test here drives a fixed-seed Rng, so the sampled statistics
 * are deterministic and the assertions are exact regressions, not
 * flaky hypothesis tests: the bounds are chosen with comfortable
 * margin over the observed seeded values, yet tight enough that a
 * broken sampler (wrong transform, wrong branch, biased rounding)
 * fails loudly.
 *
 *  - Kolmogorov-Smirnov distance of Weibull and bathtub-mixture
 *    sampling against their analytic CDFs;
 *  - chi-square of sim::poissonSample against the exact Poisson pmf,
 *    on both sides of the exact <-> normal-approximation crossover at
 *    mean = 64.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include "sim/workload.h"
#include "util/rng.h"
#include "wearout/mixture.h"
#include "wearout/weibull.h"

namespace lemons {
namespace {

/**
 * Two-sided Kolmogorov-Smirnov distance between the empirical CDF of
 * @p samples and the analytic @p cdf.
 */
double
ksDistance(std::vector<double> samples,
           const std::function<double(double)> &cdf)
{
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    double d = 0.0;
    for (size_t i = 0; i < samples.size(); ++i) {
        const double f = cdf(samples[i]);
        d = std::max(d, f - static_cast<double>(i) / n);
        d = std::max(d, static_cast<double>(i + 1) / n - f);
    }
    return d;
}

/** KS critical value at the 99.9 % level: 1.95 / sqrt(n). */
double
ksCritical(size_t n)
{
    return 1.95 / std::sqrt(static_cast<double>(n));
}

double
poissonPmf(uint64_t k, double mean)
{
    return std::exp(static_cast<double>(k) * std::log(mean) - mean -
                    std::lgamma(static_cast<double>(k) + 1.0));
}

struct ChiSquare
{
    double stat;
    size_t degreesOfFreedom;
};

/**
 * Chi-square statistic of @p n seeded poissonSample draws against the
 * exact Poisson(@p mean) pmf, pooling adjacent outcomes into bins of
 * expected count >= 5 (the textbook validity threshold).
 */
ChiSquare
poissonChiSquare(double mean, uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::map<uint64_t, uint64_t> observed;
    for (size_t i = 0; i < n; ++i)
        ++observed[sim::poissonSample(rng, mean)];

    const double nd = static_cast<double>(n);
    double stat = 0.0;
    size_t bins = 0;
    double expAcc = 0.0;
    double obsAcc = 0.0;
    const auto kMax =
        static_cast<uint64_t>(mean + 12.0 * std::sqrt(mean) + 20.0);
    double tailExp = nd;
    for (uint64_t k = 0; k <= kMax; ++k) {
        const double e = nd * poissonPmf(k, mean);
        tailExp -= e;
        expAcc += e;
        const auto it = observed.find(k);
        obsAcc +=
            it == observed.end() ? 0.0 : static_cast<double>(it->second);
        if (expAcc >= 5.0) {
            const double diff = obsAcc - expAcc;
            stat += diff * diff / expAcc;
            ++bins;
            expAcc = obsAcc = 0.0;
        }
    }
    expAcc += std::max(tailExp, 0.0);
    for (const auto &[k, count] : observed)
        if (k > kMax)
            obsAcc += static_cast<double>(count);
    if (expAcc > 0.0) {
        const double diff = obsAcc - expAcc;
        stat += diff * diff / expAcc;
        ++bins;
    }
    return {stat, bins - 1};
}

/**
 * Approximate chi-square 99.9 % critical value (normal approximation
 * df + z * sqrt(2 df) with z = 3.29; slightly conservative for the
 * df ~ 15..100 used here).
 */
double
chiSquareCritical(size_t df)
{
    const double d = static_cast<double>(df);
    return d + 3.29 * std::sqrt(2.0 * d);
}

TEST(Statistical, WeibullSamplingMatchesAnalyticCdf)
{
    const wearout::Weibull device(10.0, 12.0);
    Rng rng(12345);
    const auto samples = device.sampleMany(rng, 20000);
    const double d =
        ksDistance(samples, [&](double x) { return device.cdf(x); });
    EXPECT_LT(d, ksCritical(samples.size()));
}

TEST(Statistical, WeibullLowShapeSamplingMatchesAnalyticCdf)
{
    // shape < 1 (infant-mortality regime): exercises the heavy left
    // tail of the inverse-CDF transform.
    const wearout::Weibull device(14.0, 0.8);
    Rng rng(54321);
    const auto samples = device.sampleMany(rng, 20000);
    const double d =
        ksDistance(samples, [&](double x) { return device.cdf(x); });
    EXPECT_LT(d, ksCritical(samples.size()));
}

TEST(Statistical, BathtubMixtureSamplingMatchesMixtureCdf)
{
    const wearout::Weibull main(10.0, 12.0);
    const wearout::BathtubModel mix =
        wearout::BathtubModel::withInfantMortality(main, 0.2);
    Rng rng(777);
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        samples.push_back(mix.sample(rng));
    const double d =
        ksDistance(samples, [&](double x) { return mix.cdf(x); });
    EXPECT_LT(d, ksCritical(samples.size()));
}

TEST(Statistical, PoissonExactBranchChiSquare)
{
    // Means below 64 use Knuth's exact product-of-uniforms algorithm;
    // the chi-square against the exact pmf must clear the standard
    // 99.9 % critical value.
    for (const double mean : {5.0, 40.0, 63.5}) {
        const ChiSquare c = poissonChiSquare(mean, 2024, 20000);
        EXPECT_LT(c.stat, chiSquareCritical(c.degreesOfFreedom))
            << "mean = " << mean;
    }
}

TEST(Statistical, PoissonApproxBranchChiSquare)
{
    // Means >= 64 switch to the continuity-corrected normal
    // approximation. Its skewness deficit is detectable at n = 20000
    // (seeded statistic ~2x df at the crossover), so the bound here is
    // 3x the degrees of freedom: loose enough for the approximation's
    // known bias, tight enough to catch a wrong mean, wrong variance,
    // or missing continuity correction (each of which inflates the
    // statistic by an order of magnitude).
    for (const double mean : {64.0, 90.0, 200.0}) {
        const ChiSquare c = poissonChiSquare(mean, 2024, 20000);
        EXPECT_LT(c.stat,
                  3.0 * static_cast<double>(c.degreesOfFreedom))
            << "mean = " << mean;
    }
}

TEST(Statistical, PoissonCrossoverMoments)
{
    // Straddle the crossover: both branches must deliver the Poisson
    // mean and variance to within sampling error (4 sigma).
    for (const double mean : {63.5, 64.5}) {
        Rng rng(31415);
        const size_t n = 50000;
        double sum = 0.0;
        double sumSq = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double x =
                static_cast<double>(sim::poissonSample(rng, mean));
            sum += x;
            sumSq += x * x;
        }
        const double nd = static_cast<double>(n);
        const double sampleMean = sum / nd;
        const double sampleVar =
            (sumSq - nd * sampleMean * sampleMean) / (nd - 1.0);
        // SE(mean) = sqrt(mean/n); SE(var) ~ var * sqrt(2/n).
        EXPECT_NEAR(sampleMean, mean, 4.0 * std::sqrt(mean / nd))
            << "mean = " << mean;
        EXPECT_NEAR(sampleVar, mean, 4.0 * mean * std::sqrt(2.0 / nd))
            << "mean = " << mean;
    }
}

TEST(Statistical, PoissonZeroMeanAndDeterminism)
{
    Rng rng(99);
    EXPECT_EQ(sim::poissonSample(rng, 0.0), 0u);

    // Seeded draws are pinned: a change to either branch of the
    // sampler shows up as an exact-value failure here before it shows
    // up as a distributional drift above.
    Rng golden(99);
    const uint64_t exact[] = {6, 4, 3, 5};
    for (const uint64_t want : exact)
        EXPECT_EQ(sim::poissonSample(golden, 5.0), want);
    const uint64_t approx[] = {521, 509, 507, 484};
    for (const uint64_t want : approx)
        EXPECT_EQ(sim::poissonSample(golden, 500.0), want);
}

// ---------------------------------------------------------------------
// Counter-based (Philox) trial streams: the engine's definitional
// randomness must pass the same goodness-of-fit battery as the default
// generator, plus independence across adjacent trial indices — the
// pattern the embarrassingly-parallel kernels rely on.
// ---------------------------------------------------------------------

TEST(Statistical, PhiloxUniformsMatchUniformCdf)
{
    Rng rng = Rng::trialStream(2026, 0);
    std::vector<double> samples(20000);
    rng.fillUniformOpenLow(samples.data(), samples.size());
    const double d = ksDistance(samples, [](double x) {
        return std::clamp(x, 0.0, 1.0);
    });
    EXPECT_LT(d, ksCritical(samples.size()));
}

TEST(Statistical, PhiloxWeibullSamplingMatchesAnalyticCdf)
{
    const wearout::Weibull device(10.0, 12.0);
    Rng rng = Rng::trialStream(2026, 1);
    const auto samples = device.sampleMany(rng, 20000);
    const double d =
        ksDistance(samples, [&](double x) { return device.cdf(x); });
    EXPECT_LT(d, ksCritical(samples.size()));
}

TEST(Statistical, PhiloxBathtubMixtureMatchesMixtureCdf)
{
    const wearout::Weibull main(10.0, 12.0);
    const wearout::BathtubModel mix =
        wearout::BathtubModel::withInfantMortality(main, 0.2);
    Rng rng = Rng::trialStream(2026, 2);
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        samples.push_back(mix.sample(rng));
    const double d =
        ksDistance(samples, [&](double x) { return mix.cdf(x); });
    EXPECT_LT(d, ksCritical(samples.size()));
}

TEST(Statistical, PhiloxPoissonChiSquare)
{
    // Re-run the exact-branch chi-square with a counter-based stream:
    // the sampler must be generator-agnostic.
    for (const double mean : {5.0, 40.0}) {
        Rng rng = Rng::trialStream(2024, 3);
        std::map<uint64_t, uint64_t> observed;
        const size_t n = 20000;
        for (size_t i = 0; i < n; ++i)
            ++observed[sim::poissonSample(rng, mean)];
        // Reuse the pooled chi-square machinery by replaying the same
        // stream through it (identical draws, identical pmf bins).
        double stat = 0.0;
        size_t bins = 0;
        double expAcc = 0.0, obsAcc = 0.0;
        const double nd = static_cast<double>(n);
        const auto kMax =
            static_cast<uint64_t>(mean + 12.0 * std::sqrt(mean) + 20.0);
        for (uint64_t k = 0; k <= kMax; ++k) {
            expAcc += nd * poissonPmf(k, mean);
            const auto it = observed.find(k);
            obsAcc += it == observed.end()
                          ? 0.0
                          : static_cast<double>(it->second);
            if (expAcc >= 5.0) {
                const double diff = obsAcc - expAcc;
                stat += diff * diff / expAcc;
                ++bins;
                expAcc = obsAcc = 0.0;
            }
        }
        EXPECT_LT(stat, chiSquareCritical(bins - 1)) << "mean = " << mean;
    }
}

TEST(Statistical, PhiloxAdjacentStreamsIndependentChiSquare)
{
    // 64 adjacent trial streams under one master seed. For each pair of
    // neighbouring streams (t, t+1), bin the joint draw (u_t[i],
    // u_{t+1}[i]) into an 8x8 grid; under independence every cell is
    // equally likely. Counter-layout bugs (trial bits aliasing block
    // bits, lost key mixing) correlate neighbours and light this up.
    constexpr size_t kStreams = 64;
    constexpr size_t kDraws = 2048;
    constexpr size_t kGrid = 8;
    std::vector<std::vector<double>> u(kStreams,
                                       std::vector<double>(kDraws));
    for (size_t t = 0; t < kStreams; ++t) {
        Rng rng = Rng::trialStream(31337, t);
        rng.fillUniformOpenLow(u[t].data(), kDraws);
    }
    std::array<uint64_t, kGrid * kGrid> cells{};
    for (size_t t = 0; t + 1 < kStreams; ++t) {
        for (size_t i = 0; i < kDraws; ++i) {
            const auto a = std::min(
                kGrid - 1, static_cast<size_t>(u[t][i] * kGrid));
            const auto b = std::min(
                kGrid - 1, static_cast<size_t>(u[t + 1][i] * kGrid));
            ++cells[a * kGrid + b];
        }
    }
    const double total =
        static_cast<double>((kStreams - 1) * kDraws);
    const double expect = total / static_cast<double>(kGrid * kGrid);
    double stat = 0.0;
    for (const uint64_t c : cells) {
        const double diff = static_cast<double>(c) - expect;
        stat += diff * diff / expect;
    }
    EXPECT_LT(stat, chiSquareCritical(kGrid * kGrid - 1));
}

} // namespace
} // namespace lemons
