/**
 * @file
 * Randomized cross-module round-trip fuzzing: hundreds of random
 * configurations and payloads through every coding/crypto substrate,
 * asserting the invariants that the architectures rely on. Seeds are
 * fixed, so failures are reproducible.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "crypto/hmac.h"
#include "crypto/otp.h"
#include "crypto/sha256.h"
#include "ir/graph.h"
#include "ir/lower.h"
#include "lint/spec_file.h"
#include "rs/classic_rs.h"
#include "rs/reed_solomon.h"
#include "shamir/shamir.h"
#include "shamir/shamir16.h"
#include "util/rng.h"
#include "verify/passes.h"

namespace lemons {
namespace {

std::vector<uint8_t>
randomBytes(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

TEST(Fuzz, ShamirRandomConfigurations)
{
    Rng rng(0xf00d);
    for (int trial = 0; trial < 300; ++trial) {
        const size_t n = 1 + static_cast<size_t>(rng.nextBelow(255));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(n));
        const size_t len = static_cast<size_t>(rng.nextBelow(80));
        const shamir::Scheme scheme(k, n);
        const auto secret = randomBytes(rng, len);
        auto shares = scheme.split(secret, rng);
        // Shuffle and keep a random superset of k shares.
        for (size_t i = shares.size(); i > 1; --i)
            std::swap(shares[i - 1],
                      shares[rng.nextBelow(i)]);
        const size_t keep =
            k + static_cast<size_t>(rng.nextBelow(n - k + 1));
        shares.resize(keep);
        const auto recovered = scheme.combine(shares);
        ASSERT_TRUE(recovered.has_value()) << "trial " << trial;
        ASSERT_EQ(*recovered, secret) << "trial " << trial;
    }
}

TEST(Fuzz, WideShamirRandomConfigurations)
{
    Rng rng(0xf00e);
    for (int trial = 0; trial < 60; ++trial) {
        const size_t n = 2 + static_cast<size_t>(rng.nextBelow(2000));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(
                                 std::min<size_t>(n, 64)));
        const size_t len = static_cast<size_t>(rng.nextBelow(48));
        const shamir::WideScheme scheme(k, n);
        const auto secret = randomBytes(rng, len);
        auto shares = scheme.split(secret, rng);
        for (size_t i = shares.size(); i > 1; --i)
            std::swap(shares[i - 1], shares[rng.nextBelow(i)]);
        shares.resize(k);
        const auto recovered = scheme.combine(shares, len);
        ASSERT_TRUE(recovered.has_value()) << "trial " << trial;
        ASSERT_EQ(*recovered, secret) << "trial " << trial;
    }
}

TEST(Fuzz, RsErasureRandomConfigurations)
{
    Rng rng(0xf00f);
    for (int trial = 0; trial < 300; ++trial) {
        const size_t n = 1 + static_cast<size_t>(rng.nextBelow(255));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(n));
        const size_t len = static_cast<size_t>(rng.nextBelow(64));
        const rs::RsCode code(k, n);
        const auto message = randomBytes(rng, len);
        auto shares = code.encode(message);
        for (size_t i = shares.size(); i > 1; --i)
            std::swap(shares[i - 1], shares[rng.nextBelow(i)]);
        shares.resize(k);
        const auto decoded = code.decode(shares, len);
        ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
        ASSERT_EQ(*decoded, message) << "trial " << trial;
    }
}

TEST(Fuzz, ClassicRsRandomErrorLoads)
{
    Rng rng(0xf010);
    for (int trial = 0; trial < 120; ++trial) {
        const size_t n = 4 + static_cast<size_t>(rng.nextBelow(252));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(n - 1));
        const rs::ClassicRsCodec codec(n, k);
        const auto message = randomBytes(rng, k);
        auto word = codec.encode(message);
        // Random split of the correction budget between errors and
        // erasures: 2e + s <= n - k.
        const size_t parity = codec.parity();
        const size_t errors =
            static_cast<size_t>(rng.nextBelow(parity / 2 + 1));
        const size_t erasures = static_cast<size_t>(
            rng.nextBelow(parity - 2 * errors + 1));
        std::set<size_t> touched;
        while (touched.size() < errors + erasures)
            touched.insert(static_cast<size_t>(rng.nextBelow(n)));
        std::vector<size_t> erasurePositions;
        size_t assigned = 0;
        for (size_t pos : touched) {
            word[pos] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
            if (assigned++ < erasures)
                erasurePositions.push_back(pos);
        }
        const auto decoded = codec.decode(word, erasurePositions);
        ASSERT_TRUE(decoded.has_value())
            << "trial " << trial << " n=" << n << " k=" << k
            << " e=" << errors << " s=" << erasures;
        ASSERT_EQ(decoded->message, message) << "trial " << trial;
    }
}

TEST(Fuzz, OtpRoundTripsAnyLength)
{
    Rng rng(0xf011);
    for (int trial = 0; trial < 500; ++trial) {
        const size_t len = static_cast<size_t>(rng.nextBelow(512));
        const auto message = randomBytes(rng, len);
        const auto pad = crypto::generatePad(
            rng, len + static_cast<size_t>(rng.nextBelow(32)));
        ASSERT_EQ(crypto::otpApply(crypto::otpApply(message, pad), pad),
                  message)
            << "trial " << trial;
    }
}

TEST(Fuzz, Sha256IncrementalSplitsAgree)
{
    Rng rng(0xf012);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t len = static_cast<size_t>(rng.nextBelow(600));
        const auto message = randomBytes(rng, len);
        const auto oneShot = crypto::sha256(message);
        crypto::Sha256 incremental;
        size_t offset = 0;
        while (offset < len) {
            const size_t chunk = 1 + static_cast<size_t>(rng.nextBelow(
                                         len - offset));
            incremental.update(message.data() + offset, chunk);
            offset += chunk;
        }
        ASSERT_EQ(incremental.finalize(), oneShot) << "trial " << trial;
    }
}

TEST(Fuzz, HkdfLengthsAndPrefixes)
{
    Rng rng(0xf013);
    for (int trial = 0; trial < 200; ++trial) {
        const auto ikm = randomBytes(
            rng, 1 + static_cast<size_t>(rng.nextBelow(64)));
        const auto salt =
            randomBytes(rng, static_cast<size_t>(rng.nextBelow(64)));
        const size_t len =
            1 + static_cast<size_t>(rng.nextBelow(200));
        const auto longKey = crypto::deriveKey(ikm, salt, "fuzz", len);
        ASSERT_EQ(longKey.size(), len);
        // Prefix-consistency: a shorter request is a prefix.
        const size_t shorter =
            1 + static_cast<size_t>(rng.nextBelow(len));
        const auto shortKey =
            crypto::deriveKey(ikm, salt, "fuzz", shorter);
        ASSERT_TRUE(std::equal(shortKey.begin(), shortKey.end(),
                               longKey.begin()))
            << "trial " << trial;
    }
}

TEST(Fuzz, SpecVerifyPipelineNeverThrows)
{
    // Random .lemons text through the whole static pipeline: parse ->
    // lower -> all verifier passes. Nothing here may throw or crash —
    // malformed input becomes L-diagnostics, degenerate-but-parseable
    // input becomes V901 or vacuous brackets. Numeric values come from
    // a bounded pool so the design solver's exhaustive-in-t search
    // stays fast even when a random alpha lands in [design].
    static const char *const sections[] = {
        "design", "structure", "shares",   "otp",     "fault",
        "mway",   "workload",  "mixture",  "nonsense"};
    static const char *const keys[] = {
        "alpha",          "beta",
        "lab",            "k_fraction",
        "n",              "k",
        "kind",           "copies",
        "access_bound",   "min_reliability",
        "max_residual",   "height",
        "threshold",      "field_bits",
        "unguarded",      "stuck_closed_rate",
        "glitch_rate",    "mean_per_day",
        "burst_probability", "burst_multiplier",
        "budget",         "horizon_days",
        "infant_fraction", "infant_alpha",
        "infant_beta",    "main_alpha",
        "main_beta",      "m",
        "frobnicate"};
    static const char *const values[] = {
        "0",    "1",   "4",      "8",   "12",  "16",  "40",
        "105",  "1000", "0.01",  "0.1", "0.5", "0.99", "1.5",
        "10",   "-3",  "nan",    "banana", "series", "parallel"};

    Rng rng(0xf014);
    for (int trial = 0; trial < 120; ++trial) {
        std::string text;
        const uint64_t sectionCount = rng.nextBelow(4);
        for (uint64_t s = 0; s < sectionCount; ++s) {
            text += "[";
            text += sections[rng.nextBelow(std::size(sections))];
            text += "]\n";
            const uint64_t lineCount = rng.nextBelow(8);
            for (uint64_t line = 0; line < lineCount; ++line) {
                text += keys[rng.nextBelow(std::size(keys))];
                text += " = ";
                text += values[rng.nextBelow(std::size(values))];
                text += "\n";
            }
        }
        lint::Report parseReport;
        const lint::ParsedSpec spec =
            lint::parseSpec(text, "fuzz", parseReport);
        lint::Report lowerReport;
        const std::vector<ir::Graph> graphs =
            ir::lowerSpec(spec, lowerReport);
        for (const ir::Graph &graph : graphs) {
            const lint::Report verdict = verify::verifyGraph(graph);
            ASSERT_LT(verdict.diagnostics().size(), 1000u)
                << "trial " << trial << "\n"
                << text;
        }
    }
}

TEST(Fuzz, RandomGraphsVerifyWithoutCrashing)
{
    // Hand-built random graphs, including cyclic ones, degenerate
    // devices, and obligations pointing at arbitrary nodes: every
    // verifier pass must stay total.
    static const ir::NodeKind kinds[] = {
        ir::NodeKind::SecretSource, ir::NodeKind::Device,
        ir::NodeKind::Series,       ir::NodeKind::Parallel,
        ir::NodeKind::Replicate,    ir::NodeKind::Store,
        ir::NodeKind::Sink};
    static const double alphas[] = {0.0, 1.0, 10.0};
    static const double betas[] = {0.0, 0.8, 1.0, 12.0};
    static const double accesses[] = {-1.0, 0.0, 1.0, 5.0, 13.0};
    static const double levels[] = {0.0, 1e-6, 0.5, 0.99, 1.0, 100.0};

    Rng rng(0xf015);
    for (int trial = 0; trial < 200; ++trial) {
        ir::Graph graph("fuzz");
        const uint64_t nodeCount = 1 + rng.nextBelow(8);
        for (uint64_t i = 0; i < nodeCount; ++i) {
            ir::Node node;
            node.kind = kinds[rng.nextBelow(std::size(kinds))];
            node.label = "n" + std::to_string(i);
            node.device = {alphas[rng.nextBelow(std::size(alphas))],
                           betas[rng.nextBelow(std::size(betas))]};
            node.n = rng.nextBelow(300);
            node.k = rng.nextBelow(300);
            node.count = rng.nextBelow(50);
            node.shareThreshold = rng.nextBelow(20);
            graph.add(std::move(node));
        }
        for (uint64_t from = 0; from + 1 < nodeCount; ++from)
            for (uint64_t to = from + 1; to < nodeCount; ++to)
                if (rng.nextBelow(3) == 0)
                    graph.connect(static_cast<ir::NodeId>(from),
                                  static_cast<ir::NodeId>(to));
        if (nodeCount > 1 && rng.nextBelow(5) == 0) {
            // Occasional back edge: the passes must reject the cycle
            // (V901) instead of recursing forever.
            const auto to = static_cast<ir::NodeId>(rng.nextBelow(
                nodeCount - 1));
            const auto from = static_cast<ir::NodeId>(
                to + 1 + rng.nextBelow(nodeCount - to - 1));
            graph.connect(from, to);
        }
        const uint64_t obligationCount = rng.nextBelow(4);
        for (uint64_t i = 0; i < obligationCount; ++i) {
            ir::Obligation obligation;
            obligation.kind = static_cast<ir::Obligation::Kind>(
                rng.nextBelow(4));
            obligation.target =
                static_cast<ir::NodeId>(rng.nextBelow(nodeCount));
            obligation.access =
                accesses[rng.nextBelow(std::size(accesses))];
            obligation.floor = levels[rng.nextBelow(std::size(levels))];
            obligation.ceiling = levels[rng.nextBelow(std::size(levels))];
            obligation.hasFloor = rng.nextBelow(2) == 0;
            obligation.hasCeiling = rng.nextBelow(2) == 0;
            graph.addObligation(obligation);
        }
        const lint::Report report = verify::verifyGraph(graph);
        ASSERT_LT(report.diagnostics().size(), 1000u)
            << "trial " << trial;
    }
}

TEST(Fuzz, SpecAnalyzePipelineNeverThrows)
{
    // Random .lemons text through the wear-budget analyzer: parse ->
    // lower -> capacity/demand dataflow -> A-code passes. The pool
    // leans on the analyzer's own sections and keys ([fleet]/[cohort]
    // tolerances, workload budgets, guessing ceilings) so the demand
    // and adversary paths actually execute; malformed values must
    // become top brackets or diagnostics, never exceptions.
    static const char *const sections[] = {
        "design", "structure", "shares",  "otp",    "workload",
        "mixture", "fleet",    "cohort",  "mway",   "nonsense"};
    static const char *const keys[] = {
        "alpha",            "beta",
        "lab",              "k_fraction",
        "n",                "k",
        "kind",             "field_bits",
        "unguarded",        "mean_per_day",
        "burst_probability", "burst_multiplier",
        "budget",           "horizon_days",
        "infant_fraction",  "infant_alpha",
        "infant_beta",      "main_alpha",
        "main_beta",        "devices",
        "seed",             "premature_days",
        "premature_tolerance", "weight",
        "stagger_days",     "access_bound",
        "reprovision_day",  "reprovision_scale",
        "guess_space",      "guess_success_ceiling",
        "min_reliability",  "max_residual_reliability",
        "frobnicate"};
    static const char *const values[] = {
        "0",    "1",    "4",     "12",    "100",   "365",  "1825",
        "91250", "1e5", "0.01",  "0.1",   "0.5",   "0.99", "1.5",
        "-3",   "nan",  "inf",   "banana", "parallel", "1e300"};

    Rng rng(0xf016);
    for (int trial = 0; trial < 120; ++trial) {
        std::string text;
        const uint64_t sectionCount = rng.nextBelow(5);
        for (uint64_t s = 0; s < sectionCount; ++s) {
            text += "[";
            text += sections[rng.nextBelow(std::size(sections))];
            text += "]\n";
            const uint64_t lineCount = rng.nextBelow(8);
            for (uint64_t line = 0; line < lineCount; ++line) {
                text += keys[rng.nextBelow(std::size(keys))];
                text += " = ";
                text += values[rng.nextBelow(std::size(values))];
                text += "\n";
            }
        }
        const analysis::FileAnalysis analyzed =
            analysis::analyzeSpecText(text, "fuzz");
        // Every finding the analyzer emits is from its own catalog.
        for (const lint::Diagnostic &d :
             analyzed.findings.diagnostics())
            ASSERT_EQ(d.id()[0], 'A') << "trial " << trial << "\n"
                                      << text;
    }
}

TEST(Fuzz, RandomGraphsPropagateSoundBrackets)
{
    // Hand-built random graphs, including cyclic ones and degenerate
    // node parameters, through the budget dataflow: the pass must
    // stay total and every bracket it emits must be well-formed
    // (lo <= hi, lo >= 0), with cycles collapsing to the vacuous
    // all-top result.
    static const ir::NodeKind kinds[] = {
        ir::NodeKind::SecretSource, ir::NodeKind::Device,
        ir::NodeKind::Series,       ir::NodeKind::Parallel,
        ir::NodeKind::Replicate,    ir::NodeKind::Store,
        ir::NodeKind::Sink};
    static const double alphas[] = {0.0, 1.0, 10.0};
    static const double betas[] = {0.0, 0.8, 1.0, 12.0};
    static const double demands[] = {0.0, 1.0, 400.0, 1e9};

    Rng rng(0xf017);
    for (int trial = 0; trial < 200; ++trial) {
        ir::Graph graph("fuzz");
        const uint64_t nodeCount = 1 + rng.nextBelow(8);
        for (uint64_t i = 0; i < nodeCount; ++i) {
            ir::Node node;
            node.kind = kinds[rng.nextBelow(std::size(kinds))];
            node.label = "n" + std::to_string(i);
            node.device = {alphas[rng.nextBelow(std::size(alphas))],
                           betas[rng.nextBelow(std::size(betas))]};
            node.n = rng.nextBelow(300);
            node.k = rng.nextBelow(300);
            node.count = rng.nextBelow(50);
            graph.add(std::move(node));
        }
        for (uint64_t from = 0; from + 1 < nodeCount; ++from)
            for (uint64_t to = from + 1; to < nodeCount; ++to)
                if (rng.nextBelow(3) == 0)
                    graph.connect(static_cast<ir::NodeId>(from),
                                  static_cast<ir::NodeId>(to));
        if (nodeCount > 1 && rng.nextBelow(5) == 0) {
            // Occasional back edge; it only closes a cycle when a
            // forward path already links the endpoints, so the ground
            // truth comes from topoOrder below.
            const auto to = static_cast<ir::NodeId>(rng.nextBelow(
                nodeCount - 1));
            const auto from = static_cast<ir::NodeId>(
                to + 1 + rng.nextBelow(nodeCount - to - 1));
            graph.connect(from, to);
        }
        const bool cyclic = graph.topoOrder().empty();
        std::optional<analysis::AccessBracket> demand;
        if (rng.nextBelow(2) == 0)
            demand = analysis::AccessBracket::point(
                demands[rng.nextBelow(std::size(demands))]);

        const analysis::GraphBudget budget =
            analysis::propagateBudgets(graph, demand);
        if (cyclic) {
            ASSERT_TRUE(budget.vacuous) << "trial " << trial;
            ASSERT_TRUE(budget.systemCapacity.isTop());
        }
        ASSERT_EQ(budget.nodes.size(), graph.size());
        for (const analysis::NodeBudget &node : budget.nodes) {
            ASSERT_GE(node.capacity.lo, 0.0) << "trial " << trial;
            ASSERT_LE(node.capacity.lo, node.capacity.hi)
                << "trial " << trial;
            ASSERT_GE(node.demand.lo, 0.0) << "trial " << trial;
            ASSERT_LE(node.demand.lo, node.demand.hi)
                << "trial " << trial;
        }
    }
}

} // namespace
} // namespace lemons
