/**
 * @file
 * Randomized cross-module round-trip fuzzing: hundreds of random
 * configurations and payloads through every coding/crypto substrate,
 * asserting the invariants that the architectures rely on. Seeds are
 * fixed, so failures are reproducible.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "crypto/hmac.h"
#include "crypto/otp.h"
#include "crypto/sha256.h"
#include "rs/classic_rs.h"
#include "rs/reed_solomon.h"
#include "shamir/shamir.h"
#include "shamir/shamir16.h"
#include "util/rng.h"

namespace lemons {
namespace {

std::vector<uint8_t>
randomBytes(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

TEST(Fuzz, ShamirRandomConfigurations)
{
    Rng rng(0xf00d);
    for (int trial = 0; trial < 300; ++trial) {
        const size_t n = 1 + static_cast<size_t>(rng.nextBelow(255));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(n));
        const size_t len = static_cast<size_t>(rng.nextBelow(80));
        const shamir::Scheme scheme(k, n);
        const auto secret = randomBytes(rng, len);
        auto shares = scheme.split(secret, rng);
        // Shuffle and keep a random superset of k shares.
        for (size_t i = shares.size(); i > 1; --i)
            std::swap(shares[i - 1],
                      shares[rng.nextBelow(i)]);
        const size_t keep =
            k + static_cast<size_t>(rng.nextBelow(n - k + 1));
        shares.resize(keep);
        const auto recovered = scheme.combine(shares);
        ASSERT_TRUE(recovered.has_value()) << "trial " << trial;
        ASSERT_EQ(*recovered, secret) << "trial " << trial;
    }
}

TEST(Fuzz, WideShamirRandomConfigurations)
{
    Rng rng(0xf00e);
    for (int trial = 0; trial < 60; ++trial) {
        const size_t n = 2 + static_cast<size_t>(rng.nextBelow(2000));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(
                                 std::min<size_t>(n, 64)));
        const size_t len = static_cast<size_t>(rng.nextBelow(48));
        const shamir::WideScheme scheme(k, n);
        const auto secret = randomBytes(rng, len);
        auto shares = scheme.split(secret, rng);
        for (size_t i = shares.size(); i > 1; --i)
            std::swap(shares[i - 1], shares[rng.nextBelow(i)]);
        shares.resize(k);
        const auto recovered = scheme.combine(shares, len);
        ASSERT_TRUE(recovered.has_value()) << "trial " << trial;
        ASSERT_EQ(*recovered, secret) << "trial " << trial;
    }
}

TEST(Fuzz, RsErasureRandomConfigurations)
{
    Rng rng(0xf00f);
    for (int trial = 0; trial < 300; ++trial) {
        const size_t n = 1 + static_cast<size_t>(rng.nextBelow(255));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(n));
        const size_t len = static_cast<size_t>(rng.nextBelow(64));
        const rs::RsCode code(k, n);
        const auto message = randomBytes(rng, len);
        auto shares = code.encode(message);
        for (size_t i = shares.size(); i > 1; --i)
            std::swap(shares[i - 1], shares[rng.nextBelow(i)]);
        shares.resize(k);
        const auto decoded = code.decode(shares, len);
        ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
        ASSERT_EQ(*decoded, message) << "trial " << trial;
    }
}

TEST(Fuzz, ClassicRsRandomErrorLoads)
{
    Rng rng(0xf010);
    for (int trial = 0; trial < 120; ++trial) {
        const size_t n = 4 + static_cast<size_t>(rng.nextBelow(252));
        const size_t k = 1 + static_cast<size_t>(rng.nextBelow(n - 1));
        const rs::ClassicRsCodec codec(n, k);
        const auto message = randomBytes(rng, k);
        auto word = codec.encode(message);
        // Random split of the correction budget between errors and
        // erasures: 2e + s <= n - k.
        const size_t parity = codec.parity();
        const size_t errors =
            static_cast<size_t>(rng.nextBelow(parity / 2 + 1));
        const size_t erasures = static_cast<size_t>(
            rng.nextBelow(parity - 2 * errors + 1));
        std::set<size_t> touched;
        while (touched.size() < errors + erasures)
            touched.insert(static_cast<size_t>(rng.nextBelow(n)));
        std::vector<size_t> erasurePositions;
        size_t assigned = 0;
        for (size_t pos : touched) {
            word[pos] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
            if (assigned++ < erasures)
                erasurePositions.push_back(pos);
        }
        const auto decoded = codec.decode(word, erasurePositions);
        ASSERT_TRUE(decoded.has_value())
            << "trial " << trial << " n=" << n << " k=" << k
            << " e=" << errors << " s=" << erasures;
        ASSERT_EQ(decoded->message, message) << "trial " << trial;
    }
}

TEST(Fuzz, OtpRoundTripsAnyLength)
{
    Rng rng(0xf011);
    for (int trial = 0; trial < 500; ++trial) {
        const size_t len = static_cast<size_t>(rng.nextBelow(512));
        const auto message = randomBytes(rng, len);
        const auto pad = crypto::generatePad(
            rng, len + static_cast<size_t>(rng.nextBelow(32)));
        ASSERT_EQ(crypto::otpApply(crypto::otpApply(message, pad), pad),
                  message)
            << "trial " << trial;
    }
}

TEST(Fuzz, Sha256IncrementalSplitsAgree)
{
    Rng rng(0xf012);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t len = static_cast<size_t>(rng.nextBelow(600));
        const auto message = randomBytes(rng, len);
        const auto oneShot = crypto::sha256(message);
        crypto::Sha256 incremental;
        size_t offset = 0;
        while (offset < len) {
            const size_t chunk = 1 + static_cast<size_t>(rng.nextBelow(
                                         len - offset));
            incremental.update(message.data() + offset, chunk);
            offset += chunk;
        }
        ASSERT_EQ(incremental.finalize(), oneShot) << "trial " << trial;
    }
}

TEST(Fuzz, HkdfLengthsAndPrefixes)
{
    Rng rng(0xf013);
    for (int trial = 0; trial < 200; ++trial) {
        const auto ikm = randomBytes(
            rng, 1 + static_cast<size_t>(rng.nextBelow(64)));
        const auto salt =
            randomBytes(rng, static_cast<size_t>(rng.nextBelow(64)));
        const size_t len =
            1 + static_cast<size_t>(rng.nextBelow(200));
        const auto longKey = crypto::deriveKey(ikm, salt, "fuzz", len);
        ASSERT_EQ(longKey.size(), len);
        // Prefix-consistency: a shorter request is a prefix.
        const size_t shorter =
            1 + static_cast<size_t>(rng.nextBelow(len));
        const auto shortKey =
            crypto::deriveKey(ikm, salt, "fuzz", shorter);
        ASSERT_TRUE(std::equal(shortKey.begin(), shortKey.end(),
                               longKey.begin()))
            << "trial " << trial;
    }
}

} // namespace
} // namespace lemons
