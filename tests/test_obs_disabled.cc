/**
 * @file
 * lemons::obs with the instrumentation compiled out.
 *
 * This translation unit is built with LEMONS_OBS_DISABLED defined (see
 * tests/CMakeLists.txt), so every LEMONS_OBS_* macro must expand to
 * nothing: no registration in the global registry, and no measurable
 * cost on an instrumented loop. The classes themselves stay available
 * regardless — only the macro layer disappears.
 */

#ifndef LEMONS_OBS_DISABLED
#error "test_obs_disabled.cc must be compiled with LEMONS_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace lemons::obs {
namespace {

TEST(ObsDisabled, MacrosRegisterNothing)
{
    LEMONS_OBS_COUNT("test.obs.disabled.count", 17);
    LEMONS_OBS_INCREMENT("test.obs.disabled.increment");
    {
        LEMONS_OBS_SCOPED_TIMER("test.obs.disabled.timer");
    }
    EXPECT_FALSE(Registry::global().contains("test.obs.disabled.count"));
    EXPECT_FALSE(
        Registry::global().contains("test.obs.disabled.increment"));
    EXPECT_FALSE(Registry::global().contains("test.obs.disabled.timer"));
}

TEST(ObsDisabled, ClassesRemainUsable)
{
    // Disabling the macros must not take the library away from code
    // that instruments explicitly.
    Counter c;
    c.add(3);
    EXPECT_EQ(c.get(), 3u);
    Registry registry;
    registry.timer("manual").record(10);
    EXPECT_TRUE(registry.contains("manual"));
}

/** xorshift* step: cheap, unoptimizable-away integer work. */
uint64_t
step(uint64_t x)
{
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    return x * 0x2545F4914F6CDD1Dull;
}

// Each call takes a distinct seed so the compiler cannot common the
// identical pure computations across repetitions (which would leave
// nothing to time).
[[gnu::noinline]] uint64_t
plainLoop(uint64_t iterations, uint64_t seed)
{
    uint64_t acc = seed;
    for (uint64_t i = 0; i < iterations; ++i)
        acc = step(acc);
    return acc;
}

[[gnu::noinline]] uint64_t
instrumentedLoop(uint64_t iterations, uint64_t seed)
{
    uint64_t acc = seed;
    for (uint64_t i = 0; i < iterations; ++i) {
        LEMONS_OBS_INCREMENT("test.obs.disabled.hot");
        acc = step(acc);
    }
    return acc;
}

TEST(ObsDisabled, InstrumentedLoopCostsNothing)
{
    // With the macro compiled to static_cast<void>(0) the two loops
    // are identical code, so their minimum-of-several timings must
    // agree closely. The minimum over repetitions is used because it
    // is the noise-robust statistic on a shared machine. The bound is
    // 5 %, not the 2 % the instrumentation promises: the two loops
    // live at different addresses, and code placement alone skews
    // identical tight loops by a few percent — the true "macro costs
    // nothing" proof is MacrosRegisterNothing plus this bound.
    constexpr uint64_t kIterations = 20000000;
    constexpr int kReps = 7;
    using Clock = std::chrono::steady_clock;

    // Warm up both paths once so neither pays first-touch costs.
    uint64_t sink =
        plainLoop(kIterations, 1001) ^ instrumentedLoop(kIterations, 1002);

    // Alternate measurement order between repetitions so slow drift
    // (frequency scaling, a neighbour waking up) cannot systematically
    // favour whichever loop runs first.
    std::vector<double> plain;
    std::vector<double> instrumented;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto seed = static_cast<uint64_t>(2 * rep + 1);
        const bool plainFirst = rep % 2 == 0;
        auto t0 = Clock::now();
        sink ^= plainFirst ? plainLoop(kIterations, seed)
                           : instrumentedLoop(kIterations, seed);
        auto t1 = Clock::now();
        sink ^= plainFirst ? instrumentedLoop(kIterations, seed + 1)
                           : plainLoop(kIterations, seed + 1);
        auto t2 = Clock::now();
        const auto first = std::chrono::duration<double>(t1 - t0).count();
        const auto second =
            std::chrono::duration<double>(t2 - t1).count();
        plain.push_back(plainFirst ? first : second);
        instrumented.push_back(plainFirst ? second : first);
    }
    EXPECT_NE(sink, 0u); // keep the loops observable

    const double plainMin =
        *std::min_element(plain.begin(), plain.end());
    const double instrumentedMin =
        *std::min_element(instrumented.begin(), instrumented.end());
    EXPECT_LT(instrumentedMin, plainMin * 1.05)
        << "plain " << plainMin << " s vs instrumented "
        << instrumentedMin << " s";

    // And the hot-loop name must still be absent afterwards.
    EXPECT_FALSE(Registry::global().contains("test.obs.disabled.hot"));
}

} // namespace
} // namespace lemons::obs
