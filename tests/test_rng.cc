/**
 * @file
 * Unit tests for the xoshiro256** generator and stream splitting.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace lemons {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedStillProducesEntropy)
{
    Rng rng(0);
    std::set<uint64_t> values;
    for (int i = 0; i < 100; ++i)
        values.insert(rng.next());
    EXPECT_EQ(values.size(), 100u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleOpenLowNeverZero)
{
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.nextDoubleOpenLow();
        EXPECT_GT(x, 0.0);
        EXPECT_LE(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / trials, 0.5, 0.005);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneAlwaysZero)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowRejectsZeroBound)
{
    Rng rng(13);
    EXPECT_THROW(rng.nextBelow(0), std::invalid_argument);
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(17);
    const uint64_t buckets = 8;
    std::vector<int> counts(buckets, 0);
    const int trials = 80000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.nextBelow(buckets)];
    for (uint64_t b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], trials / 8, trials / 80)
            << "bucket " << b;
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBernoulli(0.0));
        EXPECT_TRUE(rng.nextBernoulli(1.0));
        EXPECT_FALSE(rng.nextBernoulli(-0.5));
        EXPECT_TRUE(rng.nextBernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(23);
    const int trials = 100000;
    int hits = 0;
    for (int i = 0; i < trials; ++i)
        if (rng.nextBernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(29);
    const int trials = 200000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < trials; ++i) {
        const double x = rng.nextGaussian();
        sum += x;
        sumSq += x * x;
    }
    const double mean = sum / trials;
    const double var = sumSq / trials - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, SplitIsDeterministic)
{
    const Rng parent(31);
    Rng a = parent.split(5);
    Rng b = parent.split(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitChildrenAreIndependentStreams)
{
    const Rng parent(37);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsOrderIndependent)
{
    const Rng parent(41);
    // Derive child 3 before and after deriving other children; the
    // stream must be identical either way.
    Rng early = parent.split(3);
    (void)parent.split(0);
    (void)parent.split(1);
    Rng late = parent.split(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(early.next(), late.next());
}

TEST(Rng, ManySplitSeedsDistinct)
{
    const Rng parent(43);
    std::set<uint64_t> firsts;
    for (uint64_t i = 0; i < 4096; ++i)
        firsts.insert(parent.split(i).next());
    EXPECT_EQ(firsts.size(), 4096u);
}

} // namespace
} // namespace lemons
