/**
 * @file
 * Unit tests for the generators: xoshiro256** stream splitting, and the
 * Philox4x32-10 counter-based trial streams (known-answer vectors from
 * the Random123 distribution, key-derivation goldens, bulk-fill and
 * fused-reduction equivalence, SIMD-vs-scalar bit-identity).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "util/philox.h"
#include "util/rng.h"
#include "util/simd.h"

namespace lemons {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedStillProducesEntropy)
{
    Rng rng(0);
    std::set<uint64_t> values;
    for (int i = 0; i < 100; ++i)
        values.insert(rng.next());
    EXPECT_EQ(values.size(), 100u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleOpenLowNeverZero)
{
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.nextDoubleOpenLow();
        EXPECT_GT(x, 0.0);
        EXPECT_LE(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / trials, 0.5, 0.005);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneAlwaysZero)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowRejectsZeroBound)
{
    Rng rng(13);
    EXPECT_THROW(rng.nextBelow(0), std::invalid_argument);
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(17);
    const uint64_t buckets = 8;
    std::vector<int> counts(buckets, 0);
    const int trials = 80000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.nextBelow(buckets)];
    for (uint64_t b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], trials / 8, trials / 80)
            << "bucket " << b;
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBernoulli(0.0));
        EXPECT_TRUE(rng.nextBernoulli(1.0));
        EXPECT_FALSE(rng.nextBernoulli(-0.5));
        EXPECT_TRUE(rng.nextBernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(23);
    const int trials = 100000;
    int hits = 0;
    for (int i = 0; i < trials; ++i)
        if (rng.nextBernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(29);
    const int trials = 200000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < trials; ++i) {
        const double x = rng.nextGaussian();
        sum += x;
        sumSq += x * x;
    }
    const double mean = sum / trials;
    const double var = sumSq / trials - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, SplitIsDeterministic)
{
    const Rng parent(31);
    Rng a = parent.split(5);
    Rng b = parent.split(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitChildrenAreIndependentStreams)
{
    const Rng parent(37);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsOrderIndependent)
{
    const Rng parent(41);
    // Derive child 3 before and after deriving other children; the
    // stream must be identical either way.
    Rng early = parent.split(3);
    (void)parent.split(0);
    (void)parent.split(1);
    Rng late = parent.split(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(early.next(), late.next());
}

TEST(Rng, ManySplitSeedsDistinct)
{
    const Rng parent(43);
    std::set<uint64_t> firsts;
    for (uint64_t i = 0; i < 4096; ++i)
        firsts.insert(parent.split(i).next());
    EXPECT_EQ(firsts.size(), 4096u);
}

// ---------------------------------------------------------------------
// Philox4x32-10 counter mode
// ---------------------------------------------------------------------

TEST(Philox, KnownAnswerZeroInput)
{
    // Random123 kat_vectors: philox4x32-10 of the all-zero counter and
    // key. Pins the round function, multipliers and Weyl constants.
    const philox::Counter out =
        philox::block({0u, 0u, 0u, 0u}, {0u, 0u});
    EXPECT_EQ(out[0], 0x6627e8d5u);
    EXPECT_EQ(out[1], 0xe169c58du);
    EXPECT_EQ(out[2], 0xbc57ac4cu);
    EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnesInput)
{
    const philox::Counter out = philox::block(
        {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
        {0xffffffffu, 0xffffffffu});
    EXPECT_EQ(out[0], 0x408f276du);
    EXPECT_EQ(out[1], 0x41c83b0eu);
    EXPECT_EQ(out[2], 0xa20bc7c6u);
    EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, KnownAnswerPiDigits)
{
    // Random123's "pi digits" vector: counter/key words drawn from the
    // hexadecimal expansion of pi.
    const philox::Counter out = philox::block(
        {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
        {0xa4093822u, 0x299f31d0u});
    EXPECT_EQ(out[0], 0xd16cfe09u);
    EXPECT_EQ(out[1], 0x94fdccebu);
    EXPECT_EQ(out[2], 0x5001e420u);
    EXPECT_EQ(out[3], 0x24126ea1u);
}

TEST(Philox, DeriveKeyGoldens)
{
    // Pin the SplitMix64 key derivation so a silent change to the
    // domain tag or the mixer re-keys every golden in the repo loudly
    // here, not quietly everywhere else.
    EXPECT_EQ(philox::deriveKey(0), 0xbb5d7b1f2ad3793eULL);
    EXPECT_EQ(philox::deriveKey(1), 0x1b3784e8f8ab5602ULL);
    EXPECT_EQ(philox::deriveKey(0x853c49e6748fea9bULL),
              0xf5080dccafd4dadaULL);
    EXPECT_EQ(philox::deriveKey(20170624), 0x17f4ee122d6ee341ULL);
}

TEST(Philox, CounterAndKeyWordLayout)
{
    const philox::Counter c =
        philox::makeCounter(0x1122334455667788ULL, 0xaabbccddeeff0011ULL);
    EXPECT_EQ(c[0], 0xeeff0011u); // block low
    EXPECT_EQ(c[1], 0xaabbccddu); // block high
    EXPECT_EQ(c[2], 0x55667788u); // trial low
    EXPECT_EQ(c[3], 0x11223344u); // trial high

    const philox::Key k = philox::keyWords(0x0123456789abcdefULL);
    EXPECT_EQ(k[0], 0x89abcdefu);
    EXPECT_EQ(k[1], 0x01234567u);
}

TEST(Philox, BlockDrawsPairWordsLowFirst)
{
    const philox::Counter out = {0x00000001u, 0x00000002u, 0x00000003u,
                                 0x00000004u};
    const std::array<uint64_t, 2> draws = philox::blockDraws(out);
    EXPECT_EQ(draws[0], 0x0000000200000001ULL);
    EXPECT_EQ(draws[1], 0x0000000400000003ULL);
}

TEST(Philox, TrialStreamMatchesRawBlocks)
{
    // The Rng facade must be a pure view over the raw Philox layout:
    // draw i of trial t is blockDraws(block(counter(t, i/2), key))[i%2].
    const uint64_t seed = 20170624;
    const philox::Key key = philox::keyWords(philox::deriveKey(seed));
    for (uint64_t trial : {uint64_t{0}, uint64_t{3}, uint64_t{1} << 40}) {
        Rng rng = Rng::trialStream(seed, trial);
        ASSERT_TRUE(rng.isCounterBased());
        for (uint64_t b = 0; b < 8; ++b) {
            const std::array<uint64_t, 2> draws = philox::blockDraws(
                philox::block(philox::makeCounter(trial, b), key));
            EXPECT_EQ(rng.next(), draws[0]);
            EXPECT_EQ(rng.next(), draws[1]);
        }
    }
}

TEST(Philox, FillRaw64MatchesPerBlockCalls)
{
    const philox::Key key = philox::keyWords(philox::deriveKey(7));
    constexpr size_t kBlocks = 37; // exercises X8, X4 and scalar tails
    uint64_t bulk[2 * kBlocks];
    philox::fillRaw64(key, 5, 11, bulk, kBlocks);
    for (size_t b = 0; b < kBlocks; ++b) {
        const std::array<uint64_t, 2> draws = philox::blockDraws(
            philox::block(philox::makeCounter(5, 11 + b), key));
        EXPECT_EQ(bulk[2 * b], draws[0]) << "block " << b;
        EXPECT_EQ(bulk[2 * b + 1], draws[1]) << "block " << b;
    }
}

TEST(Philox, FillUniformMatchesSequentialDraws)
{
    // Bulk fill must be bit-identical to sequential nextDoubleOpenLow()
    // and leave the generator in the identical state, for every count
    // and buffered-draw phase (an odd number of prior draws leaves the
    // second draw of a block pending).
    for (int pre = 0; pre < 3; ++pre) {
        for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{8},
                             size_t{17}, size_t{40}, size_t{70}}) {
            Rng bulk = Rng::trialStream(99, 4);
            Rng seq = Rng::trialStream(99, 4);
            for (int i = 0; i < pre; ++i)
                ASSERT_EQ(bulk.next(), seq.next());
            std::vector<double> filled(count);
            bulk.fillUniformOpenLow(filled.data(), count);
            for (size_t i = 0; i < count; ++i) {
                const double expect = seq.nextDoubleOpenLow();
                ASSERT_EQ(filled[i], expect)
                    << "pre=" << pre << " count=" << count << " i=" << i;
            }
            // Identical post-state: the next raw draws agree.
            for (int i = 0; i < 4; ++i)
                ASSERT_EQ(bulk.next(), seq.next());
        }
    }
}

TEST(Philox, MinMaxUniformMatchFillAndAdvanceIdentically)
{
    for (int pre = 0; pre < 2; ++pre) {
        for (size_t count : {size_t{1}, size_t{2}, size_t{5}, size_t{16},
                             size_t{40}, size_t{70}, size_t{129}}) {
            Rng fused = Rng::trialStream(1234, 9);
            Rng filled = Rng::trialStream(1234, 9);
            for (int i = 0; i < pre; ++i)
                ASSERT_EQ(fused.next(), filled.next());
            std::vector<double> u(count);
            filled.fillUniformOpenLow(u.data(), count);
            const double lo = fused.minUniformOpenLow(count);
            ASSERT_EQ(lo, *std::min_element(u.begin(), u.end()))
                << "pre=" << pre << " count=" << count;
            for (int i = 0; i < 4; ++i)
                ASSERT_EQ(fused.next(), filled.next());

            Rng fusedMax = Rng::trialStream(1234, 9);
            for (int i = 0; i < pre; ++i)
                (void)fusedMax.next();
            const double hi = fusedMax.maxUniformOpenLow(count);
            ASSERT_EQ(hi, *std::max_element(u.begin(), u.end()))
                << "pre=" << pre << " count=" << count;
        }
    }
}

TEST(Philox, MinMaxRejectZeroCount)
{
    Rng rng = Rng::trialStream(1, 0);
    EXPECT_THROW(rng.minUniformOpenLow(0), std::invalid_argument);
    EXPECT_THROW(rng.maxUniformOpenLow(0), std::invalid_argument);
}

TEST(Philox, AdjacentTrialStreamsAreDistinct)
{
    // 64 adjacent trials x 4096 draws: every 64-bit output distinct.
    // A counter-layout bug (e.g. trial bits colliding with block bits)
    // would repeat blocks across streams and fail immediately.
    std::unordered_set<uint64_t> seen;
    seen.reserve(64 * 4096);
    for (uint64_t trial = 0; trial < 64; ++trial) {
        Rng rng = Rng::trialStream(42, trial);
        for (int i = 0; i < 4096; ++i)
            seen.insert(rng.next());
    }
    EXPECT_EQ(seen.size(), 64u * 4096u);
}

TEST(Philox, TrialStreamsIgnoreDrawOrderAcrossSeeds)
{
    // Different master seeds produce unrelated streams for the same
    // trial index.
    Rng a = Rng::trialStream(1, 17);
    Rng b = Rng::trialStream(2, 17);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Philox, SplitDerivesCounterModeChildren)
{
    const Rng parent = Rng::trialStream(55, 7);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    EXPECT_TRUE(a.isCounterBased());
    EXPECT_TRUE(b.isCounterBased());
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
    // Deterministic: re-deriving gives the identical stream.
    Rng a2 = parent.split(0);
    Rng a3 = parent.split(0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a2.next(), a3.next());
}

TEST(Philox, SimdAndScalarPathsBitIdentical)
{
    if (simd::detectedLevel() == simd::Level::Scalar)
        GTEST_SKIP() << "no SIMD tier available on this build/machine";

    constexpr size_t kCount = 257; // X8 blocks + X4 + scalar tail + odd
    std::vector<double> vec(kCount), sca(kCount);
    uint64_t vecRaw[64], scaRaw[64];
    const philox::Key key = philox::keyWords(philox::deriveKey(3));

    simd::setLevelForTesting(simd::Level::Avx2);
    Rng rv = Rng::trialStream(3, 12);
    rv.fillUniformOpenLow(vec.data(), kCount);
    philox::fillRaw64(key, 12, 0, vecRaw, 32);
    const double vMin = philox::minUniformOpenLow(key, 12, 0, 33);
    const double vMax = philox::maxUniformOpenLow(key, 12, 0, 33);

    simd::setLevelForTesting(simd::Level::Scalar);
    Rng rs = Rng::trialStream(3, 12);
    rs.fillUniformOpenLow(sca.data(), kCount);
    philox::fillRaw64(key, 12, 0, scaRaw, 32);
    const double sMin = philox::minUniformOpenLow(key, 12, 0, 33);
    const double sMax = philox::maxUniformOpenLow(key, 12, 0, 33);
    simd::clearLevelForTesting();

    for (size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(vec[i], sca[i]) << "uniform " << i;
    for (size_t i = 0; i < 64; ++i)
        ASSERT_EQ(vecRaw[i], scaRaw[i]) << "raw draw " << i;
    EXPECT_EQ(vMin, sMin);
    EXPECT_EQ(vMax, sMax);
}

} // namespace
} // namespace lemons
