/**
 * @file
 * Tests for the one-time-pad chip and sender pad book.
 */

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "core/otp_chip.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

OtpParams
chipParams()
{
    OtpParams p;
    p.height = 4;
    p.copies = 64;
    p.threshold = 8;
    p.device = {10.0, 1.0};
    return p;
}

struct Fabricated
{
    PadBook book;
    OneTimePadChip chip;
};

Fabricated
fabricate(size_t pads, uint64_t seed)
{
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(seed);
    PadBook book;
    OneTimePadChip chip(chipParams(), pads, 32, factory, rng, book);
    return {std::move(book), std::move(chip)};
}

TEST(OneTimePadChip, FabricationFillsTheBook)
{
    auto rig = fabricate(5, 1);
    EXPECT_EQ(rig.chip.padCount(), 5u);
    EXPECT_EQ(rig.book.size(), 5u);
    EXPECT_EQ(rig.chip.remaining(), 5u);
    for (size_t s = 0; s < 5; ++s) {
        EXPECT_EQ(rig.book.record(s).key.size(), 32u);
        EXPECT_LT(rig.book.record(s).path, 8u); // 2^(H-1) paths
        EXPECT_FALSE(rig.chip.spent(s));
    }
}

TEST(OneTimePadChip, ReceiverRetrievesWithBookRecord)
{
    auto rig = fabricate(3, 2);
    for (size_t s = 0; s < 3; ++s) {
        const auto key =
            rig.chip.retrievePad(s, rig.book.record(s).path);
        ASSERT_TRUE(key.has_value()) << "slot " << s;
        EXPECT_EQ(*key, rig.book.record(s).key);
        EXPECT_TRUE(rig.chip.spent(s));
    }
    EXPECT_EQ(rig.chip.remaining(), 0u);
}

TEST(OneTimePadChip, SlotsAreSingleUse)
{
    auto rig = fabricate(2, 3);
    const uint64_t path = rig.book.record(0).path;
    ASSERT_TRUE(rig.chip.retrievePad(0, path).has_value());
    EXPECT_FALSE(rig.chip.retrievePad(0, path).has_value());
    // Slot 1 unaffected.
    EXPECT_TRUE(
        rig.chip.retrievePad(1, rig.book.record(1).path).has_value());
}

TEST(OneTimePadChip, WrongPathSpendsTheSlot)
{
    auto rig = fabricate(1, 4);
    const uint64_t wrong = (rig.book.record(0).path + 1) % 8;
    EXPECT_FALSE(rig.chip.retrievePad(0, wrong).has_value());
    EXPECT_TRUE(rig.chip.spent(0));
    EXPECT_FALSE(
        rig.chip.retrievePad(0, rig.book.record(0).path).has_value());
}

TEST(OneTimePadChip, RandomSweepSpendsEverythingAndRarelyWins)
{
    // H=4 is deliberately weak; even so a single sweep with k=8-of-64
    // only wins when >= 8 right-path guesses land (p ~ 1/8 each).
    auto rig = fabricate(10, 5);
    Rng maid(6);
    const size_t recovered = rig.chip.randomPathSweep(maid);
    EXPECT_EQ(rig.chip.remaining(), 0u);
    EXPECT_LE(recovered, 10u);
    // Receiver detects: all retrievals now fail.
    for (size_t s = 0; s < 10; ++s)
        EXPECT_FALSE(
            rig.chip.retrievePad(s, rig.book.record(s).path).has_value());
}

TEST(OneTimePadChip, TallTreesBlockTheSweepOutright)
{
    OtpParams params = chipParams();
    params.height = 8;
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(7);
    PadBook book;
    OneTimePadChip chip(params, 6, 32, factory, rng, book);
    Rng maid(8);
    EXPECT_EQ(chip.randomPathSweep(maid), 0u);
}

TEST(OneTimePadChip, AreaMatchesCostModel)
{
    auto rig = fabricate(4, 9);
    const arch::CostModel model;
    EXPECT_NEAR(rig.chip.areaMm2(model),
                model.decisionTreeAreaMm2(4) * 64 * 4, 1e-12);
}

TEST(OneTimePadChip, RejectsBadArguments)
{
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    Rng rng(10);
    PadBook book;
    EXPECT_THROW(OneTimePadChip(chipParams(), 0, 32, factory, rng, book),
                 std::invalid_argument);
    EXPECT_THROW(OneTimePadChip(chipParams(), 1, 0, factory, rng, book),
                 std::invalid_argument);
    auto rig = fabricate(1, 11);
    EXPECT_THROW(rig.chip.retrievePad(5, 0), std::invalid_argument);
    EXPECT_THROW(rig.chip.spent(5), std::invalid_argument);
    EXPECT_THROW(rig.book.record(5), std::invalid_argument);
}

TEST(FabricateChipForArea, SizesToTheDie)
{
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    const arch::CostModel model;
    Rng rng(12);
    PadBook book;
    const auto chip = fabricateChipForArea(chipParams(), 0.05, 32,
                                           factory, model, rng, book);
    ASSERT_TRUE(chip.has_value());
    // H=4 density ~624k trees/mm^2 -> 0.05 mm^2 / 64 copies ~ 488 pads.
    EXPECT_GT(chip->padCount(), 450u);
    EXPECT_LT(chip->padCount(), 500u);
    EXPECT_LE(chip->areaMm2(model), 0.05);
}

TEST(FabricateChipForArea, TinyDieYieldsNothing)
{
    const DeviceFactory factory({10.0, 1.0}, ProcessVariation::none());
    const arch::CostModel model;
    Rng rng(13);
    PadBook book;
    EXPECT_FALSE(fabricateChipForArea(chipParams(), 1e-9, 32, factory,
                                      model, rng, book)
                     .has_value());
}

TEST(PadRecord, PathStringRendersBits)
{
    PadRecord record;
    record.path = 0b011; // bit 0 first: "110"
    EXPECT_EQ(record.pathString(4), "110");
    record.path = 0;
    EXPECT_EQ(record.pathString(1), "(root)");
}

} // namespace
} // namespace lemons::core
