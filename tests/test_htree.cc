/**
 * @file
 * Tests for the H-tree layout engine backing the paper's area
 * assumptions (Brent & Kung: tree area is on the order of the leaf
 * count).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "arch/htree.h"

namespace lemons::arch {
namespace {

TEST(HTree, RejectsBadParameters)
{
    EXPECT_THROW(HTreeLayout(0), std::invalid_argument);
    EXPECT_THROW(HTreeLayout(25), std::invalid_argument);
    EXPECT_THROW(HTreeLayout(3, 0.0), std::invalid_argument);
}

TEST(HTree, SingleNodeTree)
{
    const HTreeLayout layout(1, 10.0);
    EXPECT_EQ(layout.leafCount(), 1u);
    EXPECT_EQ(layout.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(layout.areaNm2(), 100.0);
    EXPECT_DOUBLE_EQ(layout.totalWireLengthNm(), 0.0);
}

TEST(HTree, CountsMatchHeight)
{
    const HTreeLayout layout(5);
    EXPECT_EQ(layout.leafCount(), 16u);
    EXPECT_EQ(layout.nodeCount(), 31u);
    EXPECT_EQ(layout.nodes().size(), 31u);
}

TEST(HTree, RootSitsAtTheCentre)
{
    const HTreeLayout layout(6, 8.0);
    const HTreeNode &root = layout.node(0, 0);
    EXPECT_DOUBLE_EQ(root.x, layout.width() / 2.0);
    EXPECT_DOUBLE_EQ(root.y, layout.height() / 2.0);
}

TEST(HTree, ParentIsMidpointOfChildren)
{
    const HTreeLayout layout(7);
    for (unsigned level = 0; level + 1 < layout.levels(); ++level) {
        for (uint64_t i = 0; i < (uint64_t{1} << level); ++i) {
            const HTreeNode &parent = layout.node(level, i);
            const HTreeNode &left = layout.node(level + 1, 2 * i);
            const HTreeNode &right = layout.node(level + 1, 2 * i + 1);
            EXPECT_NEAR(parent.x, 0.5 * (left.x + right.x), 1e-9);
            EXPECT_NEAR(parent.y, 0.5 * (left.y + right.y), 1e-9);
        }
    }
}

TEST(HTree, LeavesFormAUniformGrid)
{
    const HTreeLayout layout(5, 10.0); // 16 leaves -> 4 x 4 grid
    std::set<std::pair<double, double>> positions;
    const unsigned leafLevel = layout.levels() - 1;
    for (uint64_t i = 0; i < layout.leafCount(); ++i) {
        const HTreeNode &leaf = layout.node(leafLevel, i);
        // Centres at odd multiples of pitch/2.
        const double gx = (leaf.x - 5.0) / 10.0;
        const double gy = (leaf.y - 5.0) / 10.0;
        EXPECT_NEAR(gx, std::round(gx), 1e-9);
        EXPECT_NEAR(gy, std::round(gy), 1e-9);
        positions.insert({leaf.x, leaf.y});
    }
    EXPECT_EQ(positions.size(), layout.leafCount()); // no overlaps
}

TEST(HTree, AllNodesInsideTheBox)
{
    const HTreeLayout layout(9, 3.0);
    for (const HTreeNode &node : layout.nodes()) {
        EXPECT_GE(node.x, 0.0);
        EXPECT_LE(node.x, layout.width());
        EXPECT_GE(node.y, 0.0);
        EXPECT_LE(node.y, layout.height());
    }
}

TEST(HTree, AreaPerLeafIsConstant)
{
    // The Brent & Kung O(leaves) claim the cost model relies on: area
    // per leaf does not grow with tree size.
    for (unsigned levels = 2; levels <= 16; ++levels) {
        const HTreeLayout layout(levels, 11.0);
        EXPECT_NEAR(layout.areaPerLeafPitchSq(), 1.0, 1e-9)
            << "levels = " << levels;
    }
}

TEST(HTree, AspectRatioStaysNearSquare)
{
    for (unsigned levels = 2; levels <= 16; ++levels) {
        const HTreeLayout layout(levels);
        const double ratio = layout.width() / layout.height();
        EXPECT_GE(ratio, 1.0 - 1e-9) << "levels = " << levels;
        EXPECT_LE(ratio, 2.0 + 1e-9) << "levels = " << levels;
    }
}

TEST(HTree, WireLengthScalesLinearlyInLeaves)
{
    // Total wire length is O(L * pitch): per-leaf wire stays bounded.
    double perLeafPrev = 0.0;
    for (unsigned levels : {6u, 10u, 14u, 18u}) {
        const HTreeLayout layout(levels, 1.0);
        const double perLeaf = layout.totalWireLengthNm() /
                               static_cast<double>(layout.leafCount());
        EXPECT_LT(perLeaf, 4.0) << "levels = " << levels;
        EXPECT_GT(perLeaf, 1.0) << "levels = " << levels;
        if (perLeafPrev > 0.0) {
            EXPECT_NEAR(perLeaf, perLeafPrev, 0.5);
        }
        perLeafPrev = perLeaf;
    }
}

TEST(HTree, TwoLevelGeometryExact)
{
    // 2 leaves, pitch 10: box 20 x 10; leaves at x = 5, 15, y = 5;
    // root at (10, 5); wire = 5 + 5.
    const HTreeLayout layout(2, 10.0);
    EXPECT_DOUBLE_EQ(layout.width(), 20.0);
    EXPECT_DOUBLE_EQ(layout.height(), 10.0);
    EXPECT_DOUBLE_EQ(layout.node(1, 0).x, 5.0);
    EXPECT_DOUBLE_EQ(layout.node(1, 1).x, 15.0);
    EXPECT_DOUBLE_EQ(layout.node(0, 0).x, 10.0);
    EXPECT_DOUBLE_EQ(layout.totalWireLengthNm(), 10.0);
}

TEST(HTree, NodeAccessorRejectsBadCoordinates)
{
    const HTreeLayout layout(3);
    EXPECT_THROW(layout.node(3, 0), std::invalid_argument);
    EXPECT_THROW(layout.node(1, 2), std::invalid_argument);
}

} // namespace
} // namespace lemons::arch
