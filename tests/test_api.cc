/**
 * @file
 * Unit tests for the lemons::api facade: the strict JSON reader, the
 * lemons-api/1 envelope contract, the S-code request-error mapping,
 * and determinism of the solve/mc endpoints. The envelope checks
 * parse the rendered documents back through api::parseJson, so the
 * reader and writer halves are held to the same grammar.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/codec.h"
#include "api/json.h"
#include "api/service.h"
#include "api/types.h"
#include "lint/diagnostics.h"

namespace lemons::api {
namespace {

// ---------------------------------------------------------------------------
// JSON reader: strictness

TEST(ApiJson, ParsesScalarsAndStructure)
{
    JsonParseResult result = parseJson(
        R"({"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x"})");
    ASSERT_TRUE(result.ok) << result.error;
    const JsonValue &root = result.value;
    ASSERT_TRUE(root.isObject());
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(a->items()[1].asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(a->items()[2].asNumber(), -300.0);
    const JsonValue *d = root.find("b")->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->asBool());
    EXPECT_TRUE(root.find("b")->find("c")->isNull());
    EXPECT_EQ(root.find("e")->asString(), "x");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(ApiJson, DecodesEscapesIncludingSurrogatePairs)
{
    // \u00e9 is two UTF-8 bytes; \uD83D\uDE00 is a surrogate pair
    // for U+1F600, four UTF-8 bytes.
    JsonParseResult result =
        parseJson(R"("a\"b\\c\n\u00e9\uD83D\uDE00")");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.value.asString(),
              "a\"b\\c\n\xC3\xA9\xF0\x9F\x98\x80");
    // A lone surrogate half is not a code point.
    EXPECT_FALSE(parseJson(R"("\uD83D")").ok);
}

TEST(ApiJson, RejectsDuplicateKeys)
{
    // Last-wins duplicate handling is an injection hazard for a
    // security-facing API, so duplicates are a hard parse error.
    JsonParseResult result = parseJson(R"({"a": 1, "a": 2})");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(ApiJson, RejectsTrailingBytes)
{
    EXPECT_FALSE(parseJson("{} {}").ok);
    EXPECT_FALSE(parseJson("1 2").ok);
    EXPECT_TRUE(parseJson("{}  \n").ok);
}

TEST(ApiJson, RejectsLenientExtensions)
{
    EXPECT_FALSE(parseJson("{'a': 1}").ok);       // single quotes
    EXPECT_FALSE(parseJson("{a: 1}").ok);         // unquoted key
    EXPECT_FALSE(parseJson("[1, 2,]").ok);        // trailing comma
    EXPECT_FALSE(parseJson("// c\n1").ok);        // comments
    EXPECT_FALSE(parseJson("NaN").ok);            // non-finite literal
    EXPECT_FALSE(parseJson("[01]").ok);           // leading zero
    EXPECT_FALSE(parseJson("[1.]").ok);           // bare trailing dot
    EXPECT_FALSE(parseJson("\"tab\tinside\"").ok); // raw control char
    EXPECT_FALSE(parseJson("").ok);
}

TEST(ApiJson, EnforcesDepthLimit)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    for (int i = 0; i < 100; ++i)
        deep += ']';
    EXPECT_FALSE(parseJson(deep).ok);
    EXPECT_TRUE(parseJson(deep, 128).ok);
}

TEST(ApiJson, ReportsErrorOffset)
{
    const JsonParseResult result = parseJson(R"({"a": tru})");
    ASSERT_FALSE(result.ok);
    EXPECT_GE(result.offset, 6u);
    EXPECT_FALSE(result.error.empty());
}

TEST(ApiJson, Uint64ExactnessBoundary)
{
    uint64_t out = 0;
    EXPECT_TRUE(parseJson("9007199254740991").value.asUint64(out));
    EXPECT_EQ(out, (uint64_t{1} << 53) - 1);
    EXPECT_FALSE(parseJson("-1").value.asUint64(out));
    EXPECT_FALSE(parseJson("1.5").value.asUint64(out));
    EXPECT_FALSE(parseJson("1e300").value.asUint64(out));
    EXPECT_FALSE(parseJson("\"7\"").value.asUint64(out));
}

// ---------------------------------------------------------------------------
// Envelope contract

/** Parse an envelope body and assert the lemons-api/1 invariants. */
JsonValue
parseEnvelope(const std::string &body)
{
    JsonParseResult parsed = parseJson(body);
    EXPECT_TRUE(parsed.ok) << parsed.error << "\nbody: " << body;
    const JsonValue &root = parsed.value;
    EXPECT_TRUE(root.isObject());
    const JsonValue *schema = root.find("schema");
    EXPECT_NE(schema, nullptr);
    if (schema != nullptr) {
        EXPECT_EQ(schema->asString(), kApiSchema);
    }
    EXPECT_NE(root.find("ok"), nullptr);
    const JsonValue *diagnostics = root.find("diagnostics");
    EXPECT_NE(diagnostics, nullptr);
    if (diagnostics != nullptr) {
        EXPECT_TRUE(diagnostics->isArray());
    }
    EXPECT_NE(root.find("result"), nullptr);
    return std::move(parsed.value);
}

/** First diagnostic code in an envelope ("" when none). */
std::string
firstCode(const JsonValue &envelope)
{
    const JsonValue *diagnostics = envelope.find("diagnostics");
    if (diagnostics == nullptr || diagnostics->items().empty())
        return "";
    const JsonValue *code = diagnostics->items()[0].find("code");
    return code == nullptr ? "" : code->asString();
}

/** Whether any envelope diagnostic carries @p code. */
bool
hasCode(const JsonValue &envelope, std::string_view code)
{
    const JsonValue *diagnostics = envelope.find("diagnostics");
    if (diagnostics == nullptr)
        return false;
    for (const JsonValue &finding : diagnostics->items()) {
        const JsonValue *member = finding.find("code");
        if (member != nullptr && member->asString() == code)
            return true;
    }
    return false;
}

TEST(ApiEnvelope, CleanReportRendersOkTrueNullResult)
{
    const lint::Report report;
    const std::string body = renderEnvelope(report);
    const JsonValue envelope = parseEnvelope(body);
    EXPECT_TRUE(envelope.find("ok")->asBool());
    EXPECT_TRUE(envelope.find("result")->isNull());
    EXPECT_EQ(envelope.find("diagnostics")->items().size(), 0u);
    EXPECT_EQ(body.back(), '\n');
}

TEST(ApiEnvelope, DiagnosticsCarryTheFullFindingShape)
{
    lint::Report report;
    report.add(lint::Code::S011, "request", "trials", "out of range",
               "use fewer trials");
    const JsonValue envelope = parseEnvelope(renderEnvelope(report));
    EXPECT_FALSE(envelope.find("ok")->asBool());
    const JsonValue &finding =
        envelope.find("diagnostics")->items().at(0);
    EXPECT_EQ(finding.find("code")->asString(), "S011");
    EXPECT_EQ(finding.find("severity")->asString(), "error");
    EXPECT_EQ(finding.find("object")->asString(), "request");
    EXPECT_EQ(finding.find("field")->asString(), "trials");
    EXPECT_EQ(finding.find("message")->asString(), "out of range");
    EXPECT_EQ(finding.find("hint")->asString(), "use fewer trials");
    ASSERT_NE(finding.find("file"), nullptr);
}

// ---------------------------------------------------------------------------
// Service endpoints: S-code mapping

TEST(ApiService, MalformedBodyMapsToS001And400)
{
    const Service service;
    const ServiceResult result = service.solve("{not json");
    EXPECT_EQ(result.status, 400);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(firstCode(parseEnvelope(result.body)), "S001");
}

TEST(ApiService, NonObjectRootMapsToS001Family)
{
    const Service service;
    const ServiceResult result = service.solve("[1,2,3]");
    EXPECT_EQ(result.status, 400);
    EXPECT_FALSE(result.ok);
}

TEST(ApiService, UnknownMemberMapsToS002)
{
    const Service service;
    const ServiceResult result = service.solve(R"({"alfa": 0.5})");
    EXPECT_EQ(result.status, 400);
    EXPECT_EQ(firstCode(parseEnvelope(result.body)), "S002");
}

TEST(ApiService, WrongTypeMapsToS002)
{
    const Service service;
    const ServiceResult result =
        service.lint(R"({"spec": 12})");
    EXPECT_EQ(result.status, 400);
    EXPECT_EQ(firstCode(parseEnvelope(result.body)), "S002");
}

TEST(ApiService, OutOfRangeValueMapsToS011)
{
    const Service service;
    const ServiceResult result = service.mcRun(
        R"({"spec": "x", "trials": 99999999})");
    EXPECT_EQ(result.status, 400);
    EXPECT_EQ(firstCode(parseEnvelope(result.body)), "S011");
}

TEST(ApiService, McRunWithoutStructuresMapsToS010And422)
{
    const Service service;
    const ServiceResult result = service.mcRun(R"({"spec": ""})");
    EXPECT_EQ(result.status, 422);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(hasCode(parseEnvelope(result.body), "S010"));
}

TEST(ApiService, BrokenSpecIsProcessedNotRejected)
{
    // Analysis findings are the *payload* of a lint request: the
    // transport status stays 200 and only the envelope's ok drops.
    // k > n trips the L202 design rule.
    const Service service;
    const ServiceResult result = service.lint(
        R"({"spec": "[structure]\nkind = parallel\nn = 2\nk = 5\n"})");
    EXPECT_EQ(result.status, 200);
    EXPECT_FALSE(result.ok);
    const JsonValue envelope = parseEnvelope(result.body);
    EXPECT_FALSE(envelope.find("ok")->asBool());
    EXPECT_TRUE(hasCode(envelope, "L202"));
}

// ---------------------------------------------------------------------------
// Service endpoints: results and determinism

// The paper's smartphone-unlock operating point (Fig 4): 10-cycle
// beta = 12 devices against a 91,250-access LAB.
constexpr const char *kSolveBody =
    R"({"alpha": 10, "beta": 12, "lab": 91250, "k_fraction": 0.1,)"
    R"( "min_reliability": 0.99})";

TEST(ApiService, SolveReturnsDesignResult)
{
    const Service service;
    const ServiceResult result = service.solve(kSolveBody);
    ASSERT_EQ(result.status, 200) << result.body;
    EXPECT_TRUE(result.ok);
    const JsonValue envelope = parseEnvelope(result.body);
    const JsonValue *design = envelope.find("result");
    ASSERT_TRUE(design->isObject());
    for (const char *key :
         {"feasible", "per_copy_bound", "width", "threshold", "copies",
          "total_devices", "death_check_access", "reliability_at_bound",
          "reliability_past_bound", "expected_system_total"})
        EXPECT_NE(design->find(key), nullptr) << key;
    EXPECT_TRUE(design->find("feasible")->asBool());
}

TEST(ApiService, SolveIsDeterministic)
{
    const Service service;
    EXPECT_EQ(service.solve(kSolveBody).body,
              service.solve(kSolveBody).body);
}

std::string
mcBody(uint64_t seed, unsigned threads)
{
    return std::string("{\"spec\": \"") +
           "[structure]\\nkind = parallel\\nn = 8\\nk = 2\\n"
           "alpha = 100\\nbeta = 2.0\\n" +
           "\", \"trials\": 512, \"seed\": " + std::to_string(seed) +
           ", \"threads\": " + std::to_string(threads) + "}";
}

TEST(ApiService, McRunReturnsStructureStatistics)
{
    const Service service;
    const ServiceResult result = service.mcRun(mcBody(7, 1));
    ASSERT_EQ(result.status, 200) << result.body;
    const JsonValue envelope = parseEnvelope(result.body);
    const JsonValue *mc = envelope.find("result");
    ASSERT_TRUE(mc->isObject());
    uint64_t trials = 0;
    ASSERT_TRUE(mc->find("trials_requested")->asUint64(trials));
    EXPECT_EQ(trials, 512u);
    EXPECT_FALSE(mc->find("interrupted")->asBool());
    const JsonValue *structures = mc->find("structures");
    ASSERT_TRUE(structures->isArray());
    ASSERT_EQ(structures->items().size(), 1u);
    const JsonValue &first = structures->items()[0];
    EXPECT_EQ(first.find("kind")->asString(), "parallel");
    EXPECT_GT(first.find("mean_accesses")->asNumber(), 0.0);
    EXPECT_GE(first.find("max_accesses")->asNumber(),
              first.find("min_accesses")->asNumber());
}

TEST(ApiService, McRunSeedAndThreadInvariance)
{
    // Same seed -> bit-identical body; the engine's counter-based
    // streams also make the statistics thread-count invariant.
    const Service service;
    const std::string one = service.mcRun(mcBody(7, 1)).body;
    EXPECT_EQ(one, service.mcRun(mcBody(7, 1)).body);
    EXPECT_EQ(one, service.mcRun(mcBody(7, 4)).body);
    EXPECT_NE(one, service.mcRun(mcBody(8, 1)).body);
}

} // namespace
} // namespace lemons::api
