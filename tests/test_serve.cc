/**
 * @file
 * End-to-end tests for the lemonsd serving layer, driven over real
 * loopback sockets: routing, the lemons-api/1 error envelopes for
 * every malformed-transport case (truncated body, bad Content-Length,
 * oversized body), admission control (per-tenant quotas, the
 * in-flight bound), graceful drain, and the no-per-request-thread
 * guarantee (handlers ride engine::ThreadPool::global(), so the
 * sim.mc.pool.threads_created counter must stay at the worker count
 * even under concurrent client load).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/server.h"

namespace lemons::serve {
namespace {

class ServeTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        // A peer closing mid-write must surface as EPIPE, not kill
        // the test binary.
        std::signal(SIGPIPE, SIG_IGN);
    }
};

/** Connect to 127.0.0.1:@p port; returns -1 on failure. */
int
connectTo(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    // A test must never hang on a dead server: bound every socket op.
    timeval timeout{};
    timeout.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    return fd;
}

/** Send @p raw, optionally half-close, then read the full response. */
std::string
exchange(uint16_t port, const std::string &raw, bool halfClose = false)
{
    const int fd = connectTo(port);
    if (fd < 0)
        return "";
    size_t sent = 0;
    while (sent < raw.size()) {
        const ssize_t n =
            ::send(fd, raw.data() + sent, raw.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
    if (halfClose)
        ::shutdown(fd, SHUT_WR);
    std::string response;
    char chunk[4096];
    ssize_t got = 0;
    while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        response.append(chunk, static_cast<size_t>(got));
    ::close(fd);
    return response;
}

std::string
post(const std::string &target, const std::string &body,
     const std::string &extraHeaders = "")
{
    return "POST " + target + " HTTP/1.1\r\n" +
           "Host: localhost\r\n" + extraHeaders +
           "Content-Length: " + std::to_string(body.size()) +
           "\r\n\r\n" + body;
}

std::string
get(const std::string &target)
{
    return "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
}

int
statusOf(const std::string &response)
{
    // "HTTP/1.1 200 OK\r\n..."
    if (response.size() < 12)
        return -1;
    return std::atoi(response.c_str() + 9);
}

std::string
bodyOf(const std::string &response)
{
    const size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? "" : response.substr(split + 4);
}

/** Whether any envelope diagnostic carries @p code. */
bool
hasCode(const std::string &body, std::string_view code)
{
    const api::JsonParseResult parsed = api::parseJson(body);
    if (!parsed.ok)
        return false;
    const api::JsonValue *diagnostics = parsed.value.find("diagnostics");
    if (diagnostics == nullptr || !diagnostics->isArray())
        return false;
    for (const api::JsonValue &finding : diagnostics->items()) {
        const api::JsonValue *member = finding.find("code");
        if (member != nullptr && member->asString() == code)
            return true;
    }
    return false;
}

constexpr const char *kLintBody =
    R"({"spec": "[structure]\nkind = parallel\nn = 4\nk = 2\n"})";

TEST_F(ServeTest, HealthzReportsServing)
{
    Server server(ServerOptions{});
    ASSERT_TRUE(server.start());
    const std::string response =
        exchange(server.boundPort(), get("/v1/healthz"));
    EXPECT_EQ(statusOf(response), 200);
    EXPECT_NE(bodyOf(response).find("\"serving\""), std::string::npos);
    EXPECT_NE(response.find("Connection: close"), std::string::npos);
    server.stop();
}

TEST_F(ServeTest, SolveRoundTrip)
{
    Server server(ServerOptions{});
    ASSERT_TRUE(server.start());
    const std::string body =
        R"({"alpha": 10, "beta": 12, "lab": 91250})";
    const std::string response =
        exchange(server.boundPort(), post("/v1/solve", body));
    EXPECT_EQ(statusOf(response), 200);
    const api::JsonParseResult parsed = api::parseJson(bodyOf(response));
    ASSERT_TRUE(parsed.ok) << bodyOf(response);
    EXPECT_TRUE(parsed.value.find("ok")->asBool());
    EXPECT_TRUE(parsed.value.find("result")->isObject());
    server.stop();
}

TEST_F(ServeTest, UnknownTargetIs404S003)
{
    Server server(ServerOptions{});
    ASSERT_TRUE(server.start());
    const std::string response =
        exchange(server.boundPort(), get("/v1/nope"));
    EXPECT_EQ(statusOf(response), 404);
    EXPECT_TRUE(hasCode(bodyOf(response), "S003"));
    server.stop();
}

TEST_F(ServeTest, WrongMethodIs405WithAllow)
{
    Server server(ServerOptions{});
    ASSERT_TRUE(server.start());
    const std::string response =
        exchange(server.boundPort(), get("/v1/solve"));
    EXPECT_EQ(statusOf(response), 405);
    EXPECT_NE(response.find("Allow: POST"), std::string::npos);
    EXPECT_TRUE(hasCode(bodyOf(response), "S004"));
    server.stop();
}

TEST_F(ServeTest, TruncatedBodyIs400)
{
    Server server(ServerOptions{});
    ASSERT_TRUE(server.start());
    // Declares 100 bytes, delivers 4, half-closes.
    const std::string raw = "POST /v1/lint HTTP/1.1\r\n"
                            "Content-Length: 100\r\n\r\nfour";
    const std::string response =
        exchange(server.boundPort(), raw, /*halfClose=*/true);
    EXPECT_EQ(statusOf(response), 400);
    EXPECT_TRUE(hasCode(bodyOf(response), "S006"));
    server.stop();
}

TEST_F(ServeTest, BadContentLengthIs400)
{
    Server server(ServerOptions{});
    ASSERT_TRUE(server.start());
    const std::string raw = "POST /v1/lint HTTP/1.1\r\n"
                            "Content-Length: banana\r\n\r\n";
    const std::string response =
        exchange(server.boundPort(), raw, /*halfClose=*/true);
    EXPECT_EQ(statusOf(response), 400);
    EXPECT_TRUE(hasCode(bodyOf(response), "S006"));
    server.stop();
}

TEST_F(ServeTest, OversizedBodyIs413S005)
{
    ServerOptions options;
    options.http.maxBodyBytes = 64;
    Server server(options);
    ASSERT_TRUE(server.start());
    const std::string big(1000, 'x');
    const std::string response =
        exchange(server.boundPort(), post("/v1/lint", big));
    EXPECT_EQ(statusOf(response), 413);
    EXPECT_TRUE(hasCode(bodyOf(response), "S005"));
    server.stop();
}

TEST_F(ServeTest, TenantQuotaIs429WithRetryAfter)
{
    ServerOptions options;
    options.quota.ratePerSecond = 0.001; // ~17 min per token
    options.quota.burst = 1.0;
    Server server(options);
    ASSERT_TRUE(server.start());
    const std::string request =
        post("/v1/lint", kLintBody, "X-Lemons-Tenant: ci-fleet-a\r\n");
    EXPECT_EQ(statusOf(exchange(server.boundPort(), request)), 200);
    const std::string denied = exchange(server.boundPort(), request);
    EXPECT_EQ(statusOf(denied), 429);
    EXPECT_NE(denied.find("Retry-After: "), std::string::npos);
    EXPECT_TRUE(hasCode(bodyOf(denied), "S007"));
    // A different tenant still has a full bucket.
    const std::string other =
        post("/v1/lint", kLintBody, "X-Lemons-Tenant: ci-fleet-b\r\n");
    EXPECT_EQ(statusOf(exchange(server.boundPort(), other)), 200);
    server.stop();
}

TEST_F(ServeTest, InflightBoundIs503S009)
{
    ServerOptions options;
    options.maxInflight = 0; // reject every admission attempt
    Server server(options);
    ASSERT_TRUE(server.start());
    const std::string response =
        exchange(server.boundPort(), get("/v1/healthz"));
    EXPECT_EQ(statusOf(response), 503);
    EXPECT_NE(response.find("Retry-After: "), std::string::npos);
    EXPECT_TRUE(hasCode(bodyOf(response), "S009"));
    server.stop();
}

TEST_F(ServeTest, GracefulDrainAnswersInflightWithS008)
{
    Server server(ServerOptions{});
    ASSERT_TRUE(server.start());

    // Open a connection and deliver only the head: the handler is now
    // in flight, blocked reading the body.
    const int fd = connectTo(server.boundPort());
    ASSERT_GE(fd, 0);
    const std::string body = kLintBody;
    const std::string head = "POST /v1/lint HTTP/1.1\r\n"
                             "Content-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n";
    ASSERT_EQ(::send(fd, head.data(), head.size(), 0),
              static_cast<ssize_t>(head.size()));
    for (int spins = 0; server.inflight() == 0 && spins < 200; ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(server.inflight(), 1u);

    // Drain while the request is in flight, then let it complete: the
    // response must be the 503 + S008 drain envelope, not a hang.
    server.beginDrain();
    EXPECT_TRUE(server.draining());
    ASSERT_EQ(::send(fd, body.data(), body.size(), 0),
              static_cast<ssize_t>(body.size()));
    std::string response;
    char chunk[4096];
    ssize_t got = 0;
    while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        response.append(chunk, static_cast<size_t>(got));
    ::close(fd);
    EXPECT_EQ(statusOf(response), 503);
    EXPECT_TRUE(hasCode(bodyOf(response), "S008"));

    server.waitDrained();
    EXPECT_EQ(server.inflight(), 0u);
    server.stop();
}

TEST_F(ServeTest, ConcurrentClientsNeverSpawnRequestThreads)
{
    // The whole point of riding ThreadPool::global(): the pool grows
    // to the configured worker count once and never per request. Runs
    // the same load at 1, 2, and 8 workers; after all three, the
    // process has created at most 8 pool threads ever.
    for (const unsigned workers : {1u, 2u, 8u}) {
        ServerOptions options;
        options.workers = workers;
        options.quota.ratePerSecond = 0.0; // load test, not a quota test
        Server server(options);
        ASSERT_TRUE(server.start());

        constexpr int kClients = 8;
        constexpr int kRequestsPerClient = 4;
        std::vector<std::string> failures;
        std::mutex failuresMu;
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (int c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                for (int r = 0; r < kRequestsPerClient; ++r) {
                    const std::string response = exchange(
                        server.boundPort(), post("/v1/lint", kLintBody));
                    if (statusOf(response) != 200) {
                        const std::lock_guard<std::mutex> lock(failuresMu);
                        failures.push_back(
                            "client " + std::to_string(c) + " got: " +
                            response.substr(0, 64));
                    }
                }
            });
        }
        for (std::thread &client : clients)
            client.join();
        EXPECT_TRUE(failures.empty())
            << failures.size() << " failed, first: " << failures[0];
        server.stop();
    }

    EXPECT_LE(
        obs::Registry::global().counter("sim.mc.pool.threads_created").get(),
        8u);
}

} // namespace
} // namespace lemons::serve
