# Schema check for a saved lemons-api/1 envelope (what lemonsd's
# endpoints and `lemons-lint --json` emit): parse with CMake's JSON
# support (3.19+) and assert the envelope contract — schema tag,
# boolean ok, diagnostics array (each entry carrying the full finding
# shape), and a result member. Optional knobs let the CI smoke test
# pin endpoint specifics.
#
# Usage:
#   cmake -DJSON=<envelope.json>
#         [-DEXPECT_OK=true|false]          # pin the ok flag
#         [-DEXPECT_RESULT_KEYS=a,b,c]      # keys the result must have
#         -P verify_serve_json.cmake

if(NOT JSON)
    message(FATAL_ERROR "verify_serve_json.cmake needs JSON")
endif()
if(CMAKE_VERSION VERSION_LESS 3.19)
    message(FATAL_ERROR "verify_serve_json.cmake needs CMake >= 3.19 "
                        "for string(JSON)")
endif()

file(READ "${JSON}" content)

string(JSON schema ERROR_VARIABLE err GET "${content}" schema)
if(err OR NOT schema STREQUAL "lemons-api/1")
    message(FATAL_ERROR "bad or missing schema tag in ${JSON}: "
                        "'${schema}' ${err}")
endif()

string(JSON ok_type ERROR_VARIABLE err TYPE "${content}" ok)
if(err OR NOT ok_type STREQUAL "BOOLEAN")
    message(FATAL_ERROR "envelope 'ok' missing or not a boolean: ${err}")
endif()
# string(JSON GET) renders booleans as ON/OFF; compare truthiness so
# callers can pass the natural true/false.
if(DEFINED EXPECT_OK)
    string(JSON ok GET "${content}" ok)
    if((ok AND NOT EXPECT_OK) OR (EXPECT_OK AND NOT ok))
        message(FATAL_ERROR "${JSON}: ok is '${ok}', expected "
                            "'${EXPECT_OK}'")
    endif()
endif()

string(JSON diag_type ERROR_VARIABLE err TYPE "${content}" diagnostics)
if(err OR NOT diag_type STREQUAL "ARRAY")
    message(FATAL_ERROR "envelope 'diagnostics' missing or not an "
                        "array: ${err}")
endif()

# Every diagnostic must carry the full stable finding shape.
string(JSON diag_count LENGTH "${content}" diagnostics)
if(diag_count GREATER 0)
    math(EXPR last "${diag_count} - 1")
    foreach(i RANGE 0 ${last})
        foreach(member code severity object field message hint file)
            string(JSON value ERROR_VARIABLE err
                   GET "${content}" diagnostics ${i} ${member})
            if(err)
                message(FATAL_ERROR "diagnostic ${i} lacks "
                                    "'${member}': ${err}")
            endif()
        endforeach()
    endforeach()
endif()

string(JSON result_type ERROR_VARIABLE err TYPE "${content}" result)
if(err)
    message(FATAL_ERROR "envelope 'result' missing: ${err}")
endif()

if(DEFINED EXPECT_RESULT_KEYS)
    if(NOT result_type STREQUAL "OBJECT")
        message(FATAL_ERROR "${JSON}: result is ${result_type}, "
                            "expected an object")
    endif()
    string(REPLACE "," ";" keys "${EXPECT_RESULT_KEYS}")
    foreach(key IN LISTS keys)
        string(JSON value ERROR_VARIABLE err
               GET "${content}" result ${key})
        if(err)
            message(FATAL_ERROR "${JSON}: result lacks '${key}': ${err}")
        endif()
    endforeach()
endif()

message(STATUS "${JSON}: lemons-api/1 envelope OK "
               "(${diag_count} diagnostic(s), result ${result_type})")
