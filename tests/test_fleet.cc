/**
 * @file
 * Unit tests for lemons::fleet campaigns: device apportionment,
 * thread-count invariance of every reported number, in-process
 * interrupt/resume equivalence, checkpoint config fingerprinting, the
 * [fleet]/[cohort] spec front end, and the L8xx lint rules.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "fleet/campaign.h"
#include "fleet/checkpoint.h"
#include "lint/diagnostics.h"
#include "lint/rules.h"
#include "lint/spec_file.h"

namespace lemons::fleet {
namespace {

namespace fs = std::filesystem;

/** A throwaway directory per test, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        root = fs::temp_directory_path() /
               ("lemons-fleet-test-" + std::to_string(counter()++));
        fs::create_directories(root);
    }
    ~TempDir()
    {
        std::error_code ignored;
        fs::remove_all(root, ignored);
    }
    std::string path(const std::string &name) const
    {
        return (root / name).string();
    }

  private:
    static int &counter()
    {
        static int value = 0;
        return value;
    }
    fs::path root;
};

/** A small heterogeneous spec that runs in well under a second. */
lint::FleetSpec
smallSpec()
{
    lint::FleetSpec spec;
    spec.devices = 1500;
    spec.seed = 7;
    spec.chunkSize = 32;
    spec.checkpointEveryChunks = 2;
    spec.horizonDays = 400;
    spec.prematureDays = 200;

    // Lifetime mixtures are at fielded-unit scale (accesses the
    // composed design survives), not the single-device alpha = 10.
    lint::FleetCohortSpec heavy;
    heavy.name = "heavy";
    heavy.weight = 0.6;
    heavy.staggerDays = 30.0;
    heavy.accessBound = 9000;
    heavy.usage.meanPerDay = 40.0;
    heavy.usage.burstProbability = 0.1;
    heavy.usage.burstMultiplier = 4.0;
    heavy.lifetime.infantFraction = 0.05;
    heavy.lifetime.infant = {9000.0, 0.8};
    heavy.lifetime.main = {500000.0, 12.0};

    lint::FleetCohortSpec light;
    light.name = "light";
    light.weight = 0.4;
    light.staggerDays = 0.0;
    light.accessBound = 91250;
    light.usage.meanPerDay = 20.0;
    light.lifetime.infantFraction = 0.0;
    light.lifetime.infant = {9000.0, 0.8};
    light.lifetime.main = {200000.0, 12.0};
    light.reprovisionDay = 100.0;
    light.reprovisionUsageScale = 2.0;

    spec.cohorts = {heavy, light};
    return spec;
}

TEST(FleetCampaign, ApportionmentIsExactAndDeterministic)
{
    lint::FleetSpec spec = smallSpec();
    spec.devices = 10001;
    spec.cohorts[0].weight = 1.0 / 3.0;
    spec.cohorts[1].weight = 2.0 / 3.0;
    const FleetCampaign campaign(spec);
    const std::vector<uint64_t> &trials = campaign.cohortTrials();
    ASSERT_EQ(trials.size(), 2u);
    EXPECT_EQ(std::accumulate(trials.begin(), trials.end(),
                              uint64_t{0}),
              10001u);
    // floor(10001/3) = 3333, largest remainder tops it up to 3334.
    EXPECT_EQ(trials[0], 3334u);
    EXPECT_EQ(trials[1], 6667u);
}

TEST(FleetCampaign, InvalidSpecIsRejectedAtConstruction)
{
    lint::FleetSpec bad = smallSpec();
    bad.cohorts[0].weight = 0.9; // weights now sum to 1.3
    EXPECT_THROW(FleetCampaign{bad}, std::invalid_argument);

    lint::FleetSpec zeroInterval = smallSpec();
    zeroInterval.checkpointEveryChunks = 0;
    EXPECT_THROW(FleetCampaign{zeroInterval}, std::invalid_argument);
}

TEST(FleetCampaign, DigestIsThreadCountInvariant)
{
    const FleetCampaign campaign(smallSpec());
    CampaignOptions base;
    base.threads = 1;
    const FleetSummary reference = campaign.run(base);
    ASSERT_TRUE(reference.complete());
    ASSERT_EQ(reference.devices, 1500u);
    ASSERT_EQ(reference.cohorts.size(), 2u);
    // The heavy cohort's budget dies well before the horizon; the
    // light cohort's LAB comfortably outlives 400 days.
    EXPECT_GT(reference.cohorts[0].replacementRate(), 0.9);
    EXPECT_LT(reference.cohorts[1].replacementRate(), 0.1);
    EXPECT_GT(reference.cohorts[1].reprovisioned, 0u);

    for (unsigned threads : {2u, 8u}) {
        CampaignOptions options;
        options.threads = threads;
        const FleetSummary summary = campaign.run(options);
        EXPECT_EQ(summary.digest(), reference.digest())
            << "digest diverged at " << threads << " threads";
        ASSERT_EQ(summary.cohorts.size(), reference.cohorts.size());
        for (size_t i = 0; i < summary.cohorts.size(); ++i) {
            EXPECT_EQ(summary.cohorts[i].replaced,
                      reference.cohorts[i].replaced);
            EXPECT_EQ(summary.cohorts[i].premature,
                      reference.cohorts[i].premature);
            EXPECT_EQ(summary.cohorts[i].reprovisioned,
                      reference.cohorts[i].reprovisioned);
        }
    }
}

TEST(FleetCampaign, DeadlineInterruptThenResumeMatchesUninterrupted)
{
    const TempDir dir;
    const FleetCampaign campaign(smallSpec());
    const FleetSummary reference = campaign.run(CampaignOptions{});

    // An already-expired deadline stops the campaign at the first
    // wave boundary, leaving a zero-progress (but valid) checkpoint.
    CampaignOptions interrupted;
    interrupted.checkpointPath = dir.path("fleet.ckpt");
    interrupted.deadline = std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1);
    const FleetSummary partial = campaign.run(interrupted);
    EXPECT_FALSE(partial.complete());
    EXPECT_EQ(partial.interrupt,
              engine::InterruptReason::DeadlineExceeded);
    ASSERT_TRUE(fs::exists(dir.path("fleet.ckpt")));

    // Resuming without a deadline completes and matches bit-for-bit.
    CampaignOptions resume;
    resume.checkpointPath = dir.path("fleet.ckpt");
    resume.resume = true;
    const FleetSummary resumed = campaign.run(resume);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.digest(), reference.digest());
}

TEST(FleetCampaign, CancellationMidCampaignResumesBitIdentically)
{
    const TempDir dir;
    const FleetCampaign campaign(smallSpec());
    const FleetSummary reference = campaign.run(CampaignOptions{});

    // Cancel from inside the run: the token fires after the first
    // checkpoint lands, so the interrupt point is mid-campaign.
    engine::CancelToken token;
    CampaignOptions interrupted;
    interrupted.checkpointPath = dir.path("fleet.ckpt");
    interrupted.cancel = &token;
    std::thread canceller([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        token.cancel();
    });
    const FleetSummary partial = campaign.run(interrupted);
    canceller.join();

    FleetSummary outcome = partial;
    if (!partial.complete()) {
        EXPECT_EQ(partial.interrupt,
                  engine::InterruptReason::Cancelled);
        CampaignOptions resume;
        resume.checkpointPath = dir.path("fleet.ckpt");
        resume.resume = true;
        outcome = campaign.run(resume);
        EXPECT_TRUE(outcome.resumed);
    }
    EXPECT_TRUE(outcome.complete());
    EXPECT_EQ(outcome.digest(), reference.digest());
}

TEST(FleetCampaign, ResumeRejectsForeignCheckpoint)
{
    const TempDir dir;
    const FleetCampaign original(smallSpec());
    CampaignOptions options;
    options.checkpointPath = dir.path("fleet.ckpt");
    static_cast<void>(original.run(options));

    // Same path, different experiment: the config fingerprint must
    // refuse the mix-up with the C105 taxonomy code.
    lint::FleetSpec other = smallSpec();
    other.seed = 8;
    const FleetCampaign foreign(other);
    CampaignOptions resume = options;
    resume.resume = true;
    try {
        static_cast<void>(foreign.run(resume));
        FAIL() << "foreign checkpoint must be rejected";
    } catch (const CheckpointError &error) {
        EXPECT_NE(std::string(error.what()).find("C105"),
                  std::string::npos)
            << error.what();
    }
}

TEST(FleetCampaign, SealedCheckpointResumeSkipsAllWork)
{
    const TempDir dir;
    const FleetCampaign campaign(smallSpec());
    CampaignOptions options;
    options.checkpointPath = dir.path("fleet.ckpt");
    const FleetSummary first = campaign.run(options);

    CampaignOptions resume = options;
    resume.resume = true;
    const FleetSummary second = campaign.run(resume);
    EXPECT_TRUE(second.resumed);
    EXPECT_TRUE(second.complete());
    EXPECT_EQ(second.digest(), first.digest());
}

TEST(FleetSpecFile, FleetAndCohortSectionsParse)
{
    const std::string text = "[fleet]\n"
                             "devices = 5000\n"
                             "seed = 11\n"
                             "chunk_size = 128\n"
                             "checkpoint_interval = 4\n"
                             "horizon_days = 1825\n"
                             "premature_days = 365\n"
                             "[cohort]\n"
                             "name = retail\n"
                             "weight = 0.75\n"
                             "stagger_days = 90\n"
                             "access_bound = 91250\n"
                             "mean_per_day = 50\n"
                             "burst_probability = 0.05\n"
                             "burst_multiplier = 3\n"
                             "infant_fraction = 0.02\n"
                             "[cohort]\n"
                             "name = secondhand\n"
                             "weight = 0.25\n"
                             "mean_per_day = 30\n"
                             "reprovision_day = 900\n"
                             "reprovision_scale = 1.5\n";
    lint::Report report;
    const lint::ParsedSpec parsed =
        lint::parseSpec(text, "f", report);
    EXPECT_FALSE(report.hasErrors()) << report.format();
    ASSERT_EQ(parsed.fleets.size(), 1u);
    const lint::FleetSpec &fleet = parsed.fleets[0];
    EXPECT_EQ(fleet.devices, 5000u);
    EXPECT_EQ(fleet.seed, 11u);
    EXPECT_EQ(fleet.chunkSize, 128u);
    EXPECT_EQ(fleet.checkpointEveryChunks, 4u);
    ASSERT_EQ(fleet.cohorts.size(), 2u);
    EXPECT_EQ(fleet.cohorts[0].name, "retail");
    EXPECT_DOUBLE_EQ(fleet.cohorts[0].weight, 0.75);
    EXPECT_DOUBLE_EQ(fleet.cohorts[0].staggerDays, 90.0);
    EXPECT_EQ(fleet.cohorts[1].name, "secondhand");
    ASSERT_TRUE(fleet.cohorts[1].reprovisionDay.has_value());
    EXPECT_DOUBLE_EQ(*fleet.cohorts[1].reprovisionDay, 900.0);
    EXPECT_DOUBLE_EQ(fleet.cohorts[1].reprovisionUsageScale, 1.5);

    // The parsed spec is directly runnable.
    const FleetCampaign campaign(fleet);
    EXPECT_EQ(std::accumulate(campaign.cohortTrials().begin(),
                              campaign.cohortTrials().end(),
                              uint64_t{0}),
              5000u);
}

TEST(FleetSpecFile, CohortBeforeFleetIsASyntaxError)
{
    const lint::Report report =
        lint::lintText("[cohort]\nname = orphan\nweight = 1\n", "f");
    EXPECT_TRUE(report.hasCode(lint::Code::L902));
    EXPECT_TRUE(report.hasErrors());
}

TEST(FleetLintRules, CatchBadFleetParameters)
{
    using lint::Code;
    lint::FleetSpec spec = smallSpec();
    spec.devices = 0;
    spec.horizonDays = 0;
    spec.checkpointEveryChunks = 0;
    lint::Report report = lint::checkFleet(spec);
    EXPECT_TRUE(report.hasCode(Code::L801));
    EXPECT_TRUE(report.hasCode(Code::L802));
    EXPECT_TRUE(report.hasCode(Code::L803));

    lint::FleetSpec weights = smallSpec();
    weights.cohorts[0].weight = 1.5;
    report = lint::checkFleet(weights);
    EXPECT_TRUE(report.hasCode(Code::L804));
    EXPECT_TRUE(report.hasCode(Code::L805));

    lint::FleetSpec stagger = smallSpec();
    stagger.cohorts[0].staggerDays = -3.0;
    stagger.cohorts[1].accessBound = 0;
    report = lint::checkFleet(stagger);
    EXPECT_TRUE(report.hasCode(Code::L806));
    EXPECT_TRUE(report.hasCode(Code::L807));

    lint::FleetSpec noCohorts = smallSpec();
    noCohorts.cohorts.clear();
    EXPECT_TRUE(lint::checkFleet(noCohorts).hasCode(Code::L808));

    lint::FleetSpec lateReprovision = smallSpec();
    lateReprovision.cohorts[1].reprovisionDay = 1e9;
    EXPECT_TRUE(
        lint::checkFleet(lateReprovision).hasCode(Code::L809));

    lint::FleetSpec premature = smallSpec();
    premature.prematureDays = premature.horizonDays;
    EXPECT_TRUE(lint::checkFleet(premature).hasCode(Code::L810));

    lint::FleetSpec scale = smallSpec();
    scale.cohorts[1].reprovisionUsageScale = -1.0;
    EXPECT_TRUE(lint::checkFleet(scale).hasCode(Code::L811));

    // The clean small spec fires nothing.
    EXPECT_TRUE(lint::checkFleet(smallSpec()).empty())
        << lint::checkFleet(smallSpec()).format();
}

} // namespace
} // namespace lemons::fleet
