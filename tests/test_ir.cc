/**
 * @file
 * The architecture IR: graph construction invariants (dense ids,
 * topological order, cycle rejection) and the lowering rules that turn
 * solver designs, structure/share/OTP specs, and parsed `.lemons`
 * files into graphs carrying the right nodes and proof obligations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/design_solver.h"
#include "ir/graph.h"
#include "ir/lower.h"
#include "lint/spec_file.h"

namespace lemons {
namespace {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::Obligation;

Node
node(NodeKind kind, const char *label)
{
    Node n;
    n.kind = kind;
    n.label = label;
    return n;
}

/** Position of each id in @p order, for edge-direction checks. */
std::vector<size_t>
positions(const Graph &graph, const std::vector<NodeId> &order)
{
    std::vector<size_t> pos(graph.size(), 0);
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    return pos;
}

/** Count nodes of @p kind in @p graph. */
size_t
countKind(const Graph &graph, NodeKind kind)
{
    size_t count = 0;
    for (const Node &n : graph.nodes())
        if (n.kind == kind)
            ++count;
    return count;
}

TEST(IrGraph, DenseIdsAndEdges)
{
    Graph graph("g");
    const NodeId a = graph.add(node(NodeKind::SecretSource, "a"));
    const NodeId b = graph.add(node(NodeKind::Device, "b"));
    const NodeId c = graph.add(node(NodeKind::Sink, "c"));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(c, 2u);
    EXPECT_EQ(graph.size(), 3u);

    graph.connect(a, b);
    graph.connect(b, c);
    ASSERT_EQ(graph.successors(a).size(), 1u);
    EXPECT_EQ(graph.successors(a).front(), b);
    const auto preds = graph.predecessors(c);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds.front(), b);
    EXPECT_TRUE(graph.predecessors(a).empty());

    EXPECT_THROW(graph.connect(a, 99), std::invalid_argument);
    Obligation bad;
    bad.target = 99;
    EXPECT_THROW(graph.addObligation(bad), std::invalid_argument);
}

TEST(IrGraph, TopoOrderRespectsEdges)
{
    Graph graph("g");
    const NodeId a = graph.add(node(NodeKind::SecretSource, "a"));
    const NodeId b = graph.add(node(NodeKind::Device, "b"));
    const NodeId c = graph.add(node(NodeKind::Store, "c"));
    const NodeId d = graph.add(node(NodeKind::Sink, "d"));
    graph.connect(a, b);
    graph.connect(a, c);
    graph.connect(b, d);
    graph.connect(c, d);

    const auto order = graph.topoOrder();
    ASSERT_EQ(order.size(), graph.size());
    const auto pos = positions(graph, order);
    for (NodeId from = 0; from < graph.size(); ++from)
        for (const NodeId to : graph.successors(from))
            EXPECT_LT(pos[from], pos[to]);
}

TEST(IrGraph, CycleYieldsEmptyTopoOrder)
{
    Graph graph("cyclic");
    const NodeId a = graph.add(node(NodeKind::Device, "a"));
    const NodeId b = graph.add(node(NodeKind::Device, "b"));
    graph.connect(a, b);
    graph.connect(b, a);
    EXPECT_TRUE(graph.topoOrder().empty());
}

TEST(IrGraph, KindNamesAreLowercase)
{
    EXPECT_STREQ(ir::nodeKindName(NodeKind::SecretSource), "secret-source");
    EXPECT_STREQ(ir::nodeKindName(NodeKind::Parallel), "parallel");
    EXPECT_STREQ(ir::nodeKindName(NodeKind::Sink), "sink");
}

TEST(IrLower, DesignLowersToFiveNodePipeline)
{
    core::DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    const core::Design design = core::DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);

    const Graph graph = ir::lowerDesign(request, design);
    ASSERT_EQ(graph.size(), 5u);
    EXPECT_EQ(graph.node(0).kind, NodeKind::SecretSource);
    EXPECT_EQ(graph.node(1).kind, NodeKind::Device);
    EXPECT_EQ(graph.node(2).kind, NodeKind::Parallel);
    EXPECT_EQ(graph.node(3).kind, NodeKind::Replicate);
    EXPECT_EQ(graph.node(4).kind, NodeKind::Sink);

    EXPECT_EQ(graph.node(2).n, design.width);
    EXPECT_EQ(graph.node(2).k, design.threshold);
    EXPECT_EQ(graph.node(3).count, design.copies);

    // Default regime: survival floor, residual ceiling, expected total.
    ASSERT_EQ(graph.obligations().size(), 3u);
    const Obligation &survival = graph.obligations()[0];
    EXPECT_EQ(survival.kind, Obligation::Kind::SurvivalFloor);
    EXPECT_EQ(survival.target, 2u);
    EXPECT_DOUBLE_EQ(survival.access,
                     static_cast<double>(design.perCopyBound));
    const Obligation &total = graph.obligations()[2];
    EXPECT_EQ(total.kind, Obligation::Kind::ExpectedTotal);
    EXPECT_TRUE(total.hasFloor);
    EXPECT_FALSE(total.hasCeiling);
    EXPECT_DOUBLE_EQ(total.floor, 91250.0);
}

TEST(IrLower, UpperBoundTargetSwapsResidualForCeiling)
{
    core::DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 91250;
    request.upperBoundTarget = 100000;
    const core::Design design = core::DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);

    const Graph graph = ir::lowerDesign(request, design);
    ASSERT_EQ(graph.obligations().size(), 2u);
    EXPECT_EQ(graph.obligations()[0].kind, Obligation::Kind::SurvivalFloor);
    const Obligation &total = graph.obligations()[1];
    EXPECT_EQ(total.kind, Obligation::Kind::ExpectedTotal);
    EXPECT_TRUE(total.hasCeiling);
    EXPECT_DOUBLE_EQ(total.ceiling, 100000.0);
}

TEST(IrLower, StructureSeriesAndParallelShapes)
{
    lint::StructureSpec parallel;
    parallel.n = 40;
    parallel.k = 4;
    parallel.accessBound = 5;
    parallel.minReliability = 0.9;
    parallel.maxResidual = 0.5;
    const Graph pg = ir::lowerStructure(parallel);
    EXPECT_EQ(countKind(pg, NodeKind::Parallel), 1u);
    EXPECT_EQ(countKind(pg, NodeKind::Series), 0u);
    EXPECT_EQ(pg.obligations().size(), 2u); // floor + residual, no copies

    lint::StructureSpec series;
    series.kind = lint::StructureSpec::Kind::Series;
    series.n = 6;
    series.copies = 10;
    series.accessBound = 3;
    const Graph sg = ir::lowerStructure(series);
    EXPECT_EQ(countKind(sg, NodeKind::Series), 1u);
    EXPECT_EQ(countKind(sg, NodeKind::Replicate), 1u);
    // Only the expected-total obligation: no reliability annotations.
    ASSERT_EQ(sg.obligations().size(), 1u);
    EXPECT_EQ(sg.obligations()[0].kind, Obligation::Kind::ExpectedTotal);
    EXPECT_DOUBLE_EQ(sg.obligations()[0].floor, 30.0);
}

TEST(IrLower, SharesSplitGuardedAndBareBranches)
{
    lint::ShareSpec spec;
    spec.shares = 16;
    spec.threshold = 8;
    spec.unguarded = 10;
    const Graph graph = ir::lowerShares(spec);
    ASSERT_EQ(graph.size(), 4u); // source, gate, store, sink
    EXPECT_EQ(countKind(graph, NodeKind::Device), 1u);
    EXPECT_EQ(countKind(graph, NodeKind::Store), 1u);
    for (const Node &n : graph.nodes()) {
        if (n.kind == NodeKind::Device) {
            EXPECT_EQ(n.n, 6u);
        }
        if (n.kind == NodeKind::Store) {
            EXPECT_EQ(n.n, 10u);
        }
    }

    // Fully guarded: the bare-store branch disappears.
    spec.unguarded = 0;
    const Graph clean = ir::lowerShares(spec);
    EXPECT_EQ(countKind(clean, NodeKind::Store), 0u);

    // unguarded > shares clamps instead of underflowing (fuzz input).
    spec.unguarded = 99;
    const Graph clamped = ir::lowerShares(spec);
    EXPECT_EQ(countKind(clamped, NodeKind::Device), 0u);
}

TEST(IrLower, OtpCarriesBothBoundsOnOneObligation)
{
    core::OtpParams params;
    params.height = 8;
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    const Graph graph = ir::lowerOtp(params, 0.95, 1e-5);
    ASSERT_EQ(graph.size(), 5u);
    EXPECT_EQ(countKind(graph, NodeKind::Series), 1u);
    EXPECT_EQ(countKind(graph, NodeKind::Parallel), 1u);
    ASSERT_EQ(graph.obligations().size(), 1u);
    const Obligation &otp = graph.obligations().front();
    EXPECT_EQ(otp.kind, Obligation::Kind::OtpBounds);
    EXPECT_TRUE(otp.hasFloor);
    EXPECT_TRUE(otp.hasCeiling);
    EXPECT_DOUBLE_EQ(otp.access, 8.0);
    EXPECT_DOUBLE_EQ(otp.floor, 0.95);
    EXPECT_DOUBLE_EQ(otp.ceiling, 1e-5);
}

TEST(IrLower, SpecLowersEverySectionAndAttachesFaults)
{
    lint::Report parseReport;
    const lint::ParsedSpec spec = lint::parseSpec("[structure]\n"
                                                  "kind = parallel\n"
                                                  "n = 40\n"
                                                  "k = 4\n"
                                                  "[shares]\n"
                                                  "n = 16\n"
                                                  "k = 8\n"
                                                  "[fault]\n"
                                                  "glitch_rate = 0.01\n",
                                                  "spec", parseReport);
    ASSERT_EQ(spec.structures.size(), 1u);
    ASSERT_EQ(spec.shares.size(), 1u);
    ASSERT_EQ(spec.faults.size(), 1u);

    lint::Report lowerReport;
    const auto graphs = ir::lowerSpec(spec, lowerReport);
    ASSERT_EQ(graphs.size(), 2u);
    EXPECT_FALSE(lowerReport.hasCode(lint::Code::V901));
    for (const Graph &graph : graphs)
        for (const Node &n : graph.nodes())
            if (n.kind == NodeKind::Device) {
                ASSERT_TRUE(n.faultPlan.has_value());
                EXPECT_DOUBLE_EQ(n.faultPlan->glitchRate, 0.01);
            }
}

TEST(IrLower, InfeasibleDesignIsV901NotAGraph)
{
    lint::DesignSection section;
    // beta = 0.5: survival decays too gently for any width to satisfy
    // R(t) >= 0.99 and R(t+1) <= 0.01 simultaneously.
    section.request.device = {10.0, 0.5};
    section.request.legitimateAccessBound = 91250;
    lint::ParsedSpec spec;
    spec.designs.push_back(section);

    lint::Report report;
    const auto graphs = ir::lowerSpec(spec, report);
    EXPECT_TRUE(graphs.empty());
    EXPECT_TRUE(report.hasCode(lint::Code::V901));
}

TEST(IrLower, RuleRejectedDesignIsV901)
{
    lint::DesignSection section;
    section.request.device = {0.0, 12.0}; // L001 -> solver ctor throws
    lint::ParsedSpec spec;
    spec.designs.push_back(section);

    lint::Report report;
    const auto graphs = ir::lowerSpec(spec, report);
    EXPECT_TRUE(graphs.empty());
    EXPECT_TRUE(report.hasCode(lint::Code::V901));
}

} // namespace
} // namespace lemons
