/**
 * @file
 * End-to-end integration tests across modules: the full smartphone
 * scenario (design -> fabricate -> unlock -> attack), the targeting
 * mission, and one-time-pad messaging with an evil-maid adversary.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/connection.h"
#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "core/targeting.h"
#include "crypto/otp.h"
#include "crypto/password_model.h"
#include "sim/monte_carlo.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

TEST(Integration, SmartphoneLifecycle)
{
    // Design a scaled-down connection (LAB 200 for test speed),
    // provision it, live a full legitimate life, then confirm the
    // brute-force bound.
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 200;
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);
    ASSERT_LE(design.width, 255u);

    const DeviceFactory factory(request.device, ProcessVariation::none());
    std::vector<uint8_t> storageKey(32, 0xc3);
    Rng rng(2024);
    LimitedUseConnection phone(design, factory, "correct-horse",
                               storageKey, rng);

    // Five years of daily unlocks (scaled down).
    for (int day = 0; day < 200; ++day) {
        const auto key = phone.unlock("correct-horse");
        ASSERT_TRUE(key.has_value()) << "day " << day;
        ASSERT_EQ(*key, storageKey);
    }

    // A thief with unlimited time: the hardware dies long before the
    // password model gives them a realistic chance.
    const crypto::PasswordModel passwords;
    uint64_t thiefAttempts = 0;
    while (!phone.bricked()) {
        (void)phone.unlock("thief-guess-" + std::to_string(thiefAttempts));
        ++thiefAttempts;
    }
    const double crackChance =
        passwords.attackSuccessProbability(200 + thiefAttempts);
    EXPECT_LT(crackChance, 0.001); // scaled-down bound: tiny head start
    EXPECT_FALSE(phone.unlock("correct-horse").has_value());
}

TEST(Integration, AttackerSuccessProbabilityAtFullScale)
{
    // At the paper's real scale: the hardware bound (~91,250 + small
    // overshoot) admits at most ~1 % cracking probability, versus
    // near-certainty for an unbounded attacker.
    const crypto::PasswordModel passwords;
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);
    const double bounded = passwords.attackSuccessProbability(
        static_cast<uint64_t>(design.expectedSystemTotal));
    EXPECT_LT(bounded, 0.01);
    const double unbounded =
        passwords.attackSuccessProbability(uint64_t{10'000'000'000});
    EXPECT_EQ(unbounded, 1.0);
}

TEST(Integration, TargetingMissionEndToEnd)
{
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);

    const DeviceFactory factory(request.device, ProcessVariation::none());
    std::vector<uint8_t> missionKey(32, 0x7e);
    Rng rng(5150);
    CommandAuthority authority(missionKey);
    LaunchStation station(design, factory, missionKey, rng);

    // The mission: 100 commands, all executed.
    for (int i = 0; i < 100; ++i) {
        const auto cmd = authority.issueCommand(
            "engage target " + std::to_string(i));
        const auto result = station.executeCommand(cmd);
        ASSERT_TRUE(result.has_value()) << "command " << i;
    }

    // Beyond the mission the station rapidly retires, bounding any
    // post-mission abuse.
    uint64_t extra = 0;
    while (!station.decommissioned() && extra < 1000) {
        (void)station.executeCommand(
            authority.issueCommand("overreach " + std::to_string(extra)));
        ++extra;
    }
    EXPECT_TRUE(station.decommissioned());
    EXPECT_LE(100 + extra, design.copies * (design.perCopyBound + 2));
}

TEST(Integration, OneTimePadMessaging)
{
    // Sender and receiver share a chip of pads and a path string; a
    // message is encrypted with a pad key, the receiver pulls the key
    // through the decision trees exactly once and decrypts.
    OtpParams params;
    params.height = 4;
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};

    const DeviceFactory factory(params.device, ProcessVariation::none());
    Rng rng(77);

    const std::vector<uint8_t> padKey = crypto::generatePad(rng, 64);
    const uint64_t path = 6; // the shared short string "110"
    OneTimePad receiverPad(params, padKey, path, factory, rng);

    const std::string message = "MEET AT DAWN. BURN AFTER READING.";
    const std::vector<uint8_t> plaintext(message.begin(), message.end());
    const auto ciphertext = crypto::otpApply(plaintext, padKey);

    const auto retrieved = receiverPad.retrieve(path);
    ASSERT_TRUE(retrieved.has_value());
    const auto decrypted = crypto::otpApply(ciphertext, *retrieved);
    EXPECT_EQ(std::string(decrypted.begin(), decrypted.end()), message);

    // Rule of one-time pads: the key is gone now.
    EXPECT_FALSE(receiverPad.retrieve(path).has_value());
}

TEST(Integration, EvilMaidCannotCloneThePad)
{
    // The evil maid intercepts the chip before the receiver uses it,
    // runs a random-path cloning attack, and puts it back. The paper's
    // design goal: she almost never obtains the key, and the tampering
    // is likely to destroy the pad (detectable by the receiver), never
    // to silently leak it.
    OtpParams params;
    params.height = 8; // the paper's "H >= 8 blocks adversaries"
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    const DeviceFactory factory(params.device, ProcessVariation::none());

    const sim::MonteCarlo engine(31337, 50);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        std::vector<uint8_t> padKey = crypto::generatePad(rng, 32);
        OneTimePad pad(params, padKey, 100, factory, rng);
        Rng maid = rng.split(666);
        return pad.randomPathAttack(maid).has_value();
    });
    EXPECT_EQ(ci.estimate, 0.0);
}

TEST(Integration, SolverDesignsSurviveHardwareSimulation)
{
    // Close the loop: a solved design, when actually fabricated and
    // exercised, must deliver its promised minimum usage in (almost)
    // every trial.
    DesignRequest request;
    request.device = {12.0, 10.0};
    request.legitimateAccessBound = 150;
    request.kFraction = 0.2;
    const Design design = DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);
    ASSERT_LE(design.width, 255u);

    const DeviceFactory factory(request.device, ProcessVariation::none());
    const sim::MonteCarlo engine(99, 60);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        LimitedUseGate gate(design, factory,
                            std::vector<uint8_t>(16, 0xab), rng);
        for (uint64_t i = 0; i < request.legitimateAccessBound; ++i) {
            if (!gate.access().has_value())
                return false;
        }
        return true;
    });
    EXPECT_GT(ci.estimate, 0.9);
}

} // namespace
} // namespace lemons::core
