/**
 * @file
 * Tests for the piecewise empirical guessability curve.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/guess_curve.h"
#include "util/rng.h"

namespace lemons::crypto {
namespace {

EmpiricalGuessCurve
simpleCurve()
{
    return EmpiricalGuessCurve({{100.0, 0.01}, {10000.0, 0.1},
                                {1e8, 1.0}});
}

TEST(GuessCurve, RejectsBadAnchors)
{
    using Anchor = EmpiricalGuessCurve::Anchor;
    EXPECT_THROW(EmpiricalGuessCurve({Anchor{1.0, 0.5}}),
                 std::invalid_argument);
    EXPECT_THROW(EmpiricalGuessCurve({{1.0, 0.5}, {1.0, 0.6}}),
                 std::invalid_argument);
    EXPECT_THROW(EmpiricalGuessCurve({{1.0, 0.5}, {2.0, 0.4}}),
                 std::invalid_argument);
    EXPECT_THROW(EmpiricalGuessCurve({{0.0, 0.5}, {2.0, 0.6}}),
                 std::invalid_argument);
    EXPECT_THROW(EmpiricalGuessCurve({{1.0, 0.0}, {2.0, 0.6}}),
                 std::invalid_argument);
    EXPECT_THROW(EmpiricalGuessCurve({{1.0, 0.5}, {2.0, 1.1}}),
                 std::invalid_argument);
}

TEST(GuessCurve, HitsAnchorsExactly)
{
    const auto curve = simpleCurve();
    EXPECT_NEAR(curve.crackedFraction(100.0), 0.01, 1e-12);
    EXPECT_NEAR(curve.crackedFraction(10000.0), 0.1, 1e-12);
    EXPECT_NEAR(curve.crackedFraction(1e8), 1.0, 1e-12);
}

TEST(GuessCurve, LogLogInterpolationBetweenAnchors)
{
    const auto curve = simpleCurve();
    // Between (100, 0.01) and (1e4, 0.1) the log-log line at the
    // geometric midpoint g=1000 gives f = sqrt(0.01*0.1).
    EXPECT_NEAR(curve.crackedFraction(1000.0), std::sqrt(0.001), 1e-9);
}

TEST(GuessCurve, HeadIsLinear)
{
    const auto curve = simpleCurve();
    EXPECT_NEAR(curve.crackedFraction(50.0), 0.005, 1e-12);
    EXPECT_DOUBLE_EQ(curve.crackedFraction(0.0), 0.0);
}

TEST(GuessCurve, TailClampsAtLastAnchor)
{
    const auto curve = simpleCurve();
    EXPECT_DOUBLE_EQ(curve.crackedFraction(1e12), 1.0);
}

TEST(GuessCurve, MonotoneEverywhere)
{
    const auto curve = EmpiricalGuessCurve::blaseUr8Char4Class();
    double prev = 0.0;
    for (double g = 1.0; g < 1e17; g *= 1.7) {
        const double f = curve.crackedFraction(g);
        EXPECT_GE(f, prev - 1e-15) << "g = " << g;
        prev = f;
    }
}

TEST(GuessCurve, InverseRoundTrips)
{
    const auto curve = EmpiricalGuessCurve::blaseUr8Char4Class();
    for (double f : {1e-4, 1e-3, 0.01, 0.02, 0.1, 0.5, 1.0}) {
        const double g = curve.guessesForFraction(f);
        EXPECT_NEAR(curve.crackedFraction(g), f, 1e-9 + 1e-9 * f)
            << "f = " << f;
    }
}

TEST(GuessCurve, InverseRejectsBadFraction)
{
    const auto curve = simpleCurve();
    EXPECT_THROW(curve.guessesForFraction(0.0), std::invalid_argument);
    EXPECT_THROW(curve.guessesForFraction(1.5), std::invalid_argument);
    // Coverage gap: a curve ending below 1.0 cannot invert above it.
    const EmpiricalGuessCurve partial({{10.0, 0.1}, {100.0, 0.5}});
    EXPECT_THROW(partial.guessesForFraction(0.9), std::invalid_argument);
}

TEST(GuessCurve, PaperAnchorsPresentInDefault)
{
    const auto curve = EmpiricalGuessCurve::blaseUr8Char4Class();
    EXPECT_NEAR(curve.crackedFraction(1e5), 0.01, 1e-12);
    EXPECT_NEAR(curve.crackedFraction(2e5), 0.02, 1e-12);
    // "only a few very popular passwords ... within 91,250 attempts".
    EXPECT_LT(curve.crackedFraction(91250), 0.01);
}

TEST(GuessCurve, SampledRanksFollowTheCurve)
{
    const auto curve = EmpiricalGuessCurve::blaseUr8Char4Class();
    Rng rng(42);
    const int trials = 200000;
    int within100k = 0, within200k = 0;
    for (int i = 0; i < trials; ++i) {
        const uint64_t rank = curve.sampleGuessRank(rng);
        if (rank <= 100000)
            ++within100k;
        if (rank <= 200000)
            ++within200k;
    }
    EXPECT_NEAR(static_cast<double>(within100k) / trials, 0.01, 0.002);
    EXPECT_NEAR(static_cast<double>(within200k) / trials, 0.02, 0.003);
}

TEST(GuessCurve, PartialCurveSaturatesSampling)
{
    // A curve covering only 50% of users: the other half must sample
    // to the saturation rank, not throw.
    const EmpiricalGuessCurve partial({{10.0, 0.1}, {100.0, 0.5}});
    Rng rng(43);
    int saturated = 0;
    for (int i = 0; i < 10000; ++i)
        if (partial.sampleGuessRank(rng) == (uint64_t{1} << 62))
            ++saturated;
    EXPECT_NEAR(saturated, 5000, 300);
}

} // namespace
} // namespace lemons::crypto
