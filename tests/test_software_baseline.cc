/**
 * @file
 * Tests for the software-counter baseline and the paper's published
 * bypasses (Section 4), contrasted with the hardware gate.
 */

#include <gtest/gtest.h>

#include "core/design_solver.h"
#include "core/gate.h"
#include "core/software_baseline.h"

namespace lemons::core {
namespace {

std::vector<uint8_t>
storageKey()
{
    return std::vector<uint8_t>(32, 0xaa);
}

TEST(SoftwareBaseline, NormalUnlockWorks)
{
    SoftwareCounterPhone phone("sekret", storageKey());
    const auto key = phone.unlock("sekret");
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, storageKey());
}

TEST(SoftwareBaseline, SuccessResetsFailureCounter)
{
    SoftwareCounterPhone phone("sekret", storageKey());
    (void)phone.unlock("a");
    (void)phone.unlock("b");
    EXPECT_EQ(phone.failureCount(), 2u);
    (void)phone.unlock("sekret");
    EXPECT_EQ(phone.failureCount(), 0u);
}

TEST(SoftwareBaseline, WipesAfterThreshold)
{
    SoftwareCounterPhone phone("sekret", storageKey(), 10);
    for (int i = 0; i < 10; ++i)
        (void)phone.unlock("wrong");
    EXPECT_TRUE(phone.wiped());
    // Even the right passcode is useless after the wipe.
    EXPECT_FALSE(phone.unlock("sekret").has_value());
}

TEST(SoftwareBaseline, NaiveBruteForceStoppedByWipe)
{
    // Victim passcode is 5,000 guesses deep; the wipe fires at 10.
    SoftwareCounterPhone phone(attackerGuess(5000), storageKey());
    const auto outcome = naiveBruteForce(phone, 100000);
    EXPECT_FALSE(outcome.cracked);
    EXPECT_TRUE(outcome.deviceDisabled);
    EXPECT_EQ(outcome.attempts, 10u);
}

TEST(SoftwareBaseline, PowerCutBypassesCounter)
{
    // MDSec attack: validations without counter commits, forever.
    SoftwareCounterPhone phone(attackerGuess(5000), storageKey());
    for (uint64_t guess = 1; guess < 5000; ++guess) {
        EXPECT_FALSE(
            phone.unlockWithPowerCut(attackerGuess(guess)).has_value());
        ASSERT_FALSE(phone.wiped());
    }
    const auto key = phone.unlockWithPowerCut(attackerGuess(5000));
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, storageKey());
}

TEST(SoftwareBaseline, NandMirroringBypassesWipe)
{
    SoftwareCounterPhone phone(attackerGuess(5000), storageKey());
    const auto outcome = nandMirroringBruteForce(phone, 100000);
    EXPECT_TRUE(outcome.cracked);
    EXPECT_FALSE(phone.wiped());
    EXPECT_GE(outcome.attempts, 5000u);
}

TEST(SoftwareBaseline, FirmwareUpdateDisablesGuard)
{
    SoftwareCounterPhone phone(attackerGuess(200), storageKey());
    phone.applyMaliciousFirmwareUpdate();
    const auto outcome = naiveBruteForce(phone, 100000);
    EXPECT_TRUE(outcome.cracked);
    EXPECT_FALSE(outcome.deviceDisabled);
}

TEST(SoftwareBaseline, RejectsBadConstruction)
{
    EXPECT_THROW(SoftwareCounterPhone("p", {}, 10),
                 std::invalid_argument);
    EXPECT_THROW(SoftwareCounterPhone("p", storageKey(), 0),
                 std::invalid_argument);
}

TEST(HardwareContrast, NoCounterToBypass)
{
    // The same adversarial patterns against the hardware gate: there
    // is no counter commit to skip and no mutable state to snapshot —
    // every single validation, bypassed or not, wears physical
    // devices. The attacker's total attempts are bounded regardless.
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const Design design = DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);
    const wearout::DeviceFactory factory(request.device,
                                         wearout::ProcessVariation::none());
    Rng rng(99);
    LimitedUseGate gate(design, factory, storageKey(), rng);

    uint64_t attempts = 0;
    while (gate.access().has_value())
        ++attempts;
    // Bounded by the designed window no matter the strategy.
    EXPECT_LE(attempts, design.copies * (design.perCopyBound + 2));
    EXPECT_GE(attempts, 100u);
    // And unlike the NAND restore, nothing resurrects it.
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(gate.access().has_value());
}

} // namespace
} // namespace lemons::core
