/**
 * @file
 * Tests for the runtime limited-use gate: correct secret delivery,
 * hardware-enforced exhaustion, and copy fall-through.
 */

#include <gtest/gtest.h>

#include "core/design_solver.h"
#include "core/gate.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

Design
targetingDesign()
{
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    return DesignSolver(request).solve();
}

std::vector<uint8_t>
secretBytes()
{
    return {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04};
}

TEST(LimitedUseGate, RejectsBadConstruction)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(1);
    const Design infeasible;
    EXPECT_THROW(LimitedUseGate(infeasible, factory, secretBytes(), rng),
                 std::invalid_argument);

    Design tooWide = targetingDesign();
    tooWide.width = 70000; // beyond GF(2^16) share indices
    EXPECT_THROW(LimitedUseGate(tooWide, factory, secretBytes(), rng),
                 std::invalid_argument);

    const Design d = targetingDesign();
    EXPECT_THROW(LimitedUseGate(d, factory, {}, rng),
                 std::invalid_argument);
}

TEST(LimitedUseGate, DeliversSecretForLegitimateUsage)
{
    const Design d = targetingDesign();
    ASSERT_TRUE(d.feasible);
    ASSERT_LE(d.width, 255u);
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(2);
    LimitedUseGate gate(d, factory, secretBytes(), rng);

    // All 100 legitimate accesses must succeed (design guarantees
    // ~99 % per copy; fall-through between copies absorbs the rest).
    for (int i = 0; i < 100; ++i) {
        const auto secret = gate.access();
        ASSERT_TRUE(secret.has_value()) << "access " << i;
        EXPECT_EQ(*secret, secretBytes());
    }
    EXPECT_EQ(gate.accessCount(), 100u);
}

TEST(LimitedUseGate, WearsOutNearTheDesignBound)
{
    const Design d = targetingDesign();
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(3);
    LimitedUseGate gate(d, factory, secretBytes(), rng);

    uint64_t successes = 0;
    for (int i = 0; i < 400; ++i)
        if (gate.access().has_value())
            ++successes;
    // Lower bound: the LAB. Upper bound: nominal capacity plus a
    // small overshoot (residual reliability is 1 % per copy).
    EXPECT_GE(successes, 100u);
    EXPECT_LE(successes, d.copies * (d.perCopyBound + 2));
    EXPECT_TRUE(gate.exhausted());
}

TEST(LimitedUseGate, ExhaustionIsPermanent)
{
    const Design d = targetingDesign();
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(4);
    LimitedUseGate gate(d, factory, secretBytes(), rng);
    while (!gate.exhausted())
        (void)gate.access();
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(gate.access().has_value());
}

TEST(LimitedUseGate, CopiesAreConsumedInOrder)
{
    const Design d = targetingDesign();
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(5);
    LimitedUseGate gate(d, factory, secretBytes(), rng);
    EXPECT_EQ(gate.copiesExhausted(), 0u);
    uint64_t lastExhausted = 0;
    while (!gate.exhausted()) {
        (void)gate.access();
        EXPECT_GE(gate.copiesExhausted(), lastExhausted);
        lastExhausted = gate.copiesExhausted();
    }
    EXPECT_EQ(gate.copiesExhausted(), d.copies);
}

TEST(LimitedUseGate, SecretNeverWrongWhileAlive)
{
    // The gate must deliver either the exact secret or nothing —
    // Shamir reconstruction from >= k genuine shares cannot silently
    // corrupt.
    const Design d = targetingDesign();
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(6);
    LimitedUseGate gate(d, factory, secretBytes(), rng);
    for (int i = 0; i < 300; ++i) {
        const auto secret = gate.access();
        if (secret) {
            EXPECT_EQ(*secret, secretBytes());
        }
    }
}

TEST(LimitedUseGate, DifferentSeedsDifferentWearoutTrajectories)
{
    const Design d = targetingDesign();
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    auto countAccesses = [&](uint64_t seed) {
        Rng rng(seed);
        LimitedUseGate gate(d, factory, secretBytes(), rng);
        uint64_t n = 0;
        while (gate.access().has_value())
            ++n;
        return n;
    };
    // Lifetimes are stochastic but both stay in the designed window.
    const uint64_t a = countAccesses(100);
    const uint64_t b = countAccesses(200);
    EXPECT_GE(a, 100u);
    EXPECT_GE(b, 100u);
}

TEST(LimitedUseGate, WideDesignUsesGf65536Shares)
{
    // (alpha=10, beta=8, k=10%) solves to a 1,760-wide structure —
    // beyond GF(2^8)'s 255 share indices. The GF(2^16) share path
    // must fabricate and serve it.
    DesignRequest request;
    request.device = {10.0, 8.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    const Design d = DesignSolver(request).solve();
    ASSERT_TRUE(d.feasible);
    ASSERT_GT(d.width, 255u);

    const DeviceFactory factory({10.0, 8.0}, ProcessVariation::none());
    Rng rng(404);
    LimitedUseGate gate(d, factory, secretBytes(), rng);
    for (int i = 0; i < 100; ++i) {
        const auto secret = gate.access();
        ASSERT_TRUE(secret.has_value()) << "access " << i;
        EXPECT_EQ(*secret, secretBytes());
    }
}

TEST(LimitedUseGate, FullScaleConnectionFabricates)
{
    // The real 91,250-access design (alpha=14, beta=8, k=10%):
    // 6,084 copies x 175 switches = 1,064,700 devices. Fabricate it
    // and spot-check accesses across its lifetime.
    DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    const Design d = DesignSolver(request).solve();
    ASSERT_TRUE(d.feasible);
    ASSERT_EQ(d.totalDevices, 1064700u);

    const DeviceFactory factory({14.0, 8.0}, ProcessVariation::none());
    Rng rng(5150);
    LimitedUseGate gate(d, factory, secretBytes(), rng);
    // 500 early accesses all succeed.
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(gate.access().has_value()) << "access " << i;
    EXPECT_LE(gate.copiesExhausted(), 40u);
}

} // namespace
} // namespace lemons::core
