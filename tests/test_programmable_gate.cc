/**
 * @file
 * Tests for end-user one-time programming (the paper's Section 3
 * future work): write-once stores and the field-programmable gate.
 */

#include <gtest/gtest.h>

#include "arch/share_store.h"
#include "core/design_solver.h"
#include "core/programmable_gate.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

TEST(WriteOnceStore, BlankReadsNothing)
{
    arch::WriteOnceStore store(false);
    EXPECT_FALSE(store.read().has_value());
    EXPECT_FALSE(store.fuseBlown());
}

TEST(WriteOnceStore, ProgramsExactlyOnce)
{
    arch::WriteOnceStore store(false);
    EXPECT_TRUE(store.program({1, 2, 3}));
    EXPECT_TRUE(store.fuseBlown());
    EXPECT_FALSE(store.program({9, 9, 9})); // fuse blown
    const auto data = store.read();
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ(*data, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(WriteOnceStore, DestructiveVariantErasesOnRead)
{
    arch::WriteOnceStore store(true);
    ASSERT_TRUE(store.program({7}));
    EXPECT_TRUE(store.read().has_value());
    EXPECT_TRUE(store.erased());
    EXPECT_FALSE(store.read().has_value());
    EXPECT_FALSE(store.program({8})); // still write-once after erase
}

Design
smallDesign()
{
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    return DesignSolver(request).solve();
}

std::vector<uint8_t>
userSecret()
{
    return std::vector<uint8_t>(24, 0x42);
}

TEST(ProgrammableGate, BlankGateYieldsNothing)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(1);
    ProgrammableGate gate(smallDesign(), factory, rng);
    EXPECT_FALSE(gate.programmed());
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(gate.access().has_value());
    EXPECT_EQ(gate.accessCount(), 5u);
}

TEST(ProgrammableGate, FieldProgrammingEnablesAccess)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng fabRng(2);
    ProgrammableGate gate(smallDesign(), factory, fabRng);

    Rng userRng(3); // the *user's* randomness, unknown to the fab
    ASSERT_TRUE(gate.programSecret(userSecret(), userRng));
    EXPECT_TRUE(gate.programmed());

    const auto secret = gate.access();
    ASSERT_TRUE(secret.has_value());
    EXPECT_EQ(*secret, userSecret());
}

TEST(ProgrammableGate, ReprogrammingIsImpossible)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng fabRng(4);
    ProgrammableGate gate(smallDesign(), factory, fabRng);
    Rng userRng(5);
    ASSERT_TRUE(gate.programSecret(userSecret(), userRng));
    // The attacker tries to overwrite with a known secret.
    Rng attackerRng(6);
    EXPECT_FALSE(gate.programSecret(std::vector<uint8_t>(24, 0xff),
                                    attackerRng));
    // The original secret is untouched.
    const auto secret = gate.access();
    ASSERT_TRUE(secret.has_value());
    EXPECT_EQ(*secret, userSecret());
}

TEST(ProgrammableGate, ServesTheDesignedBoundAfterProgramming)
{
    const Design d = smallDesign();
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng fabRng(7);
    ProgrammableGate gate(d, factory, fabRng);
    Rng userRng(8);
    ASSERT_TRUE(gate.programSecret(userSecret(), userRng));

    uint64_t successes = 0;
    while (gate.access().has_value())
        ++successes;
    EXPECT_GE(successes, 100u);
    EXPECT_LE(successes, d.copies * (d.perCopyBound + 2));
    EXPECT_TRUE(gate.exhausted());
}

TEST(ProgrammableGate, ProbingABlankGateBurnsItsLife)
{
    // An attacker hammering a stolen blank gate wears the hardware:
    // programming it afterwards yields a gate with less (or no) life.
    const Design d = smallDesign();
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng fabRng(9);
    ProgrammableGate gate(d, factory, fabRng);
    for (int i = 0; i < 2000; ++i)
        (void)gate.access();
    Rng userRng(10);
    ASSERT_TRUE(gate.programSecret(userSecret(), userRng));
    uint64_t successes = 0;
    while (gate.access().has_value())
        ++successes;
    // Far below the fresh bound (most copies already dead).
    EXPECT_LT(successes, 100u);
}

TEST(ProgrammableGate, RejectsBadArguments)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(11);
    const Design infeasible;
    EXPECT_THROW(ProgrammableGate(infeasible, factory, rng),
                 std::invalid_argument);
    ProgrammableGate gate(smallDesign(), factory, rng);
    Rng userRng(12);
    EXPECT_THROW(gate.programSecret({}, userRng), std::invalid_argument);
}

} // namespace
} // namespace lemons::core
