/**
 * @file
 * Tests for the limited-use connection (smartphone unlock flow),
 * including brute-force attack behaviour.
 */

#include <gtest/gtest.h>

#include "core/connection.h"
#include "core/design_solver.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

Design
smallDesign(uint64_t lab = 100)
{
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = lab;
    request.kFraction = 0.1;
    return DesignSolver(request).solve();
}

std::vector<uint8_t>
storageKey()
{
    std::vector<uint8_t> key(32);
    for (size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<uint8_t>(i * 7 + 1);
    return key;
}

LimitedUseConnection
makeConnection(uint64_t seed, const std::string &passcode = "hunter2")
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(seed);
    return LimitedUseConnection(smallDesign(), factory, passcode,
                                storageKey(), rng);
}

TEST(Connection, CorrectPasscodeUnlocks)
{
    auto conn = makeConnection(1);
    const auto key = conn.unlock("hunter2");
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, storageKey());
}

TEST(Connection, WrongPasscodeFailsButConsumesAttempt)
{
    auto conn = makeConnection(2);
    EXPECT_FALSE(conn.unlock("wrong").has_value());
    EXPECT_EQ(conn.attemptCount(), 1u);
    // Correct passcode still works afterwards.
    EXPECT_TRUE(conn.unlock("hunter2").has_value());
    EXPECT_EQ(conn.attemptCount(), 2u);
}

TEST(Connection, EmptyAndSimilarPasscodesRejected)
{
    auto conn = makeConnection(3);
    EXPECT_FALSE(conn.unlock("").has_value());
    EXPECT_FALSE(conn.unlock("hunter").has_value());
    EXPECT_FALSE(conn.unlock("hunter22").has_value());
    EXPECT_FALSE(conn.unlock("Hunter2").has_value());
}

TEST(Connection, RepeatedLegitimateUnlocksWithinLab)
{
    auto conn = makeConnection(4);
    for (int i = 0; i < 100; ++i) {
        const auto key = conn.unlock("hunter2");
        ASSERT_TRUE(key.has_value()) << "unlock " << i;
    }
    EXPECT_FALSE(conn.bricked());
}

TEST(Connection, BruteForceBricksTheDevice)
{
    auto conn = makeConnection(5);
    uint64_t attempts = 0;
    while (!conn.bricked() && attempts < 100000) {
        (void)conn.unlock("guess-" + std::to_string(attempts));
        ++attempts;
    }
    EXPECT_TRUE(conn.bricked());
    // The hardware died within the designed attack window.
    const Design d = smallDesign();
    EXPECT_LE(attempts, d.copies * (d.perCopyBound + 2));
    // Even the correct passcode is useless now.
    EXPECT_FALSE(conn.unlock("hunter2").has_value());
}

TEST(Connection, MixedUsageCountsAgainstTheSameBudget)
{
    auto conn = makeConnection(6);
    // An attacker burning attempts shortens the legitimate lifetime —
    // availability can be consumed, but confidentiality holds
    // (Section 7).
    for (int i = 0; i < 50; ++i)
        (void)conn.unlock("attack");
    int legitimate = 0;
    while (conn.unlock("hunter2").has_value())
        ++legitimate;
    const Design d = smallDesign();
    EXPECT_LE(static_cast<uint64_t>(legitimate) + 50,
              d.copies * (d.perCopyBound + 2));
}

TEST(Connection, ChangePasscodeKeepsStorageKey)
{
    auto conn = makeConnection(7);
    ASSERT_TRUE(conn.changePasscode("hunter2", "correct horse"));
    EXPECT_FALSE(conn.unlock("hunter2").has_value());
    const auto key = conn.unlock("correct horse");
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, storageKey());
}

TEST(Connection, ChangePasscodeWithWrongOldFails)
{
    auto conn = makeConnection(8);
    EXPECT_FALSE(conn.changePasscode("nope", "new"));
    EXPECT_TRUE(conn.unlock("hunter2").has_value());
}

TEST(Connection, RejectsEmptyStorageKey)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(9);
    EXPECT_THROW(LimitedUseConnection(smallDesign(), factory, "p", {}, rng),
                 std::invalid_argument);
}

TEST(Connection, AttemptCounterTracksEverything)
{
    auto conn = makeConnection(10);
    (void)conn.unlock("a");
    (void)conn.unlock("hunter2");
    (void)conn.changePasscode("hunter2", "x"); // one unlock inside
    EXPECT_EQ(conn.attemptCount(), 3u);
}

TEST(Connection, SurvivesModerateProcessVariation)
{
    // A lot with 10% alpha spread still serves the LAB: the encoded
    // design's margin absorbs it (bench_variation_ablation quantifies
    // the limit).
    const DeviceFactory factory({10.0, 12.0}, {0.1, 0.0});
    Rng rng(77);
    LimitedUseConnection conn(smallDesign(), factory, "pass",
                              storageKey(), rng);
    int unlocked = 0;
    for (int i = 0; i < 100; ++i) {
        if (conn.unlock("pass").has_value())
            ++unlocked;
    }
    EXPECT_GE(unlocked, 99);
}

} // namespace
} // namespace lemons::core
