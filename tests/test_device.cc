/**
 * @file
 * Unit tests for the simulated NEMS switch and the device factory.
 */

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"
#include "wearout/device.h"
#include "wearout/population.h"

namespace lemons::wearout {
namespace {

TEST(NemsSwitch, ActuatesUntilLifetime)
{
    NemsSwitch sw(3.0);
    EXPECT_TRUE(sw.actuate());
    EXPECT_TRUE(sw.actuate());
    EXPECT_TRUE(sw.actuate());
    EXPECT_FALSE(sw.actuate());
    EXPECT_TRUE(sw.failed());
    EXPECT_EQ(sw.cyclesUsed(), 4u);
}

TEST(NemsSwitch, FractionalLifetimeFloors)
{
    NemsSwitch sw(2.7);
    EXPECT_TRUE(sw.actuate());
    EXPECT_TRUE(sw.actuate());
    EXPECT_FALSE(sw.actuate()); // 3rd actuation exceeds 2.7
}

TEST(NemsSwitch, WearoutIsPermanent)
{
    NemsSwitch sw(1.0);
    EXPECT_TRUE(sw.actuate());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(sw.actuate());
}

TEST(NemsSwitch, ZeroLifetimeNeverWorks)
{
    NemsSwitch sw(0.0);
    EXPECT_FALSE(sw.actuate());
}

TEST(NemsSwitch, RejectsNegativeLifetime)
{
    EXPECT_THROW(NemsSwitch(-1.0), std::invalid_argument);
}

TEST(NemsSwitch, AliveAtIsConsistentWithActuate)
{
    NemsSwitch probe(5.0);
    EXPECT_TRUE(probe.aliveAt(1));
    EXPECT_TRUE(probe.aliveAt(5));
    EXPECT_FALSE(probe.aliveAt(6));
}

TEST(NemsSwitch, SampledLifetimeFollowsModel)
{
    const Weibull model(10.0, 8.0);
    Rng rng(1);
    RunningStats lifetimes;
    for (int i = 0; i < 20000; ++i) {
        const NemsSwitch sw(model, rng);
        lifetimes.add(sw.lifetime());
    }
    EXPECT_NEAR(lifetimes.mean(), model.mttf(), 0.05);
}

TEST(DeviceFactory, NoVariationMatchesNominal)
{
    const DeviceFactory factory({10.0, 8.0}, ProcessVariation::none());
    Rng rng(2);
    RunningStats lifetimes;
    for (int i = 0; i < 20000; ++i)
        lifetimes.add(factory.sampleLifetime(rng));
    EXPECT_NEAR(lifetimes.mean(), factory.nominalModel().mttf(), 0.05);
}

TEST(DeviceFactory, AlphaVariationWidensSpread)
{
    Rng rngA(3);
    Rng rngB(3);
    const DeviceFactory exact({10.0, 8.0}, ProcessVariation::none());
    const DeviceFactory varied({10.0, 8.0}, {0.3, 0.0});
    RunningStats exactStats, variedStats;
    for (int i = 0; i < 20000; ++i) {
        exactStats.add(exact.sampleLifetime(rngA));
        variedStats.add(varied.sampleLifetime(rngB));
    }
    EXPECT_GT(variedStats.stddev(), 1.5 * exactStats.stddev());
}

TEST(DeviceFactory, FabricateManyCreatesIndependentDevices)
{
    const DeviceFactory factory({5.0, 2.0}, ProcessVariation::none());
    Rng rng(4);
    auto devices = factory.fabricateMany(rng, 100);
    ASSERT_EQ(devices.size(), 100u);
    // Lifetimes should not all be identical.
    bool anyDifferent = false;
    for (size_t i = 1; i < devices.size(); ++i)
        if (devices[i].lifetime() != devices[0].lifetime())
            anyDifferent = true;
    EXPECT_TRUE(anyDifferent);
}

TEST(DeviceFactory, RejectsBadSpec)
{
    EXPECT_THROW(DeviceFactory({0.0, 1.0}, ProcessVariation::none()),
                 std::invalid_argument);
    EXPECT_THROW(DeviceFactory({1.0, 0.0}, ProcessVariation::none()),
                 std::invalid_argument);
    EXPECT_THROW(DeviceFactory({1.0, 1.0}, {-0.1, 0.0}),
                 std::invalid_argument);
}

TEST(DeviceSpecs, PaperMemsFitsAreAvailable)
{
    // Slack et al. fits quoted in Section 2.2.
    EXPECT_DOUBLE_EQ(specGeometricVariation.alpha, 2.6e6);
    EXPECT_DOUBLE_EQ(specGeometricVariation.beta, 12.94);
    EXPECT_DOUBLE_EQ(specElasticityVariation.alpha, 2.2e6);
    EXPECT_DOUBLE_EQ(specElasticityVariation.beta, 7.2);
    EXPECT_DOUBLE_EQ(specResistanceVariation.alpha, 1.8e6);
    EXPECT_DOUBLE_EQ(specResistanceVariation.beta, 8.58);
}

} // namespace
} // namespace lemons::wearout
