/**
 * @file
 * Unit, property, and statistical-secrecy tests for Shamir sharing.
 */

#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "shamir/shamir.h"
#include "util/rng.h"

namespace lemons::shamir {
namespace {

std::vector<uint8_t>
randomSecret(Rng &rng, size_t size)
{
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

TEST(Shamir, RejectsBadParameters)
{
    EXPECT_THROW(Scheme(0, 5), std::invalid_argument);
    EXPECT_THROW(Scheme(6, 5), std::invalid_argument);
    EXPECT_THROW(Scheme(1, 256), std::invalid_argument);
}

TEST(Shamir, SplitProducesNTaggedShares)
{
    const Scheme scheme(3, 7);
    Rng rng(1);
    const auto shares = scheme.split({1, 2, 3}, rng);
    ASSERT_EQ(shares.size(), 7u);
    for (size_t i = 0; i < shares.size(); ++i) {
        EXPECT_EQ(shares[i].index, i + 1);
        EXPECT_EQ(shares[i].payload.size(), 3u);
    }
}

TEST(Shamir, CombineFirstKShares)
{
    const Scheme scheme(3, 7);
    Rng rng(2);
    const auto secret = randomSecret(rng, 32);
    auto shares = scheme.split(secret, rng);
    shares.resize(3);
    const auto recovered = scheme.combine(shares);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, secret);
}

TEST(Shamir, CombineWithExtraShares)
{
    const Scheme scheme(2, 6);
    Rng rng(3);
    const auto secret = randomSecret(rng, 16);
    const auto shares = scheme.split(secret, rng);
    const auto recovered = scheme.combine(shares); // all six
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, secret);
}

TEST(Shamir, TooFewSharesFails)
{
    const Scheme scheme(4, 6);
    Rng rng(4);
    auto shares = scheme.split(randomSecret(rng, 8), rng);
    shares.resize(3);
    EXPECT_FALSE(scheme.combine(shares).has_value());
}

TEST(Shamir, DuplicateShareRejected)
{
    const Scheme scheme(2, 4);
    Rng rng(5);
    const auto shares = scheme.split(randomSecret(rng, 8), rng);
    EXPECT_FALSE(scheme.combine({shares[1], shares[1]}).has_value());
}

TEST(Shamir, OutOfRangeIndexRejected)
{
    const Scheme scheme(2, 4);
    Rng rng(6);
    auto shares = scheme.split(randomSecret(rng, 8), rng);
    shares[0].index = 0;
    EXPECT_FALSE(scheme.combine({shares[0], shares[1]}).has_value());
    shares[1].index = 9;
    EXPECT_FALSE(scheme.combine({shares[1], shares[2]}).has_value());
}

TEST(Shamir, MismatchedPayloadSizesRejected)
{
    const Scheme scheme(2, 4);
    Rng rng(7);
    auto shares = scheme.split(randomSecret(rng, 8), rng);
    shares[1].payload.pop_back();
    EXPECT_FALSE(scheme.combine({shares[0], shares[1]}).has_value());
}

TEST(Shamir, EmptySecretRoundTrips)
{
    const Scheme scheme(2, 3);
    Rng rng(8);
    const auto shares = scheme.split({}, rng);
    const auto recovered = scheme.combine(shares);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_TRUE(recovered->empty());
}

TEST(Shamir, KEqualsOneSharesAreTheSecret)
{
    // (1, n): every share alone is the secret (degree-0 polynomial).
    const Scheme scheme(1, 4);
    Rng rng(9);
    const std::vector<uint8_t> secret = {9, 8, 7};
    const auto shares = scheme.split(secret, rng);
    for (const auto &share : shares)
        EXPECT_EQ(share.payload, secret);
}

TEST(Shamir, CorruptedShareChangesResult)
{
    const Scheme scheme(2, 2);
    Rng rng(10);
    const auto secret = randomSecret(rng, 8);
    auto shares = scheme.split(secret, rng);
    shares[0].payload[0] ^= 0xff;
    const auto recovered = scheme.combine(shares);
    ASSERT_TRUE(recovered.has_value()); // no redundancy to detect it
    EXPECT_NE(*recovered, secret);
}

/**
 * Information-theoretic secrecy, statistically: with k-1 shares, each
 * share byte is uniform regardless of the secret. Splitting the two
 * extreme secrets 0x00 and 0xff many times must produce share-byte
 * distributions that are both near-uniform.
 */
TEST(Shamir, KMinusOneSharesLookUniform)
{
    const Scheme scheme(2, 2);
    const int trials = 65536;
    std::array<int, 2> chiSq{};
    for (size_t pass = 0; pass < 2; ++pass) {
        const std::vector<uint8_t> secret(1,
                                          pass == 0 ? uint8_t{0x00}
                                                    : uint8_t{0xff});
        Rng rng(4242 + pass);
        std::array<int, 256> counts{};
        for (int i = 0; i < trials; ++i) {
            const auto shares = scheme.split(secret, rng);
            ++counts[shares[0].payload[0]];
        }
        double chi = 0.0;
        const double expected = trials / 256.0;
        for (int c : counts)
            chi += (c - expected) * (c - expected) / expected;
        // 255 dof: mean 255, sd ~22.6; 400 is ~6 sigma.
        EXPECT_LT(chi, 400.0) << "secret pass " << pass;
        chiSq[pass] = static_cast<int>(chi);
    }
    // And the two distributions should not be identical artifacts.
    EXPECT_NE(chiSq[0], chiSq[1]);
}

/** Property sweep over (k, n): random k-subsets always reconstruct. */
class ShamirSubsetProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(ShamirSubsetProperty, EveryKSubsetRecovers)
{
    const auto [k, n] = GetParam();
    const Scheme scheme(k, n);
    Rng rng(31337 + 3 * k + n);
    const auto secret = randomSecret(rng, 24);
    const auto shares = scheme.split(secret, rng);

    for (int trial = 0; trial < 100; ++trial) {
        std::vector<Share> subset(shares.begin(), shares.end());
        for (size_t i = 0; i < k; ++i) {
            const size_t j =
                i + static_cast<size_t>(rng.nextBelow(subset.size() - i));
            std::swap(subset[i], subset[j]);
        }
        subset.resize(k);
        const auto recovered = scheme.combine(subset);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(*recovered, secret);
    }
}

INSTANTIATE_TEST_SUITE_P(
    KnGrid, ShamirSubsetProperty,
    ::testing::Values(std::make_tuple<size_t, size_t>(1, 3),
                      std::make_tuple<size_t, size_t>(2, 3),
                      std::make_tuple<size_t, size_t>(3, 5),
                      std::make_tuple<size_t, size_t>(8, 128),
                      std::make_tuple<size_t, size_t>(30, 60),
                      std::make_tuple<size_t, size_t>(18, 175),
                      std::make_tuple<size_t, size_t>(128, 255)));

} // namespace
} // namespace lemons::shamir
