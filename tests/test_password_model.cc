/**
 * @file
 * Unit tests for the password-guessability model, anchored at the
 * paper's quoted data points (Sections 3, 4.1, 4.3.3).
 */

#include <gtest/gtest.h>

#include "crypto/password_model.h"
#include "util/rng.h"

namespace lemons::crypto {
namespace {

TEST(PasswordModel, PaperAnchorsHold)
{
    const PasswordModel model;
    // ~1 % of passwords crackable within 100,000 guesses.
    EXPECT_NEAR(model.crackedFraction(100000), 0.01, 1e-12);
    // ~2 % within 200,000 guesses.
    EXPECT_NEAR(model.crackedFraction(200000), 0.02, 1e-12);
}

TEST(PasswordModel, WithinLabOnlyFewPasswordsFall)
{
    // "only a few very popular passwords can be guessed within 91,250
    // attempts" — under 1 %.
    const PasswordModel model;
    EXPECT_LT(model.crackedFraction(91250), 0.01);
    EXPECT_GT(model.crackedFraction(91250), 0.0);
}

TEST(PasswordModel, CurveIsMonotone)
{
    const PasswordModel model;
    double prev = 0.0;
    for (double g = 0.0; g <= 1e7; g += 1e5) {
        const double f = model.crackedFraction(g);
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(PasswordModel, SaturatesAtOne)
{
    const PasswordModel model;
    EXPECT_DOUBLE_EQ(model.crackedFraction(1e12), 1.0);
}

TEST(PasswordModel, ZeroGuessesCrackNothing)
{
    const PasswordModel model;
    EXPECT_DOUBLE_EQ(model.crackedFraction(0.0), 0.0);
    EXPECT_DOUBLE_EQ(model.crackedFraction(-5.0), 0.0);
}

TEST(PasswordModel, InverseRoundTrips)
{
    const PasswordModel model;
    for (double f : {0.001, 0.01, 0.02, 0.5, 1.0}) {
        const double g = model.guessesForFraction(f);
        EXPECT_NEAR(model.crackedFraction(g), f, 1e-9) << "f = " << f;
    }
}

TEST(PasswordModel, InverseRejectsBadFraction)
{
    const PasswordModel model;
    EXPECT_THROW(model.guessesForFraction(0.0), std::invalid_argument);
    EXPECT_THROW(model.guessesForFraction(1.5), std::invalid_argument);
}

TEST(PasswordModel, RejectionFilterZeroesTheHead)
{
    // Software rejecting the top 1 % of passwords means no user
    // password falls within the attacker's first 100,000 guesses
    // (Section 4.3.3 / Fig 4d).
    const PasswordModel filtered = PasswordModel().withPopularRejected(0.01);
    EXPECT_DOUBLE_EQ(filtered.crackedFraction(99999), 0.0);
    EXPECT_GT(filtered.crackedFraction(150000), 0.0);
}

TEST(PasswordModel, RejectionFiltersCompose)
{
    const PasswordModel twice =
        PasswordModel().withPopularRejected(0.01).withPopularRejected(
            0.0101010101);
    const PasswordModel once = PasswordModel().withPopularRejected(0.02);
    EXPECT_NEAR(twice.crackedFraction(300000), once.crackedFraction(300000),
                1e-9);
}

TEST(PasswordModel, RejectionRejectsBadFraction)
{
    EXPECT_THROW(PasswordModel().withPopularRejected(1.0),
                 std::invalid_argument);
    EXPECT_THROW(PasswordModel().withPopularRejected(-0.1),
                 std::invalid_argument);
}

TEST(PasswordModel, AttackSuccessMatchesCurve)
{
    const PasswordModel model;
    EXPECT_DOUBLE_EQ(model.attackSuccessProbability(100000),
                     model.crackedFraction(100000.0));
}

TEST(PasswordModel, SampledRanksFollowTheCurve)
{
    const PasswordModel model;
    Rng rng(77);
    const int trials = 200000;
    int within100k = 0;
    for (int i = 0; i < trials; ++i)
        if (model.sampleGuessRank(rng) <= 100000)
            ++within100k;
    EXPECT_NEAR(static_cast<double>(within100k) / trials, 0.01, 0.002);
}

TEST(PasswordModel, SampledRanksArePositiveAndSaturated)
{
    const PasswordModel model;
    Rng rng(78);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t rank = model.sampleGuessRank(rng);
        EXPECT_GE(rank, 1u);
        EXPECT_LE(rank, uint64_t{1} << 62);
    }
}

TEST(PasswordModel, RejectsBadConstruction)
{
    EXPECT_THROW(PasswordModel(0.0), std::invalid_argument);
    EXPECT_THROW(PasswordModel(1.5), std::invalid_argument);
    EXPECT_THROW(PasswordModel(0.01, 0.5), std::invalid_argument);
    EXPECT_THROW(PasswordModel(0.01, 1e5, 0.0), std::invalid_argument);
}

} // namespace
} // namespace lemons::crypto
