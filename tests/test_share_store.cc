/**
 * @file
 * Unit tests for read-destructive stores and NEMS-guarded shares.
 */

#include <gtest/gtest.h>

#include "arch/share_store.h"

namespace lemons::arch {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

TEST(ShareStore, NonDestructiveReadsRepeat)
{
    ShareStore store({1, 2, 3}, /*destructive=*/false);
    for (int i = 0; i < 5; ++i) {
        const auto data = store.read();
        ASSERT_TRUE(data.has_value());
        EXPECT_EQ(*data, (std::vector<uint8_t>{1, 2, 3}));
    }
    EXPECT_FALSE(store.erased());
}

TEST(ShareStore, DestructiveReadErases)
{
    ShareStore store({4, 5}, /*destructive=*/true);
    const auto first = store.read();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, (std::vector<uint8_t>{4, 5}));
    EXPECT_TRUE(store.erased());
    EXPECT_FALSE(store.read().has_value());
}

TEST(ShareStore, LowVoltageReadBypassesDestruction)
{
    // The attack the paper warns about for plain read-destructive
    // memories: reading at low voltage does not trigger erasure.
    ShareStore store({7}, /*destructive=*/true);
    const auto peek1 = store.lowVoltageRead();
    const auto peek2 = store.lowVoltageRead();
    ASSERT_TRUE(peek1.has_value());
    ASSERT_TRUE(peek2.has_value());
    EXPECT_EQ(*peek1, *peek2);
    EXPECT_FALSE(store.erased());
    // The normal read still works afterwards (nothing was destroyed).
    EXPECT_TRUE(store.read().has_value());
}

TEST(ShareStore, LowVoltageReadAfterErasureFails)
{
    ShareStore store({7}, /*destructive=*/true);
    (void)store.read();
    EXPECT_FALSE(store.lowVoltageRead().has_value());
}

TEST(GuardedShare, AccessibleWhileSwitchAlive)
{
    const DeviceFactory immortal({1e9, 8.0}, ProcessVariation::none());
    Rng rng(1);
    GuardedShare share({42}, immortal, /*destructive=*/false, rng);
    for (int i = 0; i < 100; ++i) {
        const auto data = share.access();
        ASSERT_TRUE(data.has_value());
        EXPECT_EQ((*data)[0], 42);
    }
    EXPECT_EQ(share.cyclesUsed(), 100u);
    EXPECT_FALSE(share.switchFailed());
}

TEST(GuardedShare, InaccessibleAfterWearout)
{
    // Mortal switch: mean lifetime ~3 cycles, tight shape.
    const DeviceFactory mortal({3.0, 50.0}, ProcessVariation::none());
    Rng rng(2);
    GuardedShare share({9}, mortal, /*destructive=*/false, rng);
    int successes = 0;
    for (int i = 0; i < 50; ++i)
        if (share.access().has_value())
            ++successes;
    EXPECT_GT(successes, 0);
    EXPECT_LT(successes, 10);
    EXPECT_TRUE(share.switchFailed());
    // Once worn out, access never comes back.
    EXPECT_FALSE(share.access().has_value());
}

TEST(GuardedShare, DestructiveStoreConsumedOnFirstAccess)
{
    const DeviceFactory immortal({1e9, 8.0}, ProcessVariation::none());
    Rng rng(3);
    GuardedShare share({1, 2}, immortal, /*destructive=*/true, rng);
    EXPECT_TRUE(share.access().has_value());
    // Switch still fine, but the destructive store is gone.
    EXPECT_FALSE(share.access().has_value());
    EXPECT_FALSE(share.switchFailed());
}

} // namespace
} // namespace lemons::arch
