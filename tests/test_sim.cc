/**
 * @file
 * Unit tests for the Monte Carlo engine and empirical curves.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/empirical.h"
#include "sim/monte_carlo.h"
#include "wearout/weibull.h"

namespace lemons::sim {
namespace {

TEST(MonteCarlo, RejectsZeroTrials)
{
    EXPECT_THROW(MonteCarlo(1, 0), std::invalid_argument);
}

TEST(MonteCarlo, DeterministicAcrossRuns)
{
    const MonteCarlo engine(42, 1000);
    const auto metric = [](Rng &rng) { return rng.nextDouble(); };
    const auto a = engine.run(metric).stats;
    const auto b = engine.run(metric).stats;
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

TEST(MonteCarlo, DifferentSeedsDiffer)
{
    const auto metric = [](Rng &rng) { return rng.nextDouble(); };
    const auto a = MonteCarlo(1, 1000).run(metric).stats;
    const auto b = MonteCarlo(2, 1000).run(metric).stats;
    EXPECT_NE(a.mean(), b.mean());
}

TEST(MonteCarlo, TrialsAreIndependentOfEachOther)
{
    // Trial i's value must not depend on how many trials run.
    const auto metric = [](Rng &rng) { return rng.nextDouble(); };
    const auto small = MonteCarlo(7, 10).run(metric).samples;
    const auto large = MonteCarlo(7, 100).run(metric).samples;
    for (size_t i = 0; i < small.size(); ++i)
        EXPECT_EQ(small[i], large[i]) << "trial " << i;
}

TEST(MonteCarlo, UniformMeanIsHalf)
{
    const auto stats = MonteCarlo(3, 100000)
                           .run([](Rng &rng) { return rng.nextDouble(); })
                           .stats;
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(MonteCarlo, ProbabilityEstimateWithInterval)
{
    // Seeded coverage check: a 95% interval misses the true value for
    // ~5% of seeds by construction, so the fixed seed is one whose
    // interval covers 0.2 under the definitional Philox trial stream.
    const auto ci = MonteCarlo(6, 40000).estimateProbability(
        [](Rng &rng) { return rng.nextDouble() < 0.2; });
    EXPECT_NEAR(ci.estimate, 0.2, 0.01);
    EXPECT_LT(ci.low, 0.2);
    EXPECT_GT(ci.high, 0.2);
}

TEST(MonteCarlo, SamplesSizeMatchesTrials)
{
    const auto samples =
        MonteCarlo(9, 123).run([](Rng &) { return 1.0; }).samples;
    EXPECT_EQ(samples.size(), 123u);
}

TEST(MonteCarlo, ParallelSamplesAreBitIdenticalToSerial)
{
    const MonteCarlo engine(77, 5000);
    const auto metric = [](Rng &rng) {
        double acc = 0.0;
        for (int i = 0; i < 8; ++i)
            acc += rng.nextDouble();
        return acc;
    };
    const auto serial = engine.run(metric).samples;
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        const auto parallel =
            engine.run(metric, {.threads = threads}).samples;
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(parallel[i], serial[i])
                << "threads=" << threads << " trial=" << i;
    }
}

TEST(MonteCarlo, ParallelWithMoreThreadsThanTrials)
{
    const MonteCarlo engine(78, 3);
    const auto samples =
        engine.run([](Rng &rng) { return rng.nextDouble(); },
                   {.threads = 16})
            .samples;
    EXPECT_EQ(samples.size(), 3u);
}

TEST(SurvivalCurve, RejectsEmpty)
{
    EXPECT_THROW(SurvivalCurve({}), std::invalid_argument);
}

TEST(SurvivalCurve, StepFunctionSemantics)
{
    const SurvivalCurve curve({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(curve.reliability(0.5), 1.0);
    EXPECT_DOUBLE_EQ(curve.reliability(1.0), 0.75); // strictly greater
    EXPECT_DOUBLE_EQ(curve.reliability(2.5), 0.5);
    EXPECT_DOUBLE_EQ(curve.reliability(4.0), 0.0);
    EXPECT_DOUBLE_EQ(curve.cdf(2.5), 0.5);
}

TEST(SurvivalCurve, QuantileAndMean)
{
    const SurvivalCurve curve({4.0, 1.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(curve.mean(), 2.5);
    EXPECT_DOUBLE_EQ(curve.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(curve.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(curve.quantile(1.0), 4.0);
}

TEST(SurvivalCurve, KsDistanceSmallForMatchingModel)
{
    const wearout::Weibull w(10.0, 2.0);
    Rng rng(123);
    const SurvivalCurve curve(w.sampleMany(rng, 20000));
    EXPECT_LT(curve.ksDistance([&](double x) { return w.cdf(x); }), 0.012);
}

TEST(SurvivalCurve, KsDistanceLargeForWrongModel)
{
    const wearout::Weibull truth(10.0, 2.0);
    const wearout::Weibull wrong(20.0, 2.0);
    Rng rng(124);
    const SurvivalCurve curve(truth.sampleMany(rng, 20000));
    EXPECT_GT(curve.ksDistance([&](double x) { return wrong.cdf(x); }),
              0.2);
}

} // namespace
} // namespace lemons::sim
