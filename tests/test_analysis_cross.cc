/**
 * @file
 * Cross-validation of the wear-budget analyzer against the Monte
 * Carlo engines: every certified access-count / probability bracket
 * must contain the corresponding simulated estimate within a
 * CI-stable sampling tolerance. The analyzer and the simulators
 * derive from the same Weibull technology by independent routes, so a
 * disagreement here means one of them drifted — exactly the
 * regression this suite exists to catch (the access-count counterpart
 * of test_verify_cross.cc).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "analysis/bracket.h"
#include "analysis/passes.h"
#include "arch/structures_sim.h"
#include "core/design_solver.h"
#include "core/usage_bounds.h"
#include "fleet/campaign.h"
#include "lint/spec_file.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/stats.h"
#include "wearout/population.h"

namespace lemons {
namespace {

using analysis::AccessBracket;

std::string
configPath(const char *name)
{
    return std::string(LEMONS_CONFIG_DIR) + "/" + name;
}

/** Bracket check with an MC slack on both sides. */
void
expectWithinBracket(double estimate, double lo, double hi, double slack,
                    const char *what)
{
    EXPECT_GE(estimate, lo - slack) << what;
    EXPECT_LE(estimate, hi + slack) << what;
}

core::Design
solvedDesign(uint64_t lab)
{
    core::DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = lab;
    request.kFraction = 0.1;
    return core::DesignSolver(request).solve();
}

const analysis::GraphBudget *
findGraph(const analysis::FileAnalysis &analysis, const char *name)
{
    for (const analysis::GraphBudget &g : analysis.graphs)
        if (g.graph == name)
            return &g;
    return nullptr;
}

/**
 * The design graph's capacity bracket at the paper's full LAB =
 * 91,250 scale must contain the simulated mean total accesses of the
 * solved architecture.
 */
TEST(AnalysisCross, DesignCapacityBracketsMonteCarlo)
{
    const analysis::FileAnalysis analyzed = analysis::analyzeSpecText(
        "[design]\n"
        "alpha = 10\nbeta = 12\nlab = 91250\nk_fraction = 0.1\n",
        "design91250.lemons");
    const analysis::GraphBudget *design = findGraph(analyzed, "design");
    ASSERT_NE(design, nullptr);
    ASSERT_FALSE(design->vacuous);

    const core::Design solved = solvedDesign(91250);
    ASSERT_TRUE(solved.feasible);
    const uint64_t trials = 24;
    const core::UsageBounds mc = core::estimateUsageBounds(
        solved, {10.0, 12.0}, wearout::ProcessVariation::none(), trials,
        0xc0551);
    // The observed min-max spread dominates the standard error of the
    // mean by a factor sqrt(trials), so it is a CI-stable slack.
    const double slack =
        (mc.maxTotalAccesses - mc.minTotalAccesses) + 1.0;
    expectWithinBracket(mc.meanTotalAccesses, design->systemCapacity.lo,
                        design->systemCapacity.hi, slack,
                        "design mean total accesses (LAB 91250)");
}

/**
 * Same containment at the small LAB = 100 mission scale, where
 * per-copy granularity effects are proportionally largest.
 */
TEST(AnalysisCross, SmallDesignCapacityBracketsMonteCarlo)
{
    const analysis::FileAnalysis analyzed = analysis::analyzeSpecText(
        "[design]\n"
        "alpha = 10\nbeta = 12\nlab = 100\nk_fraction = 0.1\n",
        "design100.lemons");
    const analysis::GraphBudget *design = findGraph(analyzed, "design");
    ASSERT_NE(design, nullptr);
    ASSERT_FALSE(design->vacuous);

    const core::Design solved = solvedDesign(100);
    ASSERT_TRUE(solved.feasible);
    const uint64_t trials = 2000;
    const core::UsageBounds mc = core::estimateUsageBounds(
        solved, {10.0, 12.0}, wearout::ProcessVariation::none(), trials,
        0xc0552);
    const double slack = (mc.q999 - mc.q001) * 0.25 + 1.0;
    expectWithinBracket(mc.meanTotalAccesses, design->systemCapacity.lo,
                        design->systemCapacity.hi, slack,
                        "design mean total accesses (LAB 100)");
}

/**
 * The workload demand envelope must contain the simulated mean of
 * accesses actually drawn by the bursty daily profile.
 */
TEST(AnalysisCross, WorkloadDemandBracketsSimulatedUsage)
{
    lint::WorkloadSpec workload;
    workload.meanPerDay = 50.0;
    workload.burstProbability = 0.05;
    workload.burstMultiplier = 3.0;
    const AccessBracket demand = analysis::workloadDemand(workload, 365);
    ASSERT_FALSE(demand.unboundedAbove());

    sim::UsageProfile profile;
    profile.meanPerDay = workload.meanPerDay;
    profile.burstProbability = workload.burstProbability;
    profile.burstMultiplier = workload.burstMultiplier;

    // A budget far above any plausible draw, so every access is
    // served and accessesServed is exactly the realized demand.
    const uint64_t bottomless = 1u << 30;
    const uint64_t trials = 300;
    Rng rng(0xa0551);
    RunningStats served;
    for (uint64_t t = 0; t < trials; ++t) {
        const sim::LifetimeOutcome outcome =
            sim::simulateUsage(profile, bottomless, 365, rng);
        served.add(static_cast<double>(outcome.accessesServed));
    }
    // 5 standard errors of the sample mean, floored at one access.
    const double slack =
        5.0 * served.stddev() / std::sqrt(static_cast<double>(trials)) +
        1.0;
    expectWithinBracket(served.mean(), demand.lo, demand.hi, slack,
                        "workload mean realized demand");
}

/**
 * The shipped fleet campaign's per-cohort premature-lockout brackets
 * must contain the simulated premature rates (Wilson slack): the
 * analyzer predicts the tail risk the campaign then measures.
 */
TEST(AnalysisCross, FleetPrematureBracketsCampaignEstimates)
{
    lint::Report report;
    const lint::ParsedSpec parsed = lint::parseSpecFile(
        configPath("fleet_smartphone.lemons"), report);
    ASSERT_FALSE(report.hasErrors()) << report.format();
    ASSERT_EQ(parsed.fleets.size(), 1u);

    lint::FleetSpec spec = parsed.fleets[0];
    spec.devices = 1500; // enough for a stable premature proportion

    fleet::CampaignOptions options;
    options.threads = 2;
    const fleet::FleetSummary summary =
        fleet::FleetCampaign(spec).run(options);
    ASSERT_TRUE(summary.complete());
    ASSERT_EQ(summary.cohorts.size(), spec.cohorts.size());

    for (size_t i = 0; i < summary.cohorts.size(); ++i) {
        const fleet::CohortResult &cohort = summary.cohorts[i];
        const verify::Interval bracket =
            analysis::prematureLockoutBracket(spec.cohorts[i], spec);
        const ProportionInterval wilson = cohort.prematureInterval();
        const double slack = (wilson.high - wilson.low) / 2.0 + 1e-3;
        expectWithinBracket(wilson.estimate, bracket.lo, bracket.hi,
                            slack, cohort.name.c_str());
    }
}

/**
 * The guessing-adversary success bracket must contain the Monte Carlo
 * estimate: spend each simulated lifetime's total accesses on guesses
 * over the declared space and average the per-trial success chance.
 */
TEST(AnalysisCross, GuessSuccessBracketsMonteCarlo)
{
    const analysis::FileAnalysis analyzed = analysis::analyzeSpecFile(
        configPath("violations/guessing_adversary.lemons"));
    ASSERT_EQ(analyzed.adversaries.size(), 1u);
    const analysis::AdversaryAnalysis &adversary = analyzed.adversaries[0];
    const double guessSpace = adversary.guessSpace;
    ASSERT_GT(guessSpace, 0.0);

    const core::Design solved = solvedDesign(91250);
    ASSERT_TRUE(solved.feasible);
    const uint64_t trials = 24;
    const core::UsageBounds mc = core::estimateUsageBounds(
        solved, {10.0, 12.0}, wearout::ProcessVariation::none(), trials,
        0xc0553);
    // E[min(1, T/G)] from the aggregate mean; valid because even the
    // largest observed lifetime stays below the guess space.
    ASSERT_LT(mc.maxTotalAccesses, guessSpace);
    const double estimate = mc.meanTotalAccesses / guessSpace;
    const double slack =
        (mc.maxTotalAccesses - mc.minTotalAccesses) / guessSpace + 1e-3;
    expectWithinBracket(estimate, adversary.success.lo,
                        adversary.success.hi, slack,
                        "guessing-adversary success");
}

/**
 * The dominant-node capacity bracket of the paper-defaults parallel
 * structure (100-of-1000) must contain the simulated mean survived
 * accesses.
 */
TEST(AnalysisCross, ParallelStructureCapacityBracketsSimulation)
{
    const analysis::FileAnalysis analyzed = analysis::analyzeSpecFile(
        configPath("paper_defaults.lemons"));
    const analysis::GraphBudget *structure =
        findGraph(analyzed, "parallel-structure");
    ASSERT_NE(structure, nullptr);
    ASSERT_FALSE(structure->vacuous);

    const wearout::DeviceFactory factory(
        {10.0, 12.0}, wearout::ProcessVariation::none());
    const uint64_t trials = 300;
    Rng rng(0xa0552);
    RunningStats survived;
    for (uint64_t t = 0; t < trials; ++t)
        survived.add(static_cast<double>(
            arch::sampleParallelSurvivedAccesses(factory, 1000, 100, rng)));
    // Standard error plus one whole access: the simulator floors each
    // lifetime while the bracket is continuous expectation.
    const double slack =
        5.0 * survived.stddev() / std::sqrt(static_cast<double>(trials)) +
        1.0;
    expectWithinBracket(survived.mean(), structure->systemCapacity.lo,
                        structure->systemCapacity.hi, slack,
                        "parallel structure survived accesses");
}

/** Same for a series chain, where the minimum lifetime dominates. */
TEST(AnalysisCross, SeriesChainCapacityBracketsSimulation)
{
    ir::Graph graph("series");
    ir::Node chain;
    chain.kind = ir::NodeKind::Series;
    chain.label = "chain";
    chain.device = {10.0, 12.0};
    chain.count = 4;
    const ir::NodeId stage = graph.add(chain);
    ir::Node out;
    out.kind = ir::NodeKind::Sink;
    out.label = "out";
    graph.connect(stage, graph.add(out));

    const analysis::GraphBudget budget = analysis::propagateBudgets(graph);
    ASSERT_FALSE(budget.vacuous);

    const wearout::DeviceFactory factory(
        {10.0, 12.0}, wearout::ProcessVariation::none());
    const uint64_t trials = 400;
    Rng rng(0xa0553);
    RunningStats survived;
    for (uint64_t t = 0; t < trials; ++t)
        survived.add(static_cast<double>(
            arch::sampleSeriesSurvivedAccesses(factory, 4, rng)));
    const double slack =
        5.0 * survived.stddev() / std::sqrt(static_cast<double>(trials)) +
        1.0;
    expectWithinBracket(survived.mean(), budget.systemCapacity.lo,
                        budget.systemCapacity.hi, slack,
                        "series chain survived accesses");
}

} // namespace
} // namespace lemons
