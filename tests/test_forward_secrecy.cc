/**
 * @file
 * Tests for the forward-secret sealed archive.
 */

#include <gtest/gtest.h>

#include "core/forward_secrecy.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

SealedArchive
makeArchive(uint64_t seed)
{
    const DeviceFactory factory(SealedArchive::defaultDeviceSpec(),
                                ProcessVariation::none());
    return SealedArchive(factory, seed);
}

TEST(SealedArchive, DefaultDesignIsSingleUse)
{
    const Design d = SealedArchive::defaultSingleUseDesign();
    ASSERT_TRUE(d.feasible);
    EXPECT_EQ(d.perCopyBound, 1u);
    EXPECT_EQ(d.copies, 1u);
    EXPECT_GE(d.reliabilityAtBound, 0.99);
    EXPECT_LT(d.reliabilityPastBound, 1e-10);
}

TEST(SealedArchive, AppendAndReadOnce)
{
    auto archive = makeArchive(1);
    const size_t index = archive.append("the eagle lands at midnight");
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_FALSE(archive.sealed(index));
    const auto plaintext = archive.read(index);
    ASSERT_TRUE(plaintext.has_value());
    EXPECT_EQ(*plaintext, "the eagle lands at midnight");
    EXPECT_TRUE(archive.sealed(index));
}

TEST(SealedArchive, SecondReadIsSealedForever)
{
    auto archive = makeArchive(2);
    const size_t index = archive.append("burn after reading");
    ASSERT_TRUE(archive.read(index).has_value());
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(archive.read(index).has_value());
}

TEST(SealedArchive, MessagesAreIndependent)
{
    auto archive = makeArchive(3);
    const size_t a = archive.append("alpha");
    const size_t b = archive.append("bravo");
    const size_t c = archive.append("charlie");
    ASSERT_TRUE(archive.read(b).has_value());
    // Reading b does not consume a or c.
    EXPECT_FALSE(archive.sealed(a));
    EXPECT_FALSE(archive.sealed(c));
    EXPECT_EQ(archive.read(a).value_or(""), "alpha");
    EXPECT_EQ(archive.read(c).value_or(""), "charlie");
}

TEST(SealedArchive, SeizureRecoversOnlyUnreadMail)
{
    auto archive = makeArchive(4);
    (void)archive.append("read me 0");
    (void)archive.append("unread 1");
    (void)archive.append("read me 2");
    (void)archive.append("unread 3");
    ASSERT_TRUE(archive.read(0).has_value());
    ASSERT_TRUE(archive.read(2).has_value());

    const auto loot = archive.seizeAndDump();
    ASSERT_EQ(loot.size(), 2u);
    EXPECT_EQ(loot[0], "unread 1");
    EXPECT_EQ(loot[1], "unread 3");
    // Nothing left after the seizure.
    for (size_t i = 0; i < archive.size(); ++i)
        EXPECT_TRUE(archive.sealed(i));
}

TEST(SealedArchive, ManyMessagesAllReadableOnce)
{
    auto archive = makeArchive(5);
    for (int i = 0; i < 50; ++i)
        (void)archive.append("message " + std::to_string(i));
    int readable = 0;
    for (size_t i = 0; i < archive.size(); ++i) {
        if (archive.read(i) == "message " + std::to_string(i))
            ++readable;
    }
    // R(1) ~ 0.998 per gate: essentially all deliver exactly once.
    EXPECT_GE(readable, 48);
}

TEST(SealedArchive, EmptyMessageRoundTrips)
{
    auto archive = makeArchive(6);
    const size_t index = archive.append("");
    const auto plaintext = archive.read(index);
    ASSERT_TRUE(plaintext.has_value());
    EXPECT_TRUE(plaintext->empty());
}

TEST(SealedArchive, RejectsBadIndex)
{
    auto archive = makeArchive(7);
    EXPECT_THROW(archive.read(0), std::invalid_argument);
    EXPECT_THROW(archive.sealed(0), std::invalid_argument);
}

TEST(SealedArchive, CustomDesignAccepted)
{
    DesignRequest request;
    request.device = {3.3, 12.0}; // ~3-cycle devices for a 3-use gate
    request.legitimateAccessBound = 3;
    request.kFraction = 0.1;
    const Design d = DesignSolver(request).solve();
    ASSERT_TRUE(d.feasible);
    const DeviceFactory factory({3.3, 12.0}, ProcessVariation::none());
    SealedArchive archive(factory, 8, d);
    const size_t index = archive.append("thrice-readable");
    EXPECT_EQ(archive.read(index).value_or(""), "thrice-readable");
}

TEST(SealedArchive, InfeasibleCustomDesignRejected)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    EXPECT_THROW(SealedArchive(factory, 9, Design{}),
                 std::invalid_argument);
}

} // namespace
} // namespace lemons::core
