/**
 * @file
 * The static verifier: interval brackets must contain the library's
 * own scalar evaluations (solver reliabilities, OTP analytics,
 * expected totals), and every V-range diagnostic must be reachable
 * from a seeded design that violates exactly that rule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "ir/graph.h"
#include "ir/lower.h"
#include "lint/rules.h"
#include "util/math.h"
#include "verify/interval.h"
#include "verify/passes.h"
#include "verify/verifier.h"

namespace lemons {
namespace {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::Obligation;
using lint::Code;
using lint::Report;
using verify::Interval;

Node
node(NodeKind kind, const char *label)
{
    Node n;
    n.kind = kind;
    n.label = label;
    return n;
}

core::DesignRequest
paperRequest()
{
    core::DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    return request;
}

// --- bracket containment against the library's scalar evaluators --------

TEST(VerifyInterval, DeviceBracketContainsWeibullSurvival)
{
    const wearout::DeviceSpec device{10.0, 12.0};
    for (const double x : {0.0, 1.0, 5.0, 9.0, 10.0, 11.0, 13.0, 30.0}) {
        const Interval bracket = verify::deviceReliability(device, x);
        const double exact = std::exp(-std::pow(x / 10.0, 12.0));
        EXPECT_LE(bracket.lo, bracket.hi);
        EXPECT_TRUE(bracket.contains(exact)) << "x = " << x;
    }
    // Degenerate technology yields a vacuous (but sound) bracket.
    const Interval vacuous = verify::deviceReliability({0.0, 12.0}, 5.0);
    EXPECT_DOUBLE_EQ(vacuous.lo, 0.0);
    EXPECT_DOUBLE_EQ(vacuous.hi, 1.0);
}

TEST(VerifyInterval, ParallelBracketContainsBinomialTail)
{
    for (const double p : {0.01, 0.37, 0.99}) {
        const Interval point{p, p};
        const Interval bracket = verify::parallelReliability(105, 11, point);
        EXPECT_TRUE(bracket.contains(binomialTailAtLeast(105, 11, p)))
            << "p = " << p;
    }
    EXPECT_DOUBLE_EQ(verify::parallelReliability(8, 0, {0.5, 0.5}).lo, 1.0);
    EXPECT_DOUBLE_EQ(verify::parallelReliability(8, 9, {0.5, 0.5}).hi, 0.0);
}

TEST(VerifyInterval, PowBracketContainsSeriesProduct)
{
    const Interval base{0.9, 0.9};
    const Interval bracket = verify::powInterval(base, 8.0);
    EXPECT_TRUE(bracket.contains(std::pow(0.9, 8.0)));
    EXPECT_DOUBLE_EQ(verify::powInterval(base, 0.0).lo, 1.0);
}

TEST(VerifyInterval, SolverCopyReliabilityWithinBracket)
{
    const auto request = paperRequest();
    const core::DesignSolver solver(request);
    const core::Design design = solver.solve();
    ASSERT_TRUE(design.feasible);

    for (uint64_t x = 1; x <= design.deathCheckAccess; ++x) {
        const Interval dev = verify::deviceReliability(
            request.device, static_cast<double>(x));
        const Interval copy = verify::parallelReliability(
            design.width, design.threshold, dev);
        const double exact = solver.copyReliability(
            design.width, design.threshold, static_cast<double>(x));
        EXPECT_TRUE(copy.contains(exact)) << "x = " << x;
    }
}

TEST(VerifyInterval, ExpectedTotalBracketContainsSolverExpectation)
{
    const auto request = paperRequest();
    const core::Design design = core::DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);

    const Interval per = verify::expectedStructureAccesses(
        request.device, design.width, design.threshold, 0);
    const double copies = static_cast<double>(design.copies);
    EXPECT_LE(per.lo * copies, design.expectedSystemTotal);
    EXPECT_GE(per.hi * copies, design.expectedSystemTotal);
}

TEST(VerifyInterval, OtpBracketsContainAnalytics)
{
    core::OtpParams params;
    params.height = 8;
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    const core::OtpAnalytics analytics(params);

    const Interval path = verify::powInterval(
        verify::deviceReliability(params.device, 1.0), params.height);
    EXPECT_TRUE(path.contains(analytics.pathSuccess()));

    const Interval receiver = verify::parallelReliability(
        params.copies, params.threshold, path);
    EXPECT_TRUE(receiver.contains(analytics.receiverSuccess()));

    const Interval adversary = verify::otpAdversarySuccess(
        params.copies, params.threshold, params.height, path);
    EXPECT_TRUE(adversary.contains(analytics.adversarySuccess()));
    EXPECT_LT(adversary.hi, 1e-6); // the paper's "effectively zero"
}

// --- every V code is reachable from a seeded violation ------------------

TEST(VerifyPasses, CleanDesignCertifiesWithNotesOnly)
{
    const auto request = paperRequest();
    const core::Design design = core::DesignSolver(request).solve();
    ASSERT_TRUE(design.feasible);
    const Report report = verify::verifyGraph(ir::lowerDesign(request, design));
    EXPECT_TRUE(report.hasCode(Code::V001));
    EXPECT_EQ(report.errorCount(), 0u) << report.format();
    EXPECT_EQ(report.warningCount(), 0u) << report.format();
}

TEST(VerifyPasses, UnsatisfiableFloorIsV002)
{
    lint::StructureSpec spec;
    spec.n = 40;
    spec.k = 4;
    spec.accessBound = 30; // per-device survival ~ exp(-3^12)
    spec.minReliability = 0.99;
    const Report report = verify::runBoundPass(ir::lowerStructure(spec));
    EXPECT_TRUE(report.hasCode(Code::V002)) << report.format();
}

TEST(VerifyPasses, ViolatedResidualCeilingIsV003)
{
    lint::StructureSpec spec;
    spec.n = 40;
    spec.k = 4;
    spec.accessBound = 5; // residual checked at access 6: R ~ 1
    spec.maxResidual = 0.01;
    const Report report = verify::runBoundPass(ir::lowerStructure(spec));
    EXPECT_TRUE(report.hasCode(Code::V003)) << report.format();
}

TEST(VerifyPasses, CriterionInsideVacuousBracketIsV004)
{
    Graph graph("inconclusive");
    Node device = node(NodeKind::Device, "broken");
    device.device = {0.0, 0.0}; // vacuous bracket [0, 1]
    const NodeId id = graph.add(std::move(device));
    Obligation floor;
    floor.kind = Obligation::Kind::SurvivalFloor;
    floor.target = id;
    floor.access = 5.0;
    floor.floor = 0.5;
    floor.hasFloor = true;
    graph.addObligation(floor);
    const Report report = verify::runBoundPass(graph);
    EXPECT_TRUE(report.hasCode(Code::V004)) << report.format();
}

TEST(VerifyPasses, CapacityBelowFloorIsV005)
{
    Graph graph("undersized");
    Node device = node(NodeKind::Device, "bank");
    device.device = {10.0, 12.0};
    const NodeId devId = graph.add(std::move(device));
    Node rep = node(NodeKind::Replicate, "copies");
    rep.count = 2;
    const NodeId repId = graph.add(std::move(rep));
    graph.connect(devId, repId);
    Obligation total;
    total.kind = Obligation::Kind::ExpectedTotal;
    total.target = repId;
    total.access = 10.0; // capacity 2 x 10 = 20 << 100
    total.floor = 100.0;
    total.hasFloor = true;
    graph.addObligation(total);
    const Report report = verify::runBoundPass(graph);
    EXPECT_TRUE(report.hasCode(Code::V005)) << report.format();
}

TEST(VerifyPasses, ExpectedTotalAboveCeilingIsV006)
{
    Graph graph("leaky");
    Node par = node(NodeKind::Parallel, "1-of-10");
    par.device = {10.0, 12.0};
    par.n = 10;
    par.k = 1;
    const NodeId parId = graph.add(std::move(par));
    Node rep = node(NodeKind::Replicate, "copies");
    rep.count = 10;
    const NodeId repId = graph.add(std::move(rep));
    graph.connect(parId, repId);
    Obligation total;
    total.kind = Obligation::Kind::ExpectedTotal;
    total.target = repId;
    total.access = 100.0;
    total.ceiling = 50.0; // E ~ 10 copies x ~12 accesses each
    total.hasCeiling = true;
    graph.addObligation(total);
    const Report report = verify::runBoundPass(graph);
    EXPECT_TRUE(report.hasCode(Code::V006)) << report.format();
}

TEST(VerifyPasses, ShallowTreeAdversaryIsV007)
{
    core::OtpParams params;
    params.height = 2; // two paths: random guessing succeeds
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    const Report report =
        verify::runBoundPass(ir::lowerOtp(params, {}, {}));
    EXPECT_TRUE(report.hasCode(Code::V007)) << report.format();
}

TEST(VerifyPasses, StarvedReceiverIsV008)
{
    core::OtpParams params;
    params.height = 8;
    params.copies = 8; // needs all 8 shares through 0.45 path success
    params.threshold = 8;
    params.device = {10.0, 1.0};
    const Report report =
        verify::runBoundPass(ir::lowerOtp(params, {}, {}));
    EXPECT_TRUE(report.hasCode(Code::V008)) << report.format();
}

TEST(VerifyPasses, DeadNodeIsV101AndFaultPlanThereIsV103)
{
    Graph graph("dead-branch");
    const NodeId src = graph.add(node(NodeKind::SecretSource, "key"));
    const NodeId gate = graph.add(node(NodeKind::Device, "gate"));
    const NodeId sink = graph.add(node(NodeKind::Sink, "out"));
    graph.connect(src, gate);
    graph.connect(gate, sink);
    Node orphan = node(NodeKind::Device, "orphan");
    orphan.device = {10.0, 12.0};
    orphan.faultPlan = fault::FaultPlan::stuckClosed(0.01);
    graph.add(std::move(orphan));

    const Report report = verify::runStructuralPass(graph);
    EXPECT_TRUE(report.hasCode(Code::V101)) << report.format();
    EXPECT_TRUE(report.hasCode(Code::V103)) << report.format();
}

TEST(VerifyPasses, OversizedParallelWidthIsV102)
{
    lint::StructureSpec spec;
    spec.n = 400; // half the width still clears the floor easily
    spec.k = 4;
    spec.accessBound = 10;
    spec.minReliability = 0.3;
    const Report report =
        verify::runStructuralPass(ir::lowerStructure(spec));
    EXPECT_TRUE(report.hasCode(Code::V102)) << report.format();
}

TEST(VerifyPasses, UnguardedSharesAreV201AndV202)
{
    lint::ShareSpec spec;
    spec.shares = 16;
    spec.threshold = 8;
    spec.unguarded = 10;
    const Report report = verify::runSecretFlowPass(ir::lowerShares(spec));
    EXPECT_TRUE(report.hasCode(Code::V201)) << report.format();
    EXPECT_TRUE(report.hasCode(Code::V202)) << report.format();

    spec.unguarded = 0;
    EXPECT_TRUE(
        verify::runSecretFlowPass(ir::lowerShares(spec)).empty());
}

TEST(VerifyPasses, SourceCutOffFromSinkIsV203)
{
    Graph graph("cut");
    const NodeId src = graph.add(node(NodeKind::SecretSource, "key"));
    const NodeId store = graph.add(node(NodeKind::Store, "island"));
    graph.add(node(NodeKind::Sink, "out")); // unreachable sink
    graph.connect(src, store);
    const Report report = verify::runSecretFlowPass(graph);
    EXPECT_TRUE(report.hasCode(Code::V203)) << report.format();
}

TEST(VerifyPasses, CyclicGraphIsV901)
{
    Graph graph("cycle");
    const NodeId a = graph.add(node(NodeKind::Device, "a"));
    const NodeId b = graph.add(node(NodeKind::Device, "b"));
    graph.connect(a, b);
    graph.connect(b, a);
    EXPECT_TRUE(verify::runBoundPass(graph).hasCode(Code::V901));
}

// --- the spec-text driver used by `lemons-lint --verify` ----------------

TEST(VerifySpec, SeededViolationConfigsFireStableCodes)
{
    const Report leak = verify::verifySpecText("[shares]\n"
                                               "n = 16\n"
                                               "k = 8\n"
                                               "unguarded = 10\n",
                                               "leak");
    EXPECT_TRUE(leak.hasCode(Code::V201));
    EXPECT_TRUE(leak.hasCode(Code::V202));
    EXPECT_GT(leak.errorCount(), 0u);

    const Report infeasible = verify::verifySpecText("[structure]\n"
                                                     "kind = parallel\n"
                                                     "n = 40\n"
                                                     "k = 4\n"
                                                     "access_bound = 30\n"
                                                     "min_reliability = 0.99\n",
                                                     "infeasible");
    EXPECT_TRUE(infeasible.hasCode(Code::V002));
    EXPECT_GT(infeasible.errorCount(), 0u);
}

TEST(VerifySpec, CleanSpecCertifiesWithoutErrors)
{
    const Report report = verify::verifySpecText("[structure]\n"
                                                 "kind = parallel\n"
                                                 "n = 105\n"
                                                 "k = 11\n"
                                                 "access_bound = 10\n"
                                                 "min_reliability = 0.99\n"
                                                 "max_residual = 0.01\n",
                                                 "clean");
    EXPECT_TRUE(report.hasCode(Code::V001)) << report.format();
    EXPECT_EQ(report.errorCount(), 0u) << report.format();
}

} // namespace
} // namespace lemons
