/**
 * @file
 * Tests for the usage-workload simulator (Poisson daily usage vs the
 * paper's fixed 50/day x 5yr budget assumption).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/workload.h"
#include "util/stats.h"

namespace lemons::sim {
namespace {

TEST(Poisson, RejectsBadMean)
{
    Rng rng(1);
    EXPECT_THROW(poissonSample(rng, -1.0), std::invalid_argument);
}

TEST(Poisson, ZeroMeanIsZero)
{
    Rng rng(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(poissonSample(rng, 0.0), 0u);
}

TEST(Poisson, SmallMeanMatchesMoments)
{
    Rng rng(3);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(static_cast<double>(poissonSample(rng, 3.7)));
    EXPECT_NEAR(stats.mean(), 3.7, 0.03);
    EXPECT_NEAR(stats.variance(), 3.7, 0.08);
}

TEST(Poisson, LargeMeanMatchesMoments)
{
    // Exercises the normal-approximation branch.
    Rng rng(4);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(static_cast<double>(poissonSample(rng, 500.0)));
    EXPECT_NEAR(stats.mean(), 500.0, 1.0);
    EXPECT_NEAR(stats.variance(), 500.0, 12.0);
}

TEST(UsageProfile, EffectiveMeanAccountsForBursts)
{
    UsageProfile plain;
    EXPECT_DOUBLE_EQ(plain.effectiveDailyMean(), 50.0);
    UsageProfile bursty;
    bursty.meanPerDay = 50.0;
    bursty.burstProbability = 0.1;
    bursty.burstMultiplier = 3.0;
    EXPECT_DOUBLE_EQ(bursty.effectiveDailyMean(), 60.0);
}

TEST(SimulateUsage, GenerousBudgetSurvives)
{
    UsageProfile profile;
    profile.meanPerDay = 50.0;
    Rng rng(5);
    const auto outcome = simulateUsage(profile, 100000, 1825, rng);
    EXPECT_TRUE(outcome.survivedHorizon);
    EXPECT_EQ(outcome.daysServed, 1825u);
    EXPECT_NEAR(static_cast<double>(outcome.accessesServed),
                50.0 * 1825.0, 2000.0);
}

TEST(SimulateUsage, TightBudgetExhausts)
{
    UsageProfile profile;
    profile.meanPerDay = 50.0;
    Rng rng(6);
    const auto outcome = simulateUsage(profile, 1000, 1825, rng);
    EXPECT_FALSE(outcome.survivedHorizon);
    EXPECT_LT(outcome.daysServed, 40u);
    EXPECT_LE(outcome.accessesServed, 1000u);
}

TEST(SimulateUsage, AccessesNeverExceedBudget)
{
    UsageProfile profile;
    profile.meanPerDay = 200.0;
    for (uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng(seed);
        const auto outcome = simulateUsage(profile, 5000, 365, rng);
        EXPECT_LE(outcome.accessesServed, 5000u);
    }
}

TEST(SimulateUsage, RejectsBadProfile)
{
    Rng rng(7);
    UsageProfile bad;
    bad.meanPerDay = 0.0;
    EXPECT_THROW(simulateUsage(bad, 10, 10, rng), std::invalid_argument);
    bad = {};
    bad.burstProbability = 1.5;
    EXPECT_THROW(simulateUsage(bad, 10, 10, rng), std::invalid_argument);
    bad = {};
    bad.burstMultiplier = 0.5;
    EXPECT_THROW(simulateUsage(bad, 10, 10, rng), std::invalid_argument);
    EXPECT_THROW(simulateUsage({}, 10, 0, rng), std::invalid_argument);
}

TEST(SurvivalProbability, PaperBudgetIsAKnifeEdge)
{
    // 91,250 = exactly 50 * 1825: a Poisson 50/day user exhausts it
    // about half the time — the fixed-budget assumption has no slack.
    UsageProfile profile;
    profile.meanPerDay = 50.0;
    const MonteCarlo engine(8, 400);
    const auto ci = survivalProbability(profile, 91250, 1825, engine);
    EXPECT_GT(ci.estimate, 0.3);
    EXPECT_LT(ci.estimate, 0.7);
}

TEST(SurvivalProbability, MWayScaledBudgetIsComfortable)
{
    // 2x the nominal budget (M = 2 replication) survives essentially
    // always for the same user.
    UsageProfile profile;
    profile.meanPerDay = 50.0;
    const MonteCarlo engine(9, 300);
    const auto ci = survivalProbability(profile, 2 * 91250, 1825, engine);
    EXPECT_EQ(ci.estimate, 1.0);
}

TEST(SurvivalProbability, MonotoneInBudget)
{
    UsageProfile profile;
    profile.meanPerDay = 50.0;
    const MonteCarlo engine(10, 300);
    double prev = 0.0;
    for (uint64_t budget : {85000u, 91250u, 95000u, 105000u}) {
        const double p =
            survivalProbability(profile, budget, 1825, engine).estimate;
        EXPECT_GE(p, prev - 0.05) << "budget " << budget;
        prev = p;
    }
}

TEST(BudgetForSurvival, FindsTheQuantile)
{
    UsageProfile profile;
    profile.meanPerDay = 50.0;
    const MonteCarlo engine(11, 400);
    const uint64_t budget =
        budgetForSurvival(profile, 1825, 0.99, engine);
    // Mean 91,250, sd = sqrt(91,250) ~ 302; the 99th percentile sits
    // ~2.3 sigma up.
    EXPECT_GT(budget, 91250u);
    EXPECT_LT(budget, 93500u);
    // And the found budget indeed survives at the target rate.
    EXPECT_GE(survivalProbability(profile, budget, 1825, engine).estimate,
              0.99);
}

TEST(BudgetForSurvival, BurstyUsersNeedMore)
{
    UsageProfile plain;
    plain.meanPerDay = 50.0;
    UsageProfile bursty = plain;
    bursty.burstProbability = 0.05;
    bursty.burstMultiplier = 4.0;
    const MonteCarlo engine(12, 300);
    EXPECT_GT(budgetForSurvival(bursty, 1825, 0.99, engine),
              budgetForSurvival(plain, 1825, 0.99, engine));
}

TEST(BudgetForSurvival, RejectsBadTarget)
{
    const MonteCarlo engine(13, 10);
    EXPECT_THROW(budgetForSurvival({}, 10, 0.0, engine),
                 std::invalid_argument);
    EXPECT_THROW(budgetForSurvival({}, 10, 1.0, engine),
                 std::invalid_argument);
}

} // namespace
} // namespace lemons::sim
