/**
 * @file
 * Tests for the limited-use targeting system (paper Section 5).
 */

#include <gtest/gtest.h>

#include "core/design_solver.h"
#include "core/targeting.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

Design
missionDesign()
{
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    return DesignSolver(request).solve();
}

std::vector<uint8_t>
missionKey()
{
    std::vector<uint8_t> key(32, 0);
    for (size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<uint8_t>(0xa0 + i);
    return key;
}

struct Rig
{
    CommandAuthority authority;
    LaunchStation station;
};

Rig
makeRig(uint64_t seed)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(seed);
    return Rig{CommandAuthority(missionKey()),
               LaunchStation(missionDesign(), factory, missionKey(), rng)};
}

TEST(Targeting, CommandRoundTrip)
{
    auto rig = makeRig(1);
    const auto cmd = rig.authority.issueCommand("strike 51.5,-0.1");
    const auto plaintext = rig.station.executeCommand(cmd);
    ASSERT_TRUE(plaintext.has_value());
    EXPECT_EQ(*plaintext, "strike 51.5,-0.1");
    EXPECT_EQ(rig.station.executedCount(), 1u);
}

TEST(Targeting, CiphertextHidesPlaintext)
{
    auto rig = makeRig(2);
    const auto cmd = rig.authority.issueCommand("abort abort abort");
    const std::string asText(cmd.ciphertext.begin(), cmd.ciphertext.end());
    EXPECT_EQ(asText.find("abort"), std::string::npos);
}

TEST(Targeting, ForgedMacRejected)
{
    auto rig = makeRig(3);
    auto cmd = rig.authority.issueCommand("strike");
    cmd.mac[0] ^= 0x01;
    EXPECT_FALSE(rig.station.executeCommand(cmd).has_value());
    EXPECT_EQ(rig.station.executedCount(), 0u);
    // But the decryption attempt still consumed hardware life.
    EXPECT_EQ(rig.station.attemptCount(), 1u);
}

TEST(Targeting, TamperedCiphertextRejected)
{
    auto rig = makeRig(4);
    auto cmd = rig.authority.issueCommand("strike");
    cmd.ciphertext[0] ^= 0xff;
    EXPECT_FALSE(rig.station.executeCommand(cmd).has_value());
}

TEST(Targeting, ReplayRejected)
{
    auto rig = makeRig(5);
    const auto cmd = rig.authority.issueCommand("strike once");
    ASSERT_TRUE(rig.station.executeCommand(cmd).has_value());
    EXPECT_FALSE(rig.station.executeCommand(cmd).has_value());
    EXPECT_EQ(rig.station.executedCount(), 1u);
}

TEST(Targeting, OutOfOrderOldCommandRejected)
{
    auto rig = makeRig(6);
    const auto first = rig.authority.issueCommand("one");
    const auto second = rig.authority.issueCommand("two");
    ASSERT_TRUE(rig.station.executeCommand(second).has_value());
    EXPECT_FALSE(rig.station.executeCommand(first).has_value());
}

TEST(Targeting, MissionBoundExecutesAllExpectedCommands)
{
    auto rig = makeRig(7);
    for (int i = 0; i < 100; ++i) {
        const auto cmd =
            rig.authority.issueCommand("cmd " + std::to_string(i));
        ASSERT_TRUE(rig.station.executeCommand(cmd).has_value())
            << "command " << i;
    }
    EXPECT_EQ(rig.station.executedCount(), 100u);
}

TEST(Targeting, StationRetiresAfterUsageBound)
{
    auto rig = makeRig(8);
    uint64_t attempts = 0;
    while (!rig.station.decommissioned() && attempts < 10000) {
        std::string name = "c";
        name += std::to_string(attempts);
        (void)rig.station.executeCommand(rig.authority.issueCommand(name));
        ++attempts;
    }
    EXPECT_TRUE(rig.station.decommissioned());
    const Design d = missionDesign();
    EXPECT_LE(attempts, d.copies * (d.perCopyBound + 2));
    // Post-retirement commands always fail.
    const auto cmd = rig.authority.issueCommand("too late");
    EXPECT_FALSE(rig.station.executeCommand(cmd).has_value());
}

TEST(Targeting, BruteForceAttackerConsumesHardwareNotSecrets)
{
    // An attacker lobbing forged commands burns the usage budget but
    // never executes anything.
    auto rig = makeRig(9);
    TargetingCommand forged;
    forged.nonce = 1;
    forged.ciphertext = {1, 2, 3};
    forged.mac.fill(0);
    uint64_t forgeries = 0;
    while (!rig.station.decommissioned() && forgeries < 10000) {
        EXPECT_FALSE(rig.station.executeCommand(forged).has_value());
        ++forgeries;
    }
    EXPECT_TRUE(rig.station.decommissioned());
    EXPECT_EQ(rig.station.executedCount(), 0u);
}

TEST(Targeting, KeystreamIsNonceDependent)
{
    const auto k1 = commandKeystream(missionKey(), 1, 16);
    const auto k2 = commandKeystream(missionKey(), 2, 16);
    EXPECT_NE(k1, k2);
}

TEST(Targeting, AuthorityRejectsEmptyKey)
{
    EXPECT_THROW(CommandAuthority({}), std::invalid_argument);
}

} // namespace
} // namespace lemons::core
