/**
 * @file
 * Tests for M-way module replication (paper Section 4.1.5).
 */

#include <gtest/gtest.h>

#include "core/design_solver.h"
#include "core/mway.h"

namespace lemons::core {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;

Design
moduleDesign()
{
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 60;
    request.kFraction = 0.1;
    return DesignSolver(request).solve();
}

std::vector<uint8_t>
storageKey()
{
    return std::vector<uint8_t>(32, 0x5a);
}

MWayReplication
makeStack(uint64_t m, uint64_t seed)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(seed);
    return MWayReplication(m, moduleDesign(), factory, "pass-0",
                           storageKey(), rng);
}

TEST(MWay, RejectsZeroModules)
{
    const DeviceFactory factory({10.0, 12.0}, ProcessVariation::none());
    Rng rng(1);
    EXPECT_THROW(MWayReplication(0, moduleDesign(), factory, "p",
                                 storageKey(), rng),
                 std::invalid_argument);
}

TEST(MWay, UnlockThroughActiveModule)
{
    auto stack = makeStack(3, 2);
    const auto key = stack.unlock("pass-0");
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, storageKey());
    EXPECT_EQ(stack.activeModule(), 0u);
}

TEST(MWay, MigrationRequiresCurrentPasscode)
{
    auto stack = makeStack(3, 3);
    EXPECT_FALSE(stack.migrate("wrong", "pass-1"));
    EXPECT_TRUE(stack.migrate("pass-0", "pass-1"));
    EXPECT_EQ(stack.activeModule(), 1u);
    EXPECT_EQ(stack.migrationCount(), 1u);
}

TEST(MWay, NewModuleUsesNewPasscodeAndSameKey)
{
    auto stack = makeStack(2, 4);
    ASSERT_TRUE(stack.migrate("pass-0", "pass-1"));
    EXPECT_FALSE(stack.unlock("pass-0").has_value());
    const auto key = stack.unlock("pass-1");
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, storageKey());
}

TEST(MWay, CannotMigratePastLastModule)
{
    auto stack = makeStack(2, 5);
    ASSERT_TRUE(stack.migrate("pass-0", "pass-1"));
    EXPECT_FALSE(stack.migrate("pass-1", "pass-2"));
    EXPECT_EQ(stack.activeModule(), 1u);
}

TEST(MWay, TotalUsageScalesWithM)
{
    // The paper's scaling claim: M modules deliver ~M times the
    // single-module usage when the user migrates proactively.
    auto one = makeStack(1, 6);
    uint64_t singleUses = 0;
    while (one.unlock("pass-0").has_value())
        ++singleUses;

    auto proactive = makeStack(3, 8);
    uint64_t proactiveUses = 0;
    for (uint64_t m = 0; m < 3; ++m) {
        std::string current = "pass-";
        current += std::to_string(m);
        for (int i = 0; i < 48; ++i) { // below the 60-access bound
            if (proactive.unlock(current).has_value())
                ++proactiveUses;
        }
        if (m + 1 < 3) {
            std::string next = "pass-";
            next += std::to_string(m + 1);
            ASSERT_TRUE(proactive.migrate(current, next));
        }
    }
    EXPECT_GE(proactiveUses, 3 * 48u - 6); // unlocks spent on migration
    EXPECT_GT(proactiveUses, singleUses);
}

TEST(MWay, ExhaustedAfterLastModuleDies)
{
    auto stack = makeStack(1, 9);
    while (stack.unlock("pass-0").has_value()) {
    }
    // Keep hammering until the module hardware is truly dead.
    for (int i = 0; i < 500 && !stack.exhausted(); ++i)
        (void)stack.unlock("pass-0");
    EXPECT_TRUE(stack.exhausted());
    EXPECT_FALSE(stack.unlock("pass-0").has_value());
    EXPECT_FALSE(stack.migrate("pass-0", "x"));
}

TEST(MWay, ScaledDailyBoundHelper)
{
    // Section 4.1.5's example: 50 uses/day at M = 10 -> 500 uses/day.
    EXPECT_EQ(MWayReplication::scaledDailyBound(50, 10), 500u);
    EXPECT_EQ(MWayReplication::scaledDailyBound(50, 1), 50u);
}

} // namespace
} // namespace lemons::core
