/**
 * @file
 * Tests for the architectural structure models against the paper's
 * Equations 5, 6, 8 and the Figure 3 techniques, including analytic vs
 * Monte Carlo cross-validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "arch/structures.h"
#include "arch/structures_sim.h"
#include "sim/monte_carlo.h"
#include "util/math.h"

namespace lemons::arch {
namespace {

using wearout::DeviceFactory;
using wearout::ProcessVariation;
using wearout::Weibull;

TEST(SeriesChain, MatchesEquationFive)
{
    const Weibull device(10.0, 8.0);
    const SeriesChain chain(device, 5);
    for (double x : {2.0, 5.0, 8.0, 10.0})
        EXPECT_NEAR(chain.reliabilityAt(x),
                    std::pow(device.reliability(x), 5.0), 1e-12);
}

TEST(SeriesChain, EquivalentDeviceHasScaledAlpha)
{
    const Weibull device(10.0, 8.0);
    const SeriesChain chain(device, 32);
    const Weibull equivalent = chain.equivalentDevice();
    EXPECT_NEAR(equivalent.alpha(), 10.0 / std::pow(32.0, 1.0 / 8.0),
                1e-12);
    for (double x : {3.0, 6.0, 9.0})
        EXPECT_NEAR(chain.reliabilityAt(x), equivalent.reliability(x),
                    1e-12);
}

TEST(SeriesChain, LengthExplosionMatchesPaperArgument)
{
    // Section 4.1.2: scaling alpha down by y needs n = y^beta devices.
    // At beta = 12, halving alpha costs 4096 devices in series.
    EXPECT_NEAR(SeriesChain::lengthForScaleFactor(2.0, 12.0), 4096.0,
                1e-9);
    // The paper's example: y at beta = 12 grows as y^12.
    EXPECT_NEAR(SeriesChain::lengthForScaleFactor(3.0, 12.0),
                std::pow(3.0, 12.0), 1e-6);
}

TEST(SeriesChain, SimulationMatchesAnalytics)
{
    const DeviceFactory factory({10.0, 8.0}, ProcessVariation::none());
    const SeriesChain chain(factory.nominalModel(), 4);
    const sim::MonteCarlo engine(11, 40000);
    // P(chain survives >= 8 whole accesses) == R(8).
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        return sampleSeriesSurvivedAccesses(factory, 4, rng) >= 8;
    });
    const double analytic = chain.reliabilityAt(8.0);
    EXPECT_GT(analytic, ci.low - 0.01);
    EXPECT_LT(analytic, ci.high + 0.01);
}

TEST(ParallelStructure, RejectsBadParameters)
{
    const Weibull device(5.0, 2.0);
    EXPECT_THROW(ParallelStructure(device, 0), std::invalid_argument);
    EXPECT_THROW(ParallelStructure(device, 4, 0), std::invalid_argument);
    EXPECT_THROW(ParallelStructure(device, 4, 5), std::invalid_argument);
}

TEST(ParallelStructure, SingleDeviceMatchesWeibull)
{
    const Weibull device(9.3, 12.0);
    const ParallelStructure structure(device, 1);
    for (double x : {5.0, 9.0, 11.0})
        EXPECT_NEAR(structure.reliabilityAt(x), device.reliability(x),
                    1e-12);
}

TEST(ParallelStructure, MatchesEquationSix)
{
    const Weibull device(9.3, 12.0);
    for (size_t n : {2u, 20u, 40u, 60u}) {
        const ParallelStructure structure(device, n);
        for (double x : {8.0, 10.0, 11.0, 12.0}) {
            const double r = device.reliability(x);
            const double expected =
                1.0 - std::pow(1.0 - r, static_cast<double>(n));
            EXPECT_NEAR(structure.reliabilityAt(x), expected, 1e-10)
                << "n=" << n << " x=" << x;
        }
    }
}

TEST(ParallelStructure, MatchesEquationEight)
{
    const Weibull device(20.0, 12.0);
    const size_t n = 60;
    for (size_t k : {10u, 20u, 30u}) {
        const ParallelStructure structure(device, n, k);
        for (double x : {16.0, 20.0, 22.0}) {
            const double r = device.reliability(x);
            // Direct Eq. 8 summation.
            double expected = 0.0;
            for (size_t i = k; i <= n; ++i)
                expected += std::exp(logBinomialPmf(n, i, r));
            EXPECT_NEAR(structure.reliabilityAt(x), expected, 1e-9)
                << "k=" << k << " x=" << x;
        }
    }
}

TEST(ParallelStructure, Figure3bParallelDevicesPushThreshold)
{
    // Fig 3b: alpha = 9.3, beta = 12; 40 parallel devices give ~98 %
    // reliability at the 10th access but only ~2.2 % at the 11th.
    const Weibull device(9.3, 12.0);
    const ParallelStructure structure(device, 40);
    EXPECT_NEAR(structure.reliabilityAt(10.0), 0.98, 0.015);
    EXPECT_NEAR(structure.reliabilityAt(11.0), 0.022, 0.01);
}

TEST(ParallelStructure, Figure3cEncodingAcceleratesDegradation)
{
    // Fig 3c: 60 devices at alpha = 20, beta = 12; the k = 30 curve
    // drops from >= 90 % to ~2 % within one access around the 20th
    // (under exact Eq. 8 the cliff sits at access 19 -> 20; the paper
    // narrates it as 20 -> 21 — a one-access reading difference noted
    // in EXPERIMENTS.md). k = 1 degrades later and slower.
    const Weibull device(20.0, 12.0);
    const ParallelStructure k30(device, 60, 30);
    EXPECT_NEAR(k30.reliabilityAt(19.0), 0.92, 0.04);
    EXPECT_NEAR(k30.reliabilityAt(20.0), 0.02, 0.02);

    const ParallelStructure k1(device, 60, 1);
    EXPECT_GT(k1.reliabilityAt(21.0), 0.9); // still alive at 21
}

TEST(ParallelStructure, DegradationWindowShrinksWithK)
{
    // Fig 3c's headline: the k = 30 window is about half the k = 1
    // window (paper: ~1 access vs ~2).
    const Weibull device(20.0, 12.0);
    const uint64_t window1 = ParallelStructure(device, 60, 1)
                                 .degradationWindow(0.9, 0.1);
    const uint64_t window30 = ParallelStructure(device, 60, 30)
                                  .degradationWindow(0.9, 0.1);
    EXPECT_LT(window30, window1);
    EXPECT_EQ(window30, 1u);
}

TEST(ParallelStructure, NearTotalKStretchesWindowAgain)
{
    // "when k is close to the total number of parallel devices...the
    // degradation window is stretched out again" — reliability starts
    // degrading much earlier at k = 60.
    const Weibull device(20.0, 12.0);
    const ParallelStructure k30(device, 60, 30);
    const ParallelStructure k60(device, 60, 60);
    EXPECT_LT(k60.reliabilityAt(17.0), k30.reliabilityAt(17.0));
}

TEST(ParallelStructure, LogFailureComplementsLogReliability)
{
    const Weibull device(14.0, 8.0);
    const ParallelStructure structure(device, 141, 15);
    for (double x : {13.0, 15.0, 16.0}) {
        const double r = std::exp(structure.logReliabilityAt(x));
        const double f = std::exp(structure.logFailureAt(x));
        EXPECT_NEAR(r + f, 1.0, 1e-9) << "x = " << x;
    }
}

TEST(ParallelStructure, SimulationMatchesAnalyticsKOne)
{
    const DeviceFactory factory({9.3, 12.0}, ProcessVariation::none());
    const ParallelStructure structure(factory.nominalModel(), 40);
    const sim::MonteCarlo engine(21, 40000);
    for (uint64_t t : {10u, 11u}) {
        const auto ci = engine.estimateProbability([&](Rng &rng) {
            return sampleParallelSurvivedAccesses(factory, 40, 1, rng) >= t;
        });
        const double analytic =
            structure.reliabilityAt(static_cast<double>(t));
        EXPECT_GT(analytic, ci.low - 0.01) << "t = " << t;
        EXPECT_LT(analytic, ci.high + 0.01) << "t = " << t;
    }
}

TEST(ParallelStructure, SimulationMatchesAnalyticsKOfN)
{
    const DeviceFactory factory({20.0, 12.0}, ProcessVariation::none());
    const ParallelStructure structure(factory.nominalModel(), 60, 30);
    const sim::MonteCarlo engine(23, 40000);
    for (uint64_t t : {20u, 21u}) {
        const auto ci = engine.estimateProbability([&](Rng &rng) {
            return sampleParallelSurvivedAccesses(factory, 60, 30, rng) >=
                   t;
        });
        const double analytic =
            structure.reliabilityAt(static_cast<double>(t));
        EXPECT_GT(analytic, ci.low - 0.01) << "t = " << t;
        EXPECT_LT(analytic, ci.high + 0.01) << "t = " << t;
    }
}

TEST(StructuresSim, SerialCopiesSumPerCopyLifetimes)
{
    const DeviceFactory factory({10.0, 8.0}, ProcessVariation::none());
    const sim::MonteCarlo engine(31, 5000);
    const auto stats = engine
                           .run([&](Rng &rng) {
                               return static_cast<double>(
                                   sampleSerialCopiesTotalAccesses(
                                       factory, 10, 1, 8, rng));
                           })
                           .stats;
    const auto perCopy = engine
                             .run([&](Rng &rng) {
                                 return static_cast<double>(
                                     sampleParallelSurvivedAccesses(
                                         factory, 10, 1, rng));
                             })
                             .stats;
    EXPECT_NEAR(stats.mean(), 8.0 * perCopy.mean(),
                0.05 * stats.mean());
}

TEST(StructuresSim, RejectsBadArguments)
{
    const DeviceFactory factory({10.0, 8.0}, ProcessVariation::none());
    Rng rng(1);
    EXPECT_THROW(sampleParallelSurvivedAccesses(factory, 0, 1, rng),
                 std::invalid_argument);
    EXPECT_THROW(sampleParallelSurvivedAccesses(factory, 4, 5, rng),
                 std::invalid_argument);
    EXPECT_THROW(sampleSeriesSurvivedAccesses(factory, 0, rng),
                 std::invalid_argument);
    EXPECT_THROW(sampleSerialCopiesTotalAccesses(factory, 2, 1, 0, rng),
                 std::invalid_argument);
}

/**
 * Property sweep: analytic k-of-n reliability is monotone in each
 * argument the way the architecture relies on.
 */
class KofNMonotonicity
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(KofNMonotonicity, ReliabilityTrends)
{
    const auto [alpha, beta] = GetParam();
    const Weibull device(alpha, beta);

    // More devices (same k): more reliable at every access.
    for (double x : {alpha * 0.5, alpha, alpha * 1.2}) {
        const double narrow = ParallelStructure(device, 20, 5)
                                  .reliabilityAt(x);
        const double wide = ParallelStructure(device, 40, 5)
                                .reliabilityAt(x);
        EXPECT_GE(wide + 1e-12, narrow) << "x = " << x;
    }
    // Higher threshold (same n): less reliable at every access.
    for (double x : {alpha * 0.5, alpha, alpha * 1.2}) {
        const double lowK = ParallelStructure(device, 40, 5)
                                .reliabilityAt(x);
        const double highK = ParallelStructure(device, 40, 20)
                                 .reliabilityAt(x);
        EXPECT_LE(highK, lowK + 1e-12) << "x = " << x;
    }
    // Reliability never increases with access count.
    const ParallelStructure structure(device, 30, 6);
    double prev = 1.0;
    for (double x = 1.0; x < 3.0 * alpha; x += 1.0) {
        const double r = structure.reliabilityAt(x);
        EXPECT_LE(r, prev + 1e-12);
        prev = r;
    }
}

INSTANTIATE_TEST_SUITE_P(
    DeviceGrid, KofNMonotonicity,
    ::testing::Combine(::testing::Values(10.0, 14.0, 20.0),
                       ::testing::Values(4.0, 8.0, 12.0, 16.0)));

} // namespace
} // namespace lemons::arch
