/**
 * @file
 * Unit tests for the fixed-bin histogram.
 */

#include <gtest/gtest.h>

#include "util/histogram.h"

namespace lemons {
namespace {

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.binCount(), 5u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binCenter(2), 5.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 8.0);
}

TEST(Histogram, CountsLandInRightBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);
    h.add(1.9);
    h.add(2.0); // exactly on edge: belongs to bin 1
    h.add(9.99);
    EXPECT_EQ(h.binValue(0), 2u);
    EXPECT_EQ(h.binValue(1), 1u);
    EXPECT_EQ(h.binValue(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowTracked)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0); // high edge is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, DensityIntegratesToCoveredFraction)
{
    Histogram h(0.0, 4.0, 4);
    for (int i = 0; i < 100; ++i)
        h.add(0.5 + static_cast<double>(i % 4));
    double integral = 0.0;
    for (size_t b = 0; b < h.binCount(); ++b)
        integral += h.density(b) * (h.binHigh(b) - h.binLow(b));
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, RenderShowsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    const std::string art = h.render(10);
    EXPECT_NE(art.find("##########"), std::string::npos);
    EXPECT_NE(art.find("#####"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RejectsOutOfRangeQueries)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_THROW(h.binValue(2), std::invalid_argument);
    EXPECT_THROW(h.density(2), std::invalid_argument);
}

} // namespace
} // namespace lemons
