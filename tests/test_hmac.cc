/**
 * @file
 * HMAC-SHA-256 (RFC 4231) and HKDF (RFC 5869) reference vectors.
 */

#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.h"

namespace lemons::crypto {
namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

std::vector<uint8_t>
repeated(uint8_t value, size_t count)
{
    return std::vector<uint8_t>(count, value);
}

std::string
hex(const std::vector<uint8_t> &data)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    for (uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

TEST(HmacSha256, Rfc4231Case1)
{
    const auto key = repeated(0x0b, 20);
    const auto mac = hmacSha256(key, bytes("Hi There"));
    EXPECT_EQ(toHex(mac),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c"
              "2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2)
{
    const auto mac =
        hmacSha256(bytes("Jefe"), bytes("what do ya want for nothing?"));
    EXPECT_EQ(toHex(mac),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
              "64ec3843");
}

TEST(HmacSha256, Rfc4231Case3)
{
    const auto mac = hmacSha256(repeated(0xaa, 20), repeated(0xdd, 50));
    EXPECT_EQ(toHex(mac),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514"
              "ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey)
{
    // Key longer than the block size must be hashed first.
    const auto mac = hmacSha256(
        repeated(0xaa, 131),
        bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
    EXPECT_EQ(toHex(mac),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
              "0ee37f54");
}

TEST(HmacSha256, EmptyKeyAndMessage)
{
    const auto mac = hmacSha256({}, {});
    EXPECT_EQ(toHex(mac),
              "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c71214"
              "4292c5ad");
}

TEST(Hkdf, Rfc5869Case1)
{
    // Basic test case with SHA-256.
    const auto ikm = repeated(0x0b, 22);
    std::vector<uint8_t> salt;
    for (uint8_t i = 0x00; i <= 0x0c; ++i)
        salt.push_back(i);
    const Digest prk = hkdfExtract(salt, ikm);
    EXPECT_EQ(toHex(prk),
              "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844a"
              "d7c2b3e5");

    // info = 0xf0f1...f9, L = 42.
    std::string info;
    for (char c = static_cast<char>(0xf0);; ++c) {
        info.push_back(c);
        if (c == static_cast<char>(0xf9))
            break;
    }
    const auto okm = hkdfExpand(prk, info, 42);
    EXPECT_EQ(hex(okm),
              "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56"
              "ecc4c5bf34007208d5b887185865");
}

TEST(Hkdf, ZeroLengthOutput)
{
    const Digest prk = hkdfExtract({}, bytes("ikm"));
    EXPECT_TRUE(hkdfExpand(prk, "ctx", 0).empty());
}

TEST(Hkdf, MultiBlockOutputIsPrefixConsistent)
{
    const Digest prk = hkdfExtract(bytes("salt"), bytes("ikm"));
    const auto long96 = hkdfExpand(prk, "ctx", 96);
    const auto short33 = hkdfExpand(prk, "ctx", 33);
    ASSERT_EQ(long96.size(), 96u);
    ASSERT_EQ(short33.size(), 33u);
    EXPECT_TRUE(std::equal(short33.begin(), short33.end(), long96.begin()));
}

TEST(Hkdf, RejectsOversizedRequest)
{
    const Digest prk = hkdfExtract({}, bytes("x"));
    EXPECT_THROW(hkdfExpand(prk, "ctx", 255 * 32 + 1),
                 std::invalid_argument);
}

TEST(Hkdf, DifferentContextsDiverge)
{
    const auto a = deriveKey(bytes("secret"), bytes("salt"), "ctx-a", 32);
    const auto b = deriveKey(bytes("secret"), bytes("salt"), "ctx-b", 32);
    EXPECT_NE(a, b);
}

TEST(Hkdf, DeterministicDerivation)
{
    const auto a = deriveKey(bytes("secret"), bytes("salt"), "ctx", 32);
    const auto b = deriveKey(bytes("secret"), bytes("salt"), "ctx", 32);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace lemons::crypto
