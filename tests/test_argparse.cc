/**
 * @file
 * Unit tests for the shared CLI option parser (util/argparse.h): the
 * one grammar lemons-lint, lemons-fleet, and lemons-bench now share.
 * Covers both value spellings (--opt value, --opt=value), every typed
 * sink, the optional-value grammar lemons-bench's --json[=PATH]
 * relies on, and the negative space — unknown options, missing and
 * malformed values, unexpected positionals — which must all land in
 * Outcome::Error with a one-line message so the CLIs exit 2.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/argparse.h"

namespace lemons {
namespace {

/** Run @p parser over a brace-list argv (argv[0] is prepended). */
ArgParser::Outcome
parse(ArgParser &parser, std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return parser.parse(static_cast<int>(args.size()), args.data());
}

TEST(ArgParse, FlagsAndBothValueSpellings)
{
    bool werror = false;
    unsigned threads = 1;
    uint64_t seed = 7;
    double scale = 1.0;
    std::string path;

    ArgParser parser("prog", "test");
    parser.flag("--werror", &werror, "w");
    parser.value("--threads", &threads, "N", "t");
    parser.value("--seed", &seed, "N", "s");
    parser.value("--scale", &scale, "F", "f");
    parser.value("--out", &path, "PATH", "o");

    EXPECT_EQ(parse(parser,
                    {"--werror", "--threads", "8", "--seed=42",
                     "--scale=0.25", "--out", "a.json"}),
              ArgParser::Outcome::Ok);
    EXPECT_TRUE(werror);
    EXPECT_EQ(threads, 8u);
    EXPECT_EQ(seed, 42u);
    EXPECT_DOUBLE_EQ(scale, 0.25);
    EXPECT_EQ(path, "a.json");
}

TEST(ArgParse, DefaultsSurviveWhenOptionsAbsent)
{
    unsigned threads = 3;
    std::string out = "keep-me";
    ArgParser parser("prog", "test");
    parser.value("--threads", &threads, "N", "t");
    parser.value("--out", &out, "PATH", "o");
    EXPECT_EQ(parse(parser, {}), ArgParser::Outcome::Ok);
    EXPECT_EQ(threads, 3u);
    EXPECT_EQ(out, "keep-me");
}

TEST(ArgParse, OptionalUint64DistinguishesAbsent)
{
    std::optional<uint64_t> deadline;
    ArgParser parser("prog", "test");
    parser.value("--deadline-ms", &deadline, "N", "d");
    EXPECT_EQ(parse(parser, {}), ArgParser::Outcome::Ok);
    EXPECT_FALSE(deadline.has_value());
    EXPECT_EQ(parse(parser, {"--deadline-ms", "250"}),
              ArgParser::Outcome::Ok);
    ASSERT_TRUE(deadline.has_value());
    EXPECT_EQ(*deadline, 250u);
}

TEST(ArgParse, OptionalValueGrammar)
{
    // "--json" alone sets the flag; "--json=path" also overrides the
    // path; "--json path" must NOT consume the next token (historical
    // lemons-bench grammar).
    bool json = false;
    std::string jsonPath = "default.json";
    std::vector<std::string> rest;
    ArgParser parser("prog", "test");
    parser.optionalValue("--json", &json, &jsonPath, "PATH", "j");
    parser.positionals("<operand>...", &rest, "operands");

    EXPECT_EQ(parse(parser, {"--json"}), ArgParser::Outcome::Ok);
    EXPECT_TRUE(json);
    EXPECT_EQ(jsonPath, "default.json");

    json = false;
    EXPECT_EQ(parse(parser, {"--json=custom.json"}),
              ArgParser::Outcome::Ok);
    EXPECT_TRUE(json);
    EXPECT_EQ(jsonPath, "custom.json");

    json = false;
    jsonPath = "default.json";
    EXPECT_EQ(parse(parser, {"--json", "notapath"}),
              ArgParser::Outcome::Ok);
    EXPECT_TRUE(json);
    EXPECT_EQ(jsonPath, "default.json");
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], "notapath");
}

TEST(ArgParse, RepeatedAppendsEveryOccurrence)
{
    std::vector<std::string> defines;
    ArgParser parser("prog", "test");
    parser.repeated("--define", &defines, "KV", "d");
    EXPECT_EQ(parse(parser, {"--define", "a", "--define=b"}),
              ArgParser::Outcome::Ok);
    ASSERT_EQ(defines.size(), 2u);
    EXPECT_EQ(defines[0], "a");
    EXPECT_EQ(defines[1], "b");
}

TEST(ArgParse, PositionalsCollectedInOrder)
{
    std::vector<std::string> files;
    bool verify = false;
    ArgParser parser("prog", "test");
    parser.flag("--verify", &verify, "v");
    parser.positionals("<spec-file>...", &files, "files");
    EXPECT_EQ(parse(parser, {"a.lemons", "--verify", "b.lemons"}),
              ArgParser::Outcome::Ok);
    EXPECT_TRUE(verify);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], "a.lemons");
    EXPECT_EQ(files[1], "b.lemons");
}

TEST(ArgParse, UnknownOptionIsError)
{
    bool flag = false;
    ArgParser parser("prog", "test");
    parser.flag("--known", &flag, "k");
    EXPECT_EQ(parse(parser, {"--bogus"}), ArgParser::Outcome::Error);
    EXPECT_NE(parser.error().find("--bogus"), std::string::npos);
    EXPECT_FALSE(flag);
}

TEST(ArgParse, FlagRejectsInlineValue)
{
    bool flag = false;
    ArgParser parser("prog", "test");
    parser.flag("--werror", &flag, "w");
    EXPECT_EQ(parse(parser, {"--werror=yes"}),
              ArgParser::Outcome::Error);
    EXPECT_FALSE(flag);
}

TEST(ArgParse, MissingValueIsError)
{
    unsigned threads = 1;
    ArgParser parser("prog", "test");
    parser.value("--threads", &threads, "N", "t");
    EXPECT_EQ(parse(parser, {"--threads"}), ArgParser::Outcome::Error);
    EXPECT_NE(parser.error().find("--threads"), std::string::npos);
    EXPECT_EQ(threads, 1u);
}

TEST(ArgParse, MalformedNumbersAreErrors)
{
    // Full-token validation: "8x" must be rejected, not parsed as 8.
    unsigned threads = 1;
    uint64_t seed = 7;
    double scale = 1.0;
    ArgParser parser("prog", "test");
    parser.value("--threads", &threads, "N", "t");
    parser.value("--seed", &seed, "N", "s");
    parser.value("--scale", &scale, "F", "f");

    EXPECT_EQ(parse(parser, {"--threads", "8x"}),
              ArgParser::Outcome::Error);
    EXPECT_EQ(threads, 1u);
    EXPECT_EQ(parse(parser, {"--seed", ""}), ArgParser::Outcome::Error);
    EXPECT_EQ(seed, 7u);
    EXPECT_EQ(parse(parser, {"--scale", "fast"}),
              ArgParser::Outcome::Error);
    EXPECT_DOUBLE_EQ(scale, 1.0);
}

TEST(ArgParse, UndeclaredPositionalIsError)
{
    bool flag = false;
    ArgParser parser("prog", "test");
    parser.flag("--werror", &flag, "w");
    EXPECT_EQ(parse(parser, {"stray.lemons"}),
              ArgParser::Outcome::Error);
}

TEST(ArgParse, HelpOutcomeAndGeneratedText)
{
    bool flag = false;
    unsigned threads = 1;
    ArgParser parser("prog", "does things");
    parser.flag("--werror", &flag, "treat warnings as errors");
    parser.value("--threads", &threads, "N", "worker threads");
    parser.epilog("examples:\n  prog --werror");

    EXPECT_EQ(parse(parser, {"--help"}), ArgParser::Outcome::Help);
    EXPECT_EQ(parse(parser, {"-h"}), ArgParser::Outcome::Help);

    const std::string help = parser.helpText();
    EXPECT_NE(help.find("usage: prog"), std::string::npos);
    EXPECT_NE(help.find("--werror"), std::string::npos);
    EXPECT_NE(help.find("--threads N"), std::string::npos);
    EXPECT_NE(help.find("treat warnings as errors"), std::string::npos);
    EXPECT_NE(help.find("examples:"), std::string::npos);
}

} // namespace
} // namespace lemons
