/**
 * @file
 * Concurrency stress tests for the parallel Monte Carlo paths. These
 * are the tests the TSan CI job leans on: they hammer the pooled
 * engine run() path (sample-keeping, streaming, and fault-capturing
 * configurations) and the SharedRunningStats accumulator with more
 * workers than cores so any data race in the reduction or
 * error-capture plumbing has a real chance to interleave.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/monte_carlo.h"
#include "util/stats.h"

namespace lemons {
namespace {

constexpr uint64_t kSeed = 0xC0FFEEULL;
constexpr unsigned kThreads = 8; // deliberately oversubscribed

double
noisyMetric(Rng &rng)
{
    // A little arithmetic per trial so workers overlap in the metric,
    // not just in the reduction.
    const double u = rng.nextDouble();
    return std::sqrt(u) + 0.25 * rng.nextDouble();
}

TEST(ParallelStress, SamplesMatchSerialBitForBit)
{
    const sim::MonteCarlo mc(kSeed, 20'000);
    const std::vector<double> serial =
        mc.run(noisyMetric, {.faults = sim::FaultPolicy::Rethrow})
            .samples;
    for (int repeat = 0; repeat < 3; ++repeat) {
        const std::vector<double> parallel =
            mc.run(noisyMetric, {.threads = kThreads,
                                 .faults = sim::FaultPolicy::Rethrow})
                .samples;
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(parallel[i], serial[i]) << "trial " << i;
    }
}

TEST(ParallelStress, StatsMatchSerialAggregates)
{
    const sim::MonteCarlo mc(kSeed, 50'000);
    const RunningStats serial =
        mc.run(noisyMetric, {.faults = sim::FaultPolicy::Rethrow}).stats;
    const RunningStats parallel =
        mc.run(noisyMetric, {.threads = kThreads,
                             .keepSamples = false,
                             .faults = sim::FaultPolicy::Rethrow})
            .stats;
    EXPECT_EQ(parallel.count(), serial.count());
    EXPECT_EQ(parallel.nonFiniteCount(), serial.nonFiniteCount());
    EXPECT_EQ(parallel.min(), serial.min());
    EXPECT_EQ(parallel.max(), serial.max());
    EXPECT_NEAR(parallel.mean(), serial.mean(), 1e-12);
    EXPECT_NEAR(parallel.variance(), serial.variance(), 1e-12);
}

TEST(ParallelStress, StatsAreDeterministicPerThreadCount)
{
    const sim::MonteCarlo mc(kSeed, 10'000);
    const sim::McRunOptions streaming{
        .threads = kThreads,
        .keepSamples = false,
        .faults = sim::FaultPolicy::Rethrow};
    const RunningStats first = mc.run(noisyMetric, streaming).stats;
    for (int repeat = 0; repeat < 5; ++repeat) {
        const RunningStats again = mc.run(noisyMetric, streaming).stats;
        EXPECT_EQ(again.count(), first.count());
        EXPECT_EQ(again.mean(), first.mean());
        EXPECT_EQ(again.variance(), first.variance());
    }
}

TEST(ParallelStress, StatsQuarantineNonFinite)
{
    const sim::MonteCarlo mc(kSeed, 8'192);
    const auto metric = [](Rng &rng) {
        const double u = rng.nextDouble();
        return u < 0.01 ? std::nan("") : u;
    };
    const RunningStats serial =
        mc.run(metric, {.faults = sim::FaultPolicy::Rethrow}).stats;
    const RunningStats parallel =
        mc.run(metric, {.threads = kThreads,
                        .keepSamples = false,
                        .faults = sim::FaultPolicy::Rethrow})
            .stats;
    EXPECT_GT(serial.nonFiniteCount(), 0u);
    EXPECT_EQ(parallel.nonFiniteCount(), serial.nonFiniteCount());
    EXPECT_EQ(parallel.count(), serial.count());
}

TEST(ParallelStress, LowestThrowingTrialWinsDeterministically)
{
    const sim::MonteCarlo mc(kSeed, 4'096);
    const auto metric = [](Rng &rng) {
        const double u = rng.nextDouble();
        if (u > 0.999)
            throw std::runtime_error("poisoned trial");
        return u;
    };
    std::string firstMessage;
    try {
        static_cast<void>(
            mc.run(metric, {.threads = kThreads,
                            .faults = sim::FaultPolicy::Rethrow}));
        FAIL() << "expected the poisoned trial to rethrow";
    } catch (const std::runtime_error &e) {
        firstMessage = e.what();
    }
    EXPECT_EQ(firstMessage, "poisoned trial");
    // The capture path must agree on which trial failed first.
    const sim::TrialReport report =
        mc.run([&](Rng &rng) { return metric(rng); },
               {.threads = kThreads});
    ASSERT_FALSE(report.failedTrials.empty());
    const sim::TrialReport serialReport = mc.run(
        [&](Rng &rng) { return metric(rng); }, {.threads = 1});
    EXPECT_EQ(report.failedTrials, serialReport.failedTrials);
    EXPECT_EQ(report.firstError, serialReport.firstError);
}

TEST(ParallelStress, ReportStressRun)
{
    const sim::MonteCarlo mc(kSeed, 16'384);
    const auto metric = [](Rng &rng, uint64_t trial) {
        const double u = rng.nextDouble();
        if (trial % 1009 == 0)
            throw std::runtime_error("periodic failure");
        if (trial % 997 == 0)
            return std::numeric_limits<double>::infinity();
        return u;
    };
    for (int repeat = 0; repeat < 3; ++repeat) {
        const sim::TrialReport report =
            mc.run(metric, {.threads = kThreads});
        EXPECT_EQ(report.trials, mc.trials());
        EXPECT_FALSE(report.complete());
        EXPECT_EQ(report.firstError, "periodic failure");
        EXPECT_EQ(report.failedTrials.size(), (mc.trials() + 1008) / 1009);
        EXPECT_EQ(report.cleanTrials(),
                  report.trials - report.failedTrials.size() -
                      report.nonFiniteTrials.size());
        EXPECT_EQ(report.stats.count(), report.cleanTrials());
    }
}

TEST(ParallelStress, SharedRunningStatsConcurrentAdds)
{
    SharedRunningStats shared;
    constexpr unsigned kWriters = 8;
    constexpr uint64_t kPerWriter = 25'000;
    std::atomic<uint64_t> started{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&shared, &started, w] {
            started.fetch_add(1);
            while (started.load() < kWriters) {
            } // spin so all writers contend at once
            RunningStats local;
            for (uint64_t i = 0; i < kPerWriter; ++i) {
                const double x =
                    static_cast<double>(w * kPerWriter + i);
                if (i % 2 == 0)
                    shared.add(x); // direct contended path
                else
                    local.add(x); // bulk path
            }
            shared.mergeFrom(local);
        });
    }
    for (auto &t : writers)
        t.join();
    const RunningStats total = shared.snapshot();
    const uint64_t expected = uint64_t{kWriters} * kPerWriter;
    EXPECT_EQ(total.count(), expected);
    EXPECT_EQ(total.min(), 0.0);
    EXPECT_EQ(total.max(), static_cast<double>(expected - 1));
    // Sum of 0..N-1 => mean (N-1)/2.
    EXPECT_NEAR(total.mean(), static_cast<double>(expected - 1) / 2.0,
                1e-6 * static_cast<double>(expected));
}

TEST(ParallelStress, MergeAgreesWithSingleAccumulator)
{
    RunningStats whole;
    RunningStats left;
    RunningStats right;
    RunningStats emptyMerged;
    for (int i = 0; i < 10'000; ++i) {
        const double x = std::sin(0.1 * i) * (i % 7 == 0 ? 100.0 : 1.0);
        whole.add(x);
        (i < 3'000 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);

    // Merging into / from an empty accumulator is the identity, and the
    // quarantine tally survives both directions.
    RunningStats quarantine;
    quarantine.add(std::nan(""));
    emptyMerged.merge(quarantine);
    EXPECT_EQ(emptyMerged.count(), 0u);
    EXPECT_EQ(emptyMerged.nonFiniteCount(), 1u);
    emptyMerged.merge(whole);
    EXPECT_EQ(emptyMerged.count(), whole.count());
    EXPECT_EQ(emptyMerged.nonFiniteCount(), 1u);
    RunningStats other;
    other.merge(RunningStats{});
    EXPECT_EQ(other.count(), 0u);
}

} // namespace
} // namespace lemons
