/**
 * @file
 * Unit tests for the lemons::engine execution substrate: the
 * persistent thread pool (no thread creation after warmup), the
 * memoized survival-function caches (bit-equal to the uncached
 * evaluators), the batched trial kernels (bit-equal to the per-device
 * sampling path), and the chunked runTrials driver (chunk-size
 * invariance, early-stop prefix identity, streaming/keepSamples
 * agreement).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arch/structures.h"
#include "arch/structures_sim.h"
#include "engine/batch.h"
#include "engine/cache.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/simd.h"
#include "wearout/weibull.h"

namespace lemons::engine {
namespace {

double
uniformMetric(Rng &rng, uint64_t)
{
    return rng.nextDouble();
}

TEST(ThreadPool, NoThreadCreationAfterWarmup)
{
    ThreadPool &pool = ThreadPool::global();
    obs::Counter &created =
        obs::Registry::global().counter("sim.mc.pool.threads_created");

    // Warmup: force the pool to the worker count the rest of the test
    // needs.
    pool.parallelFor(64, 8, [](uint64_t) {});
    EXPECT_GE(pool.workerCount(), 7u);

    const uint64_t createdAfterWarmup = created.get();
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(32, 8, [](uint64_t) {});
    const McRunOptions options{
        .trials = 500, .threads = 8, .chunkSize = 16};
    static_cast<void>(runTrials(1, options, uniformMetric));
    EXPECT_EQ(created.get(), createdAfterWarmup)
        << "pooled execution must reuse warm workers";
}

TEST(ThreadPool, InlineRunsForSingleParallelism)
{
    obs::Counter &created =
        obs::Registry::global().counter("sim.mc.pool.threads_created");
    obs::Counter &inlineRuns =
        obs::Registry::global().counter("sim.mc.pool.inline_runs");
    const uint64_t createdBefore = created.get();
    const uint64_t inlineBefore = inlineRuns.get();
    uint64_t sum = 0;
    ThreadPool::global().parallelFor(100, 1,
                                     [&sum](uint64_t i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
    EXPECT_EQ(created.get(), createdBefore);
    EXPECT_EQ(inlineRuns.get(), inlineBefore + 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<uint32_t>> touched(1000);
    ThreadPool::global().parallelFor(
        touched.size(), 8, [&touched](uint64_t i) {
            touched[i].fetch_add(1, std::memory_order_relaxed);
        });
    for (size_t i = 0; i < touched.size(); ++i)
        EXPECT_EQ(touched[i].load(), 1u) << "index " << i;
}

TEST(Cache, WeibullLogSurvivalBitEqualToUncached)
{
    const wearout::Weibull model(14.0, 8.0);
    for (double x : {0.5, 1.0, 7.3, 14.0, 25.0}) {
        const double want = model.logReliability(x);
        // First call misses, second hits; both must be bit-equal to
        // the direct evaluation.
        const double miss = cachedWeibullLogSurvival(14.0, 8.0, x);
        const double hit = cachedWeibullLogSurvival(14.0, 8.0, x);
        EXPECT_EQ(std::bit_cast<uint64_t>(miss),
                  std::bit_cast<uint64_t>(want));
        EXPECT_EQ(std::bit_cast<uint64_t>(hit),
                  std::bit_cast<uint64_t>(want));
    }
}

TEST(Cache, QuantileBitEqualToUncached)
{
    const wearout::Weibull model(9.3, 12.0);
    for (double p : {0.001, 0.25, 0.5, 0.99}) {
        const double want = model.quantile(p);
        EXPECT_EQ(std::bit_cast<uint64_t>(
                      cachedWeibullQuantile(9.3, 12.0, p)),
                  std::bit_cast<uint64_t>(want));
        EXPECT_EQ(std::bit_cast<uint64_t>(
                      cachedWeibullQuantile(9.3, 12.0, p)),
                  std::bit_cast<uint64_t>(want));
    }
}

TEST(Cache, ParallelStructureBitEqualToArchLayer)
{
    const wearout::Weibull device(14.0, 8.0);
    const struct
    {
        uint64_t n, k;
    } points[] = {{40, 1}, {60, 30}, {175, 18}};
    for (const auto &point : points) {
        const arch::ParallelStructure structure(device, point.n, point.k);
        for (uint64_t t = 1; t <= 30; ++t) {
            const auto x = static_cast<double>(t);
            EXPECT_EQ(std::bit_cast<uint64_t>(cachedParallelLogReliability(
                          14.0, 8.0, point.n, point.k, x)),
                      std::bit_cast<uint64_t>(structure.logReliabilityAt(x)))
                << "n=" << point.n << " k=" << point.k << " t=" << t;
            EXPECT_EQ(std::bit_cast<uint64_t>(cachedParallelReliability(
                          14.0, 8.0, point.n, point.k, x)),
                      std::bit_cast<uint64_t>(structure.reliabilityAt(x)));
            EXPECT_EQ(std::bit_cast<uint64_t>(cachedParallelLogFailure(
                          14.0, 8.0, point.n, point.k, x)),
                      std::bit_cast<uint64_t>(structure.logFailureAt(x)));
        }
    }
}

TEST(Cache, RejectsInvalidThreshold)
{
    EXPECT_THROW(cachedParallelLogReliability(14.0, 8.0, 4, 5, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(cachedParallelLogFailure(14.0, 8.0, 4, 0, 1.0),
                 std::invalid_argument);
}

TEST(BatchKernel, ParallelSurvivalBitEqualToPerDevicePath)
{
    // The u-select kernel must consume the same uniform stream and
    // return the same order statistic as per-device sampling.
    const wearout::Weibull model(14.0, 8.0);
    const struct
    {
        size_t n, k;
    } points[] = {{1, 1}, {40, 1}, {60, 30}, {175, 18}, {175, 175}};
    for (const auto &point : points) {
        Rng kernelRng(9000);
        Rng referenceRng(9000);
        const arch::LifetimeSampler sampler = [&model](Rng &r) {
            return model.sample(r);
        };
        for (int trial = 0; trial < 50; ++trial) {
            const uint64_t got = sampleParallelBankSurvival(
                model, point.n, point.k, kernelRng);
            const uint64_t want = arch::sampleParallelSurvivedAccesses(
                sampler, point.n, point.k, referenceRng);
            ASSERT_EQ(got, want) << "n=" << point.n << " k=" << point.k
                                 << " trial=" << trial;
        }
    }
}

TEST(BatchKernel, SeriesSurvivalBitEqualToMinLoop)
{
    const wearout::Weibull model(10.0, 6.0);
    Rng kernelRng(77);
    Rng referenceRng(77);
    for (int trial = 0; trial < 200; ++trial) {
        const uint64_t got = sampleSeriesBankSurvival(model, 12, kernelRng);
        double minLifetime = std::numeric_limits<double>::infinity();
        for (int i = 0; i < 12; ++i)
            minLifetime = std::min(minLifetime, model.sample(referenceRng));
        EXPECT_EQ(got, floorToAccesses(minLifetime)) << trial;
    }
}

TEST(BatchKernel, ManyFillsInTrialOrder)
{
    const wearout::Weibull model(14.0, 8.0);
    Rng batchRng(5);
    Rng loopRng(5);
    uint64_t batch[32];
    sampleParallelBankSurvivalMany(model, 20, 3, batchRng, batch, 32);
    for (uint64_t &value : batch) {
        const uint64_t want =
            sampleParallelBankSurvival(model, 20, 3, loopRng);
        EXPECT_EQ(value, want);
        static_cast<void>(value);
    }
}

TEST(BatchKernel, SimdAndScalarKernelsBitIdentical)
{
    // The AVX2 fill/extremum paths mirror the scalar code op-for-op,
    // so forcing either dispatch tier over counter-mode trial streams
    // must yield identical survival counts and identical post-call
    // stream positions.
    if (simd::detectedLevel() == simd::Level::Scalar)
        GTEST_SKIP() << "host has no AVX2; scalar-vs-scalar is vacuous";
    const wearout::Weibull model(9.3, 12.0);
    const struct
    {
        size_t n, k;
    } points[] = {{1, 1}, {40, 1}, {60, 30}, {175, 175}, {512, 7}};
    for (const auto &point : points) {
        for (uint64_t trial = 0; trial < 16; ++trial) {
            Rng vectorRng = Rng::trialStream(20170624, trial);
            Rng scalarRng = Rng::trialStream(20170624, trial);
            simd::setLevelForTesting(simd::Level::Avx2);
            const uint64_t parallelVec = sampleParallelBankSurvival(
                model, point.n, point.k, vectorRng);
            const uint64_t seriesVec =
                sampleSeriesBankSurvival(model, point.n, vectorRng);
            const uint64_t tailVec = vectorRng.next();
            simd::setLevelForTesting(simd::Level::Scalar);
            const uint64_t parallelScalar = sampleParallelBankSurvival(
                model, point.n, point.k, scalarRng);
            const uint64_t seriesScalar =
                sampleSeriesBankSurvival(model, point.n, scalarRng);
            const uint64_t tailScalar = scalarRng.next();
            simd::clearLevelForTesting();
            ASSERT_EQ(parallelVec, parallelScalar)
                << "n=" << point.n << " k=" << point.k
                << " trial=" << trial;
            ASSERT_EQ(seriesVec, seriesScalar)
                << "n=" << point.n << " trial=" << trial;
            ASSERT_EQ(tailVec, tailScalar)
                << "stream position diverged: n=" << point.n
                << " trial=" << trial;
        }
    }
}

TEST(RunTrials, ChunkSizeDoesNotChangeSamples)
{
    const auto metric = [](Rng &rng, uint64_t) {
        double acc = 0.0;
        for (int i = 0; i < 4; ++i)
            acc += rng.nextDouble();
        return acc;
    };
    const McRunOptions reference{.trials = 333};
    const std::vector<double> want =
        runTrials(1234, reference, metric).samples;
    for (uint64_t chunk : {uint64_t{1}, uint64_t{7}, uint64_t{64},
                           uint64_t{4096}}) {
        const McRunOptions options{
            .trials = 333, .threads = 4, .chunkSize = chunk};
        const std::vector<double> got =
            runTrials(1234, options, metric).samples;
        ASSERT_EQ(got.size(), want.size()) << "chunk=" << chunk;
        for (size_t i = 0; i < want.size(); ++i)
            ASSERT_EQ(std::bit_cast<uint64_t>(got[i]),
                      std::bit_cast<uint64_t>(want[i]))
                << "chunk=" << chunk << " trial=" << i;
    }
}

TEST(RunTrials, EarlyStopReturnsExactPrefixOfFullRun)
{
    const McRunOptions fullOptions{.trials = 50000};
    const std::vector<double> full =
        runTrials(99, fullOptions, uniformMetric).samples;

    const McRunOptions stopped{
        .trials = 50000,
        .chunkSize = 128,
        .earlyStop = EarlyStop{.relHalfWidth = 0.05,
                               .minTrials = 256,
                               .checkEveryChunks = 2}};
    const TrialReport report = runTrials(99, stopped, uniformMetric);
    ASSERT_TRUE(report.stoppedEarly);
    ASSERT_LT(report.trials, report.requestedTrials);
    // The stop point is a wave boundary.
    EXPECT_EQ(report.trials % (128 * 2), 0u);
    ASSERT_EQ(report.samples.size(), report.trials);
    for (size_t i = 0; i < report.samples.size(); ++i)
        ASSERT_EQ(std::bit_cast<uint64_t>(report.samples[i]),
                  std::bit_cast<uint64_t>(full[i]))
            << "trial " << i;
}

TEST(RunTrials, EarlyStopDisabledRunsEveryTrial)
{
    const McRunOptions options{.trials = 5000, .threads = 4};
    const TrialReport report = runTrials(7, options, uniformMetric);
    EXPECT_FALSE(report.stoppedEarly);
    EXPECT_EQ(report.trials, 5000u);
    EXPECT_EQ(report.requestedTrials, 5000u);
    EXPECT_EQ(report.samples.size(), 5000u);
}

TEST(RunTrials, StreamingAgreesWithKeptSamples)
{
    const McRunOptions kept{.trials = 4001, .threads = 4, .chunkSize = 64};
    McRunOptions streaming = kept;
    streaming.keepSamples = false;
    const TrialReport a = runTrials(31, kept, uniformMetric);
    const TrialReport b = runTrials(31, streaming, uniformMetric);
    EXPECT_TRUE(b.samples.empty());
    EXPECT_EQ(a.stats.count(), b.stats.count());
    EXPECT_EQ(a.stats.min(), b.stats.min());
    EXPECT_EQ(a.stats.max(), b.stats.max());
    EXPECT_NEAR(a.stats.mean(), b.stats.mean(),
                1e-12 * std::abs(a.stats.mean()));
    EXPECT_NEAR(a.stats.variance(), b.stats.variance(),
                1e-9 * a.stats.variance());
}

TEST(RunTrials, RejectsZeroTrials)
{
    EXPECT_THROW(
        static_cast<void>(runTrials(1, McRunOptions{}, uniformMetric)),
        std::invalid_argument);
}

TEST(RunTrials, CacheHitCountersAdvance)
{
    obs::Registry &registry = obs::Registry::global();
    obs::Counter &hits =
        registry.counter("sim.mc.cache.weibull_log_survival.hits");
    const uint64_t before = hits.get();
    // Two sweeps over the same keys: the second is all hits.
    for (int sweep = 0; sweep < 2; ++sweep)
        for (uint64_t t = 1; t <= 64; ++t)
            static_cast<void>(cachedWeibullLogSurvival(
                123.5, 7.5, static_cast<double>(t)));
    EXPECT_GE(hits.get() - before, 64u);
}

TEST(RunTrials, PreCancelledTokenReturnsEmptyPartialReport)
{
    CancelToken token;
    token.cancel();
    McRunOptions options;
    options.trials = 10000;
    options.keepSamples = false;
    options.cancel = &token;
    const TrialReport report = runTrials(7, options, uniformMetric);
    EXPECT_EQ(report.interrupt, InterruptReason::Cancelled);
    EXPECT_TRUE(report.interrupted());
    EXPECT_EQ(report.trials, 0u);
    EXPECT_EQ(report.requestedTrials, 10000u);
    EXPECT_FALSE(report.stoppedEarly);
}

TEST(RunTrials, ExpiredDeadlineReturnsPartialReport)
{
    McRunOptions options;
    options.trials = 10000;
    options.keepSamples = false;
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    const TrialReport report = runTrials(7, options, uniformMetric);
    EXPECT_EQ(report.interrupt, InterruptReason::DeadlineExceeded);
    EXPECT_EQ(report.trials, 0u);
}

TEST(RunTrials, CancellationWithoutHookLeavesPrefixStats)
{
    // A token cancelled from the checkpoint hook fires at the *next*
    // wave boundary, so the partial report is an exact prefix.
    CancelToken token;
    McRunOptions options;
    options.trials = 4096;
    options.chunkSize = 64;
    options.keepSamples = false;
    options.cancel = &token;
    options.checkpointEveryChunks = 8;
    options.checkpoint = [&](const EngineCheckpoint &) {
        token.cancel();
    };
    const TrialReport partial = runTrials(11, options, uniformMetric);
    EXPECT_EQ(partial.interrupt, InterruptReason::Cancelled);
    ASSERT_GT(partial.trials, 0u);
    ASSERT_LT(partial.trials, 4096u);

    // The partial stats must be bit-equal to an uninterrupted run
    // truncated to the same trial count.
    McRunOptions prefix;
    prefix.trials = partial.trials;
    prefix.chunkSize = 64;
    prefix.keepSamples = false;
    const TrialReport reference = runTrials(11, prefix, uniformMetric);
    EXPECT_EQ(std::bit_cast<uint64_t>(partial.stats.mean()),
              std::bit_cast<uint64_t>(reference.stats.mean()));
    EXPECT_EQ(partial.stats.count(), reference.stats.count());
}

TEST(RunTrials, CheckpointResumeIsBitIdenticalAtAnyThreadCount)
{
    constexpr uint64_t kTrials = 8192;
    McRunOptions full;
    full.trials = kTrials;
    full.chunkSize = 64;
    full.keepSamples = false;
    const TrialReport reference = runTrials(99, full, uniformMetric);

    // Capture every checkpoint of a single-threaded run.
    std::vector<EngineCheckpoint> checkpoints;
    McRunOptions recording = full;
    recording.checkpointEveryChunks = 16;
    recording.checkpoint = [&](const EngineCheckpoint &checkpoint) {
        checkpoints.push_back(checkpoint);
    };
    static_cast<void>(runTrials(99, recording, uniformMetric));
    ASSERT_GE(checkpoints.size(), 3u);

    const EngineCheckpoint &mid = checkpoints[checkpoints.size() / 2];
    ASSERT_GT(mid.executedChunks, 0u);
    ASSERT_LT(mid.executedChunks * 64, kTrials);
    for (unsigned threads : {1u, 2u, 8u}) {
        McRunOptions resume = full;
        resume.threads = threads;
        resume.resumeFrom = &mid;
        const TrialReport resumed = runTrials(99, resume, uniformMetric);
        EXPECT_EQ(resumed.trials, reference.trials);
        EXPECT_EQ(resumed.stats.count(), reference.stats.count());
        EXPECT_EQ(std::bit_cast<uint64_t>(resumed.stats.mean()),
                  std::bit_cast<uint64_t>(reference.stats.mean()))
            << "resume at " << threads << " threads diverged";
        EXPECT_EQ(std::bit_cast<uint64_t>(resumed.stats.variance()),
                  std::bit_cast<uint64_t>(reference.stats.variance()));
        EXPECT_EQ(resumed.stats.min(), reference.stats.min());
        EXPECT_EQ(resumed.stats.max(), reference.stats.max());
    }
}

TEST(RunTrials, ResumeRequiresMatchingRunAndStreaming)
{
    EngineCheckpoint checkpoint;
    checkpoint.seed = 5;
    checkpoint.requestedTrials = 1000;
    checkpoint.chunkSize = 64;
    checkpoint.executedChunks = 2;

    McRunOptions options;
    options.trials = 1000;
    options.chunkSize = 64;
    options.keepSamples = false;
    options.resumeFrom = &checkpoint;
    // Wrong seed.
    EXPECT_THROW(static_cast<void>(runTrials(6, options, uniformMetric)),
                 std::invalid_argument);
    // keepSamples requires the full per-trial record, which a
    // streaming checkpoint cannot supply.
    options.keepSamples = true;
    EXPECT_THROW(static_cast<void>(runTrials(5, options, uniformMetric)),
                 std::invalid_argument);
}

TEST(RunTrials, EarlyStopCaptureKeepsLowestTrialError)
{
    // Satellite regression: when early stopping cuts a Capture-mode
    // run short, the captured faults must still appear in the report
    // and firstError must be the lowest-indexed failing trial's —
    // regardless of thread interleaving.
    const auto metric = [](Rng &rng, uint64_t trial) {
        if (trial % 97 == 13)
            throw std::runtime_error("fault at trial " +
                                     std::to_string(trial));
        return 5.0 + 0.01 * rng.nextDouble();
    };

    for (unsigned threads : {1u, 2u, 8u}) {
        McRunOptions options;
        options.trials = 200000;
        options.threads = threads;
        options.chunkSize = 64;
        options.keepSamples = false;
        options.faults = FaultPolicy::Capture;
        options.earlyStop =
            EarlyStop{.relHalfWidth = 0.05, .minTrials = 1024,
                      .checkEveryChunks = 4};
        const TrialReport report = runTrials(3, options, metric);
        ASSERT_TRUE(report.stoppedEarly);
        ASSERT_LT(report.trials, 200000u);
        ASSERT_FALSE(report.failedTrials.empty());
        EXPECT_TRUE(std::is_sorted(report.failedTrials.begin(),
                                   report.failedTrials.end()));
        // Every failing trial below the stop point is captured...
        uint64_t expected = 0;
        for (uint64_t trial = 0; trial < report.trials; ++trial)
            if (trial % 97 == 13)
                ++expected;
        EXPECT_EQ(report.failedTrials.size(), expected);
        // ...and the surfaced error is the lowest trial's (13).
        EXPECT_EQ(report.failedTrials.front(), 13u);
        EXPECT_EQ(report.firstError, "fault at trial 13");
    }
}

TEST(ThreadPoolSubmit, RunsEveryTaskOffTheCallerThread)
{
    // submit() is the serving layer's request-execution primitive:
    // fire-and-forget onto a persistent worker, never inline on the
    // caller, never on a freshly spawned thread.
    const uint64_t submittedBefore =
        obs::Registry::global().counter("sim.mc.pool.submitted").get();
    const std::thread::id caller = std::this_thread::get_id();

    constexpr int kTasks = 32;
    std::atomic<int> done{0};
    std::atomic<int> onCallerThread{0};
    for (int i = 0; i < kTasks; ++i) {
        ThreadPool::global().submit([&, caller] {
            if (std::this_thread::get_id() == caller)
                onCallerThread.fetch_add(1);
            done.fetch_add(1, std::memory_order_release);
        }, 4);
    }
    for (int spins = 0;
         done.load(std::memory_order_acquire) < kTasks && spins < 1000;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));

    EXPECT_EQ(done.load(), kTasks);
    EXPECT_EQ(onCallerThread.load(), 0);
    EXPECT_GE(ThreadPool::global().workerCount(), 1u);
    EXPECT_EQ(
        obs::Registry::global().counter("sim.mc.pool.submitted").get(),
        submittedBefore + kTasks);
}

TEST(ThreadPoolSubmit, TasksMayNestParallelFor)
{
    // A submitted handler running a Monte Carlo endpoint calls
    // parallelFor from inside a pool worker; the worker participates
    // in the nested region like any caller, so this must not deadlock
    // even when the region wants more executors than exist.
    constexpr uint64_t kIndices = 1000;
    std::vector<std::atomic<int>> hits(kIndices);
    std::atomic<bool> finished{false};
    ThreadPool::global().submit([&] {
        ThreadPool::global().parallelFor(
            kIndices, 8,
            [&](uint64_t i) { hits[i].fetch_add(1); });
        finished.store(true, std::memory_order_release);
    }, 2);
    for (int spins = 0;
         !finished.load(std::memory_order_acquire) && spins < 1000;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(finished.load());
    for (uint64_t i = 0; i < kIndices; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

} // namespace
} // namespace lemons::engine
