/**
 * @file
 * Cross-validation of the static verifier against the Monte Carlo
 * engines (the paper's three use-cases, Section 5/6): the certified
 * [lo, hi] brackets must contain the simulated estimates within a
 * CI-stable sampling tolerance. A disagreement here means either the
 * analytics or the simulators drifted — exactly the regression this
 * test exists to catch.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/structures_sim.h"
#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "core/usage_bounds.h"
#include "util/rng.h"
#include "verify/interval.h"
#include "wearout/population.h"

namespace lemons {
namespace {

using verify::Interval;

/** Bracket check with an MC slack on both sides. */
void
expectWithinBracket(double estimate, const Interval &bracket, double slack,
                    const char *what)
{
    EXPECT_GE(estimate, bracket.lo - slack) << what;
    EXPECT_LE(estimate, bracket.hi + slack) << what;
}

core::Design
solvedDesign(uint64_t lab)
{
    core::DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = lab;
    request.kFraction = 0.1;
    return core::DesignSolver(request).solve();
}

/**
 * Use-case 1 (Section 5.2, limited-use connection): the verifier's
 * expected-total bracket, scaled to N serially consumed copies, must
 * contain the simulated mean total accesses of the full-size
 * LAB = 91,250 architecture.
 */
TEST(VerifyCross, ConnectionExpectedTotalBracketsMonteCarlo)
{
    const core::Design design = solvedDesign(91250);
    ASSERT_TRUE(design.feasible);

    const Interval per = verify::expectedStructureAccesses(
        {10.0, 12.0}, design.width, design.threshold, 0);
    const double copies = static_cast<double>(design.copies);
    const Interval total{per.lo * copies, per.hi * copies};

    const uint64_t trials = 24;
    const core::UsageBounds mc = core::estimateUsageBounds(
        design, {10.0, 12.0}, wearout::ProcessVariation::none(), trials,
        0xc0551);
    // The observed min-max spread dominates the standard error of the
    // mean by a factor sqrt(trials), so it is a CI-stable slack.
    const double slack =
        (mc.maxTotalAccesses - mc.minTotalAccesses) + 1.0;
    expectWithinBracket(mc.meanTotalAccesses, total, slack,
                        "connection mean total accesses");
}

/**
 * Use-case 2 (Section 5.3, limited-use targeting): same containment
 * at the small LAB = 100 mission scale, where per-copy granularity
 * effects are proportionally largest.
 */
TEST(VerifyCross, TargetingExpectedTotalBracketsMonteCarlo)
{
    const core::Design design = solvedDesign(100);
    ASSERT_TRUE(design.feasible);

    const Interval per = verify::expectedStructureAccesses(
        {10.0, 12.0}, design.width, design.threshold, 0);
    const double copies = static_cast<double>(design.copies);
    const Interval total{per.lo * copies, per.hi * copies};

    const uint64_t trials = 2000;
    const core::UsageBounds mc = core::estimateUsageBounds(
        design, {10.0, 12.0}, wearout::ProcessVariation::none(), trials,
        0xc0552);
    const double slack = (mc.q999 - mc.q001) * 0.25 + 1.0;
    expectWithinBracket(mc.meanTotalAccesses, total, slack,
                        "targeting mean total accesses");
}

/**
 * The per-structure survival brackets against the structures
 * simulator: the empirical survival proportion at the design's
 * per-copy bound t (and just past it) must fall inside the certified
 * bracket, give or take binomial noise.
 */
TEST(VerifyCross, StructureSurvivalBracketsSimulatedProportion)
{
    const uint64_t n = 105, k = 11;
    const wearout::DeviceSpec device{10.0, 12.0};
    const wearout::DeviceFactory factory(device,
                                         wearout::ProcessVariation::none());
    const uint64_t trials = 400;
    Rng rng(0xc0553);

    for (const uint64_t access : {uint64_t{10}, uint64_t{11}}) {
        uint64_t survived = 0;
        for (uint64_t t = 0; t < trials; ++t) {
            if (arch::sampleParallelSurvivedAccesses(factory, n, k, rng) >=
                access)
                ++survived;
        }
        const double proportion =
            static_cast<double>(survived) / static_cast<double>(trials);
        const Interval bracket = verify::parallelReliability(
            n, k, verify::deviceReliability(device,
                                            static_cast<double>(access)));
        // 5 sigma of Bernoulli noise at 400 trials, floored generously.
        expectWithinBracket(proportion, bracket, 0.05,
                            "structure survival proportion");
    }
}

/**
 * Use-case 3 (Section 6, one-time pads): the receiver-success bracket
 * must contain the simulated retrieval rate, and the adversary bracket
 * (~2e-8 at the paper's parameters) must dominate the observed
 * random-path attack rate.
 */
TEST(VerifyCross, OtpBracketsContainSimulatedRates)
{
    core::OtpParams params;
    params.height = 8;
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};

    const Interval path = verify::powInterval(
        verify::deviceReliability(params.device, 1.0), params.height);
    const Interval receiver = verify::parallelReliability(
        params.copies, params.threshold, path);
    const Interval adversary = verify::otpAdversarySuccess(
        params.copies, params.threshold, params.height, path);

    const std::vector<uint8_t> padKey = {0x4c, 0x45, 0x4d, 0x4f, 0x4e,
                                         0x41, 0x44, 0x45, 0x21, 0x17,
                                         0x2a, 0x90, 0x0b, 0x5e, 0xed, 0x05};
    const wearout::DeviceFactory factory(params.device,
                                         wearout::ProcessVariation::none());
    Rng rng(0xc0554);
    Rng attacker(0xc0555);
    const uint64_t rightPath = 77; // one of the 2^(H-1) = 128 paths

    const uint64_t receiverTrials = 60;
    uint64_t retrieved = 0;
    for (uint64_t t = 0; t < receiverTrials; ++t) {
        core::OneTimePad pad(params, padKey, rightPath, factory, rng);
        if (pad.retrieve(rightPath).has_value())
            ++retrieved;
    }
    const double retrieveRate = static_cast<double>(retrieved) /
                                static_cast<double>(receiverTrials);
    expectWithinBracket(retrieveRate, receiver, 0.05,
                        "otp receiver success rate");

    const uint64_t attackTrials = 200;
    uint64_t stolen = 0;
    for (uint64_t t = 0; t < attackTrials; ++t) {
        core::OneTimePad pad(params, padKey, rightPath, factory, rng);
        if (pad.randomPathAttack(attacker).has_value())
            ++stolen;
    }
    const double attackRate =
        static_cast<double>(stolen) / static_cast<double>(attackTrials);
    // adversary.hi ~ 2e-8: with 200 trials even a single success would
    // be a > 5-sigma event against the certified ceiling.
    EXPECT_LE(attackRate, adversary.hi + 0.02)
        << "otp adversary success rate";
}

} // namespace
} // namespace lemons
