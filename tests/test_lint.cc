/**
 * @file
 * The lemons::lint design-rule checker: every seeded-invalid spec must
 * fire its documented diagnostic code, clean paper-default specs must
 * stay silent, and the constructor wiring must keep throwing
 * std::invalid_argument (as LintError) where requireArg used to.
 */

#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "arch/structures.h"
#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "fault/fault_plan.h"
#include "lint/diagnostics.h"
#include "lint/rules.h"
#include "lint/spec_file.h"

namespace lemons {
namespace {

using lint::Code;
using lint::Report;
using lint::Severity;

core::DesignRequest
paperRequest()
{
    core::DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    return request;
}

core::OtpParams
paperOtp()
{
    core::OtpParams params;
    params.height = 8;
    params.copies = 128;
    params.threshold = 8;
    params.device = {10.0, 1.0};
    return params;
}

/** True when @p report contains @p code at error severity. */
bool
firesError(const Report &report, Code code)
{
    if (!report.hasCode(code))
        return false;
    for (const auto &d : report.diagnostics()) {
        if (d.code == code)
            return d.severity == Severity::Error;
    }
    return false;
}

// --- the seeded-invalid table -------------------------------------------

struct SeededInvalid
{
    const char *name;
    std::function<Report()> run;
    Code expected;
    Severity severity;
};

const SeededInvalid seededInvalidTable[] = {
    {"alpha zero",
     [] {
         auto r = paperRequest();
         r.device.alpha = 0.0;
         return lint::checkDesign(r);
     },
     Code::L001, Severity::Error},
    {"alpha infinite",
     [] {
         auto r = paperRequest();
         r.device.alpha = std::numeric_limits<double>::infinity();
         return lint::checkDesign(r);
     },
     Code::L001, Severity::Error},
    {"beta negative",
     [] {
         auto r = paperRequest();
         r.device.beta = -2.0;
         return lint::checkDesign(r);
     },
     Code::L002, Severity::Error},
    {"LAB zero",
     [] {
         auto r = paperRequest();
         r.legitimateAccessBound = 0;
         return lint::checkDesign(r);
     },
     Code::L003, Severity::Error},
    {"kFraction one",
     [] {
         auto r = paperRequest();
         r.kFraction = 1.0;
         return lint::checkDesign(r);
     },
     Code::L004, Severity::Error},
    {"minReliability at one",
     [] {
         auto r = paperRequest();
         r.criteria.minReliability = 1.0;
         return lint::checkDesign(r);
     },
     Code::L005, Severity::Error},
    {"residual at zero",
     [] {
         auto r = paperRequest();
         r.criteria.maxResidualReliability = 0.0;
         return lint::checkDesign(r);
     },
     Code::L006, Severity::Error},
    {"criteria inverted",
     [] {
         auto r = paperRequest();
         r.criteria.minReliability = 0.5;
         r.criteria.maxResidualReliability = 0.6;
         return lint::checkDesign(r);
     },
     Code::L007, Severity::Error},
    {"upper bound below LAB",
     [] {
         auto r = paperRequest();
         r.upperBoundTarget = r.legitimateAccessBound - 1;
         return lint::checkDesign(r);
     },
     Code::L008, Severity::Error},
    {"maxWidth zero",
     [] {
         auto r = paperRequest();
         r.maxWidth = 0;
         return lint::checkDesign(r);
     },
     Code::L009, Severity::Error},
    {"LAB exceeds guess space",
     [] {
         lint::DesignLintOptions options;
         options.guessSpace = 1e4; // 4-digit PIN vs LAB 91250
         return lint::checkDesign(paperRequest(), options);
     },
     Code::L010, Severity::Warning},
    {"LAB infeasible within maxWidth",
     [] {
         auto r = paperRequest();
         r.device = {2.0, 2.0}; // F(1) ~ 0.22 per device
         r.criteria.minReliability = 0.9999999;
         r.maxWidth = 5;
         return lint::checkDesign(r);
     },
     Code::L013, Severity::Warning},
    {"share threshold above count",
     [] {
         lint::ShareSpec s;
         s.shares = 10;
         s.threshold = 11; // k > n
         return lint::checkShares(s);
     },
     Code::L102, Severity::Error},
    {"shares beyond GF(256)",
     [] {
         lint::ShareSpec s;
         s.shares = 300;
         s.threshold = 30;
         return lint::checkShares(s);
     },
     Code::L103, Severity::Error},
    {"parallel k above n",
     [] {
         lint::StructureSpec s;
         s.n = 8;
         s.k = 9;
         return lint::checkStructure(s);
     },
     Code::L202, Severity::Error},
    {"empty series chain",
     [] {
         lint::StructureSpec s;
         s.kind = lint::StructureSpec::Kind::Series;
         s.n = 0;
         return lint::checkStructure(s);
     },
     Code::L201, Severity::Error},
    {"series explosion",
     [] {
         lint::StructureSpec s;
         s.kind = lint::StructureSpec::Kind::Series;
         s.n = 2'000'000;
         return lint::checkStructure(s);
     },
     Code::L204, Severity::Warning},
    {"otp height out of range",
     [] {
         auto p = paperOtp();
         p.height = 21;
         return lint::checkOtp(p);
     },
     Code::L301, Severity::Error},
    {"otp copies beyond Shamir",
     [] {
         auto p = paperOtp();
         p.copies = 256;
         p.threshold = 8;
         return lint::checkOtp(p);
     },
     Code::L305, Severity::Error},
    {"otp replayable alpha",
     [] {
         auto p = paperOtp();
         p.device.alpha = 1e6;
         return lint::checkOtp(p);
     },
     Code::L307, Severity::Warning},
    {"fault stuck-closed above one",
     [] {
         fault::FaultPlan plan;
         plan.stuckClosedRate = 1.5;
         return lint::checkFaultPlan(plan);
     },
     Code::L401, Severity::Error},
    {"fault negative drift",
     [] {
         fault::FaultPlan plan;
         plan.alphaDriftSigma = -0.1;
         return lint::checkFaultPlan(plan);
     },
     Code::L406, Severity::Error},
    {"fault stuck-closed implausible",
     [] {
         fault::FaultPlan plan;
         plan.stuckClosedRate = 0.3;
         return lint::checkFaultPlan(plan);
     },
     Code::L407, Severity::Warning},
    {"mway zero modules",
     [] {
         lint::MwaySpec s;
         s.m = 0;
         return lint::checkMway(s);
     },
     Code::L501, Severity::Error},
    {"mway infeasible module",
     [] {
         lint::MwaySpec s;
         s.m = 10;
         s.moduleFeasible = false;
         return lint::checkMway(s);
     },
     Code::L503, Severity::Error},
    {"structure reliability floor at one",
     [] {
         lint::StructureSpec s;
         s.n = 40;
         s.k = 4;
         s.minReliability = 1.0;
         return lint::checkStructure(s);
     },
     Code::L005, Severity::Error},
    {"structure criteria inverted",
     [] {
         lint::StructureSpec s;
         s.n = 40;
         s.k = 4;
         s.minReliability = 0.5;
         s.maxResidual = 0.6;
         return lint::checkStructure(s);
     },
     Code::L007, Severity::Error},
    {"workload zero mean",
     [] {
         lint::WorkloadSpec s;
         s.meanPerDay = 0.0;
         return lint::checkWorkload(s);
     },
     Code::L601, Severity::Error},
    {"workload burst probability above one",
     [] {
         lint::WorkloadSpec s;
         s.burstProbability = 1.5;
         return lint::checkWorkload(s);
     },
     Code::L602, Severity::Error},
    {"workload burst multiplier below one",
     [] {
         lint::WorkloadSpec s;
         s.burstMultiplier = 0.5;
         return lint::checkWorkload(s);
     },
     Code::L603, Severity::Error},
    {"workload budget below demand",
     [] {
         lint::WorkloadSpec s;
         s.meanPerDay = 50.0;
         s.budgetAccesses = 100;
         s.horizonDays = 365; // needs ~18k accesses
         return lint::checkWorkload(s);
     },
     Code::L604, Severity::Warning},
    {"workload burst dominated",
     [] {
         lint::WorkloadSpec s;
         s.burstProbability = 0.5;
         s.burstMultiplier = 10.0; // bursts carry ~91 % of demand
         return lint::checkWorkload(s);
     },
     Code::L605, Severity::Warning},
    {"mixture weight above one",
     [] {
         lint::MixtureSpec s;
         s.infantFraction = 1.5;
         return lint::checkMixture(s);
     },
     Code::L701, Severity::Error},
    {"mixture invalid infant alpha",
     [] {
         lint::MixtureSpec s;
         s.infantFraction = 0.05;
         s.infant.alpha = -1.0;
         return lint::checkMixture(s);
     },
     Code::L702, Severity::Error},
    {"mixture infant shape not infant",
     [] {
         lint::MixtureSpec s;
         s.infantFraction = 0.05;
         s.infant.beta = 2.0; // beta >= 1 is not an infant-mortality mode
         return lint::checkMixture(s);
     },
     Code::L703, Severity::Warning},
    {"mixture infant outlives main",
     [] {
         lint::MixtureSpec s;
         s.infantFraction = 0.05;
         s.infant.alpha = 20.0; // infant scale above the main mode
         s.main.alpha = 10.0;
         return lint::checkMixture(s);
     },
     Code::L704, Severity::Warning},
};

TEST(LintRules, SeededInvalidSpecsFireDocumentedCodes)
{
    for (const SeededInvalid &seeded : seededInvalidTable) {
        SCOPED_TRACE(seeded.name);
        const Report report = seeded.run();
        ASSERT_TRUE(report.hasCode(seeded.expected))
            << "expected " << lint::codeInfo(seeded.expected).id
            << ", got:\n"
            << report.format();
        for (const auto &d : report.diagnostics()) {
            if (d.code == seeded.expected) {
                EXPECT_EQ(d.severity, seeded.severity);
            }
        }
    }
}

TEST(LintRules, PaperDefaultsAreClean)
{
    EXPECT_TRUE(lint::checkDesign(paperRequest()).empty());
    EXPECT_TRUE(lint::checkOtp(paperOtp()).empty());
    EXPECT_TRUE(lint::checkFaultPlan(fault::FaultPlan::none()).empty());
    lint::StructureSpec parallel;
    parallel.n = 1000;
    parallel.k = 100;
    EXPECT_TRUE(lint::checkStructure(parallel).empty());
    lint::MwaySpec mway;
    mway.m = 10;
    mway.moduleDevices = 100'000;
    EXPECT_TRUE(lint::checkMway(mway).empty());
}

TEST(LintRules, GuessSpaceAboveBudgetIsClean)
{
    lint::DesignLintOptions options;
    options.guessSpace = 1e6;
    EXPECT_TRUE(lint::checkDesign(paperRequest(), options).empty());
}

TEST(LintRules, DiagnosticsCarryContext)
{
    auto request = paperRequest();
    request.kFraction = -0.5;
    const Report report = lint::checkDesign(request);
    ASSERT_EQ(report.errorCount(), 1u);
    const auto &d = report.diagnostics().front();
    EXPECT_STREQ(d.id(), "L004");
    EXPECT_EQ(d.object, "DesignRequest");
    EXPECT_EQ(d.field, "kFraction");
    EXPECT_FALSE(d.hint.empty());
    EXPECT_NE(d.format().find("[L004]"), std::string::npos);
}

TEST(LintRules, CatalogIsDenseAndStable)
{
    const auto &catalog = lint::codeCatalog();
    ASSERT_FALSE(catalog.empty());
    for (size_t i = 0; i < catalog.size(); ++i)
        EXPECT_EQ(static_cast<size_t>(catalog[i].code), i);
    EXPECT_STREQ(lint::codeInfo(Code::L001).id, "L001");
    EXPECT_STREQ(lint::codeInfo(Code::L906).id, "L906");
}

TEST(LintRules, CatalogCoversAllFiveFamilies)
{
    // One representative per family; the tidy plugin's T-codes draw
    // from the same registry the CLI catalogs, so a missing family
    // here means --codes no longer prints from one source of truth.
    EXPECT_STREQ(lint::codeInfo(Code::V001).id, "V001");
    EXPECT_STREQ(lint::codeInfo(Code::C101).id, "C101");
    EXPECT_STREQ(lint::codeInfo(Code::A001).id, "A001");
    EXPECT_STREQ(lint::codeInfo(Code::T001).id, "T001");
    EXPECT_STREQ(lint::codeInfo(Code::T006).id, "T006");
    EXPECT_EQ(lint::codeInfo(Code::T004).severity,
              lint::Severity::Error);
}

// --- constructor wiring --------------------------------------------------

TEST(LintWiring, ConstructorsThrowLintErrorAsInvalidArgument)
{
    auto bad = paperRequest();
    bad.kFraction = 1.0;
    EXPECT_THROW(core::DesignSolver{bad}, std::invalid_argument);
    EXPECT_THROW(core::DesignSolver{bad}, lint::LintError);

    const wearout::Weibull device(10.0, 12.0);
    EXPECT_THROW(arch::ParallelStructure(device, 4, 5), lint::LintError);
    EXPECT_THROW(arch::SeriesChain(device, 0), lint::LintError);

    fault::FaultPlan plan;
    plan.glitchRate = 2.0;
    EXPECT_THROW(plan.validate(), lint::LintError);
}

TEST(LintWiring, LintErrorCarriesTheFullReport)
{
    auto bad = paperRequest();
    bad.device.alpha = -1.0;
    bad.kFraction = 7.0;
    try {
        core::DesignSolver solver(bad);
        FAIL() << "expected LintError";
    } catch (const lint::LintError &e) {
        EXPECT_TRUE(e.report().hasCode(Code::L001));
        EXPECT_TRUE(e.report().hasCode(Code::L004));
        EXPECT_NE(std::string(e.what()).find("[L001]"),
                  std::string::npos);
    }
}

TEST(LintWiring, ValidConstructionStillWorks)
{
    EXPECT_NO_THROW(core::DesignSolver{paperRequest()});
    const wearout::Weibull device(10.0, 12.0);
    EXPECT_NO_THROW(arch::ParallelStructure(device, 100, 10));
    EXPECT_NO_THROW(fault::FaultPlan::stuckClosed(0.01).validate());
}

// --- spec files ----------------------------------------------------------

TEST(LintSpecFile, CleanSpecYieldsNoDiagnostics)
{
    const Report report = lint::lintText("# comment\n"
                                         "[design]\n"
                                         "alpha = 10\n"
                                         "beta = 12\n"
                                         "lab = 91250\n"
                                         "k_fraction = 0.2\n"
                                         "guess_space = 1e6\n"
                                         "\n"
                                         "[fault]\n"
                                         "stuck_closed_rate = 0.001\n",
                                         "clean.lemons");
    EXPECT_TRUE(report.empty()) << report.format();
}

TEST(LintSpecFile, InvalidValuesFireRuleCodes)
{
    const Report report = lint::lintText("[design]\n"
                                         "alpha = 10\n"
                                         "beta = 12\n"
                                         "lab = 91250\n"
                                         "k_fraction = 1.5\n",
                                         "bad.lemons");
    EXPECT_TRUE(firesError(report, Code::L004));
    EXPECT_EQ(report.diagnostics().front().file, "bad.lemons");
}

TEST(LintSpecFile, ParserProblemsAreDiagnostics)
{
    EXPECT_TRUE(firesError(lint::lintText("alpha = 10\n", "f"),
                           Code::L902));
    EXPECT_TRUE(firesError(lint::lintText("[nonsense]\nx = 1\n", "f"),
                           Code::L903));
    EXPECT_TRUE(
        firesError(lint::lintText("[design]\nalpha = banana\n", "f"),
                   Code::L905));
    const Report unknown =
        lint::lintText("[design]\nalpha = 10\nbeta = 12\nlab = 1\n"
                       "frobnicate = 3\n",
                       "f");
    EXPECT_TRUE(unknown.hasCode(Code::L904));
    EXPECT_FALSE(unknown.hasErrors());
    EXPECT_TRUE(lint::lintText("\n# only comments\n", "f")
                    .hasCode(Code::L906));
}

TEST(LintSpecFile, UnreadableFileIsL901)
{
    const Report report =
        lint::lintFile("/nonexistent/path/spec.lemons");
    EXPECT_TRUE(firesError(report, Code::L901));
}

TEST(LintSpecFile, WorkloadAndMixtureSectionsAreLinted)
{
    const Report clean = lint::lintText("[workload]\n"
                                        "mean_per_day = 50\n"
                                        "burst_probability = 0.01\n"
                                        "burst_multiplier = 4\n"
                                        "budget = 95000\n"
                                        "horizon_days = 1825\n"
                                        "[mixture]\n"
                                        "infant_fraction = 0.02\n"
                                        "infant_alpha = 1\n"
                                        "infant_beta = 0.8\n"
                                        "main_alpha = 10\n"
                                        "main_beta = 12\n",
                                        "f");
    EXPECT_TRUE(clean.empty()) << clean.format();

    const Report report = lint::lintText("[workload]\n"
                                         "mean_per_day = 50\n"
                                         "budget = 100\n"
                                         "horizon_days = 365\n"
                                         "[mixture]\n"
                                         "infant_fraction = 2\n",
                                         "f");
    EXPECT_TRUE(report.hasCode(Code::L604));
    EXPECT_TRUE(firesError(report, Code::L701));
}

TEST(LintSpecFile, RepeatedSectionsLintIndependently)
{
    const Report report = lint::lintText("[fault]\n"
                                         "stuck_closed_rate = 0.001\n"
                                         "[fault]\n"
                                         "stuck_closed_rate = 1.5\n",
                                         "f");
    EXPECT_TRUE(firesError(report, Code::L401));
    EXPECT_EQ(report.errorCount(), 1u);
}

} // namespace
} // namespace lemons
