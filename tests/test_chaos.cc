/**
 * @file
 * Crash-injection tests: a fleet campaign SIGKILLed/SIGABRTed at
 * randomized points, resumed from its checkpoint, and corrupted once
 * on disk must still produce results bit-identical to an
 * uninterrupted run — at 1, 2, and 8 worker threads.
 *
 * Fork-safety: every campaign (the reference included) runs in a
 * forked child; this test binary must therefore never run a campaign
 * in-process, so it contains ONLY chaos tests. In-process campaign
 * coverage lives in test_fleet.cc.
 *
 * Artifacts: each test works under LEMONS_CHAOS_ARTIFACT_DIR (or
 * ./chaos-artifacts when unset) and leaves its checkpoint files and
 * round log behind, so a CI failure can upload exactly what the
 * harness saw.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "fleet/chaos.h"
#include "lint/rules.h"

namespace lemons::fleet {
namespace {

namespace fs = std::filesystem;

/** Per-test artifact directory (kept on failure for CI upload). */
std::string
artifactDir(const std::string &name)
{
    const char *base = std::getenv("LEMONS_CHAOS_ARTIFACT_DIR");
    const fs::path root =
        fs::path(base != nullptr ? base : "chaos-artifacts") / name;
    std::error_code ignored;
    fs::remove_all(root, ignored);
    fs::create_directories(root);
    return root.string();
}

/** Quick-scale spec: big enough that kills land mid-campaign. */
lint::FleetSpec
quickSpec()
{
    lint::FleetSpec spec = chaosDefaultSpec();
    spec.devices = 3000;
    // Small chunks + checkpoint-every-chunk: the first checkpoint
    // lands within a few milliseconds, so even the earliest kills
    // leave resumable state behind.
    spec.chunkSize = 16;
    spec.checkpointEveryChunks = 1;
    return spec;
}

void
runChaosAt(unsigned threads)
{
    const std::string dir =
        artifactDir("threads-" + std::to_string(threads));
    ChaosOptions options;
    options.threads = threads;
    options.seed = 1000 + threads;
    options.maxKillRounds = 4;
    options.minKillDelayMs = 15;
    options.killDelaySpanMs = 60;
    options.workDir = dir;
    options.corruptPrimaryOnce = true;

    const ChaosResult result =
        runChaosCampaign(quickSpec(), options);
    // Persist the round log next to the checkpoints regardless of
    // outcome; CI uploads the directory when the assertion fails.
    std::ofstream(dir + "/chaos.log") << result.log;

    EXPECT_TRUE(result.passed())
        << "threads=" << threads << " reference="
        << result.referenceDigest << " resumed="
        << result.resumedDigest << "\n"
        << result.log;
    // The corruption injection must actually have exercised the
    // detect-and-fall-back path, not just happened to be skipped.
    EXPECT_TRUE(result.fallbackExercised) << result.log;
    EXPECT_TRUE(result.resumeObserved) << result.log;
}

TEST(ChaosHarness, ResumeEqualsUninterruptedSingleThread)
{
    runChaosAt(1);
}

TEST(ChaosHarness, ResumeEqualsUninterruptedTwoThreads)
{
    runChaosAt(2);
}

TEST(ChaosHarness, ResumeEqualsUninterruptedEightThreads)
{
    runChaosAt(8);
}

TEST(ChaosHarness, AllThreadCountsAgreeOnTheReferenceDigest)
{
    // The three tests above each compare resume-vs-uninterrupted at
    // one thread count; this one pins the cross-thread half of the
    // contract: the uninterrupted digest itself is thread-invariant.
    const std::string dir = artifactDir("cross-thread");
    uint64_t first = 0;
    for (unsigned threads : {1u, 2u, 8u}) {
        ChaosOptions options;
        options.threads = threads;
        options.maxKillRounds = 0; // no kills: reference runs only
        options.corruptPrimaryOnce = false;
        options.workDir = dir;
        const ChaosResult result =
            runChaosCampaign(quickSpec(), options);
        ASSERT_TRUE(result.passed()) << result.log;
        if (first == 0)
            first = result.referenceDigest;
        EXPECT_EQ(result.referenceDigest, first)
            << "threads=" << threads;
    }
}

TEST(ChaosHarness, ReferenceDigestMatchesCounterStreamGolden)
{
    // The tests above are self-referential (resume vs uninterrupted,
    // thread A vs thread B). This one anchors the chaos campaign to
    // the counter-based Philox trial stream: the digest was recorded
    // once when that stream became definitional, so any change to the
    // engine, kernels, or fleet simulation that silently alters the
    // sampled lifetimes fails here even if it stays self-consistent.
    constexpr uint64_t kGoldenReferenceDigest = 0xed04f04146115897ULL;
    const std::string dir = artifactDir("stream-golden");
    ChaosOptions options;
    options.threads = 1;
    options.maxKillRounds = 0; // reference run only
    options.corruptPrimaryOnce = false;
    options.workDir = dir;
    const ChaosResult result = runChaosCampaign(quickSpec(), options);
    ASSERT_TRUE(result.passed()) << result.log;
    EXPECT_EQ(result.referenceDigest, kGoldenReferenceDigest);
}

} // namespace
} // namespace lemons::fleet
