/**
 * @file
 * Unit and property tests for the log-space math kernel.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "util/math.h"

namespace lemons {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

TEST(LogBinomCoeff, SmallExactValues)
{
    EXPECT_NEAR(logBinomCoeff(5, 2), std::log(10.0), 1e-12);
    EXPECT_NEAR(logBinomCoeff(10, 0), 0.0, 1e-12);
    EXPECT_NEAR(logBinomCoeff(10, 10), 0.0, 1e-12);
    EXPECT_NEAR(logBinomCoeff(52, 5), std::log(2598960.0), 1e-9);
}

TEST(LogBinomCoeff, OutOfRangeIsMinusInfinity)
{
    EXPECT_EQ(logBinomCoeff(5, 6), -inf);
}

TEST(LogBinomCoeff, Symmetry)
{
    for (uint64_t n = 1; n <= 40; ++n)
        for (uint64_t k = 0; k <= n; ++k)
            EXPECT_NEAR(logBinomCoeff(n, k), logBinomCoeff(n, n - k), 1e-9);
}

TEST(LogSumExp, BasicIdentity)
{
    EXPECT_NEAR(logSumExp(std::log(2.0), std::log(3.0)), std::log(5.0),
                1e-12);
}

TEST(LogSumExp, HandlesMinusInfinity)
{
    EXPECT_EQ(logSumExp(-inf, -inf), -inf);
    EXPECT_NEAR(logSumExp(-inf, 1.5), 1.5, 1e-12);
    EXPECT_NEAR(logSumExp(1.5, -inf), 1.5, 1e-12);
}

TEST(LogSumExp, VectorForm)
{
    EXPECT_EQ(logSumExp(std::vector<double>{}), -inf);
    EXPECT_NEAR(logSumExp(std::vector<double>{std::log(1.0), std::log(2.0),
                                              std::log(3.0)}),
                std::log(6.0), 1e-12);
}

TEST(LogSumExp, NoOverflowForLargeInputs)
{
    const double big = 700.0;
    EXPECT_NEAR(logSumExp(big, big), big + std::log(2.0), 1e-12);
}

TEST(LogDiffExp, BasicIdentity)
{
    EXPECT_NEAR(logDiffExp(std::log(5.0), std::log(2.0)), std::log(3.0),
                1e-12);
}

TEST(LogDiffExp, EqualArgumentsGiveMinusInfinity)
{
    EXPECT_EQ(logDiffExp(1.0, 1.0), -inf);
}

TEST(LogDiffExp, RejectsReversedArguments)
{
    EXPECT_THROW(logDiffExp(0.0, 1.0), std::invalid_argument);
}

TEST(Log1mExp, MatchesDirectComputation)
{
    // Reference via expm1 (exact for tiny |x|, where log1p(-exp(x))
    // itself loses precision): 1 - e^x = -expm1(x).
    for (double x : {-1e-12, -1e-6, -0.1, -0.5, -1.0, -5.0, -50.0, -700.0})
        EXPECT_NEAR(log1mExp(x), std::log(-std::expm1(x)),
                    1e-12 * std::abs(std::log(-std::expm1(x))) + 1e-13)
            << "x = " << x;
}

TEST(Log1mExp, ZeroGivesMinusInfinity)
{
    EXPECT_EQ(log1mExp(0.0), -inf);
}

TEST(Log1mExp, RejectsPositiveInput)
{
    EXPECT_THROW(log1mExp(0.1), std::invalid_argument);
}

TEST(BinomialPmf, MatchesDirectComputation)
{
    // Bin(4, 0.5): pmf = {1,4,6,4,1}/16.
    EXPECT_NEAR(std::exp(logBinomialPmf(4, 0, 0.5)), 1.0 / 16, 1e-12);
    EXPECT_NEAR(std::exp(logBinomialPmf(4, 2, 0.5)), 6.0 / 16, 1e-12);
    EXPECT_NEAR(std::exp(logBinomialPmf(4, 4, 0.5)), 1.0 / 16, 1e-12);
}

TEST(BinomialPmf, DegenerateP)
{
    EXPECT_EQ(std::exp(logBinomialPmf(5, 0, 0.0)), 1.0);
    EXPECT_EQ(logBinomialPmf(5, 1, 0.0), -inf);
    EXPECT_EQ(std::exp(logBinomialPmf(5, 5, 1.0)), 1.0);
    EXPECT_EQ(logBinomialPmf(5, 4, 1.0), -inf);
}

TEST(BinomialTail, EdgeCases)
{
    EXPECT_EQ(binomialTailAtLeast(10, 0, 0.3), 1.0);
    EXPECT_EQ(binomialTailAtLeast(10, 11, 0.3), 0.0);
    EXPECT_EQ(binomialTailAtLeast(10, 1, 0.0), 0.0);
    EXPECT_EQ(binomialTailAtLeast(10, 10, 1.0), 1.0);
}

TEST(BinomialTail, MatchesBruteForceSmall)
{
    // P(X >= k) by direct summation for Bin(12, 0.37).
    const uint64_t n = 12;
    const double p = 0.37;
    for (uint64_t k = 0; k <= n; ++k) {
        double direct = 0.0;
        for (uint64_t i = k; i <= n; ++i)
            direct += std::exp(logBinomialPmf(n, i, p));
        EXPECT_NEAR(binomialTailAtLeast(n, k, p), direct, 1e-12)
            << "k = " << k;
    }
}

TEST(BinomialTail, ComplementIdentity)
{
    const uint64_t n = 30;
    const double p = 0.21;
    for (uint64_t k = 1; k <= n; ++k) {
        const double atLeast = binomialTailAtLeast(n, k, p);
        const double atMost = binomialTailAtMost(n, k - 1, p);
        EXPECT_NEAR(atLeast + atMost, 1.0, 1e-10) << "k = " << k;
    }
}

/** Cross-validate the incomplete-beta fast path against summation. */
class BinomialTailCrossCheck
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>>
{
};

TEST_P(BinomialTailCrossCheck, FastPathMatchesSummation)
{
    const auto [n, p] = GetParam();
    for (uint64_t k = 1; k <= n; k += std::max<uint64_t>(1, n / 17)) {
        const double viaBeta = logBinomialTailAtLeast(n, k, p);
        const double viaSum = logBinomialTailAtLeastBySum(n, k, p);
        if (viaSum < -600.0) {
            EXPECT_LT(viaBeta, -500.0) << "n=" << n << " k=" << k;
        } else {
            EXPECT_NEAR(viaBeta, viaSum, 1e-7 + 1e-7 * std::abs(viaSum))
                << "n=" << n << " k=" << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, BinomialTailCrossCheck,
    ::testing::Combine(::testing::Values<uint64_t>(2, 5, 17, 64, 141, 500,
                                                   2000),
                       ::testing::Values(1e-6, 1e-3, 0.05, 0.1, 0.176, 0.5,
                                         0.9, 0.999)));

TEST(BetaInc, KnownValues)
{
    // I_x(1, 1) = x (uniform CDF).
    for (double x : {0.1, 0.25, 0.5, 0.9})
        EXPECT_NEAR(std::exp(logBetaIncRegularized(1, 1, x)), x, 1e-12);
    // I_x(1, b) = 1 - (1-x)^b.
    EXPECT_NEAR(std::exp(logBetaIncRegularized(1, 3, 0.2)),
                1.0 - std::pow(0.8, 3), 1e-12);
}

TEST(BetaInc, Extremes)
{
    EXPECT_EQ(logBetaIncRegularized(2, 3, 0.0), -inf);
    EXPECT_EQ(logBetaIncRegularized(2, 3, 1.0), 0.0);
}

TEST(BetaInc, RejectsBadArguments)
{
    EXPECT_THROW(logBetaIncRegularized(0, 1, 0.5), std::invalid_argument);
    EXPECT_THROW(logBetaIncRegularized(1, 0, 0.5), std::invalid_argument);
    EXPECT_THROW(logBetaIncRegularized(1, 1, -0.1), std::invalid_argument);
    EXPECT_THROW(logBetaIncRegularized(1, 1, 1.1), std::invalid_argument);
}

TEST(BinomialTail, HugeNStaysFinite)
{
    // 150 million devices, tiny p: P(X >= 1) = 1 - (1-p)^n.
    const uint64_t n = 150'000'000;
    const double p = 2.93e-8;
    const double expected = -std::expm1(static_cast<double>(n) *
                                        std::log1p(-p));
    EXPECT_NEAR(binomialTailAtLeast(n, 1, p), expected, 1e-7);
}

TEST(BinomialTail, DeepTailLogValue)
{
    // P(X >= 30) for Bin(60, 0.01) is astronomically small but its log
    // must be finite and ordered.
    const double log30 = logBinomialTailAtLeast(60, 30, 0.01);
    const double log40 = logBinomialTailAtLeast(60, 40, 0.01);
    EXPECT_TRUE(std::isfinite(log30));
    EXPECT_TRUE(std::isfinite(log40));
    EXPECT_GT(log30, log40);
    EXPECT_LT(log30, std::log(1e-30));
}

/** Property sweep: binomial tails are monotone where reliability
 *  arguments demand it. */
class BinomialTailMonotonicity
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BinomialTailMonotonicity, DecreasesInKIncreasesInP)
{
    const uint64_t n = GetParam();
    for (double p : {0.05, 0.2, 0.5, 0.8}) {
        double prev = 1.0;
        for (uint64_t k = 0; k <= n; ++k) {
            const double tail = binomialTailAtLeast(n, k, p);
            EXPECT_LE(tail, prev + 1e-12)
                << "n=" << n << " k=" << k << " p=" << p;
            prev = tail;
        }
    }
    for (uint64_t k = 1; k <= n; k += std::max<uint64_t>(1, n / 7)) {
        double prev = 0.0;
        for (double p = 0.05; p < 1.0; p += 0.05) {
            const double tail = binomialTailAtLeast(n, k, p);
            EXPECT_GE(tail, prev - 1e-12)
                << "n=" << n << " k=" << k << " p=" << p;
            prev = tail;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BinomialTailMonotonicity,
                         ::testing::Values<uint64_t>(1, 2, 7, 40, 141,
                                                     1000));

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(10, 5), 2u);
    EXPECT_EQ(ceilDiv(11, 5), 3u);
    EXPECT_EQ(ceilDiv(1, 1), 1u);
    EXPECT_EQ(ceilDiv(91250, 15), 6084u);
}

} // namespace
} // namespace lemons
