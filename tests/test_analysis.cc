/**
 * @file
 * The wear-budget abstract interpreter: the AccessBracket lattice and
 * its widening, the capacity/demand dataflow over hand-built IR
 * graphs, the A-code catalog goldens on seeded-violation configs, the
 * clean bill of health on every shipped example config, and the
 * lemons-analyze/1 JSON report schema.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "analysis/bracket.h"
#include "analysis/passes.h"
#include "analysis/report.h"
#include "ir/graph.h"
#include "lint/diagnostics.h"
#include "lint/rules.h"
#include "verify/interval.h"

namespace lemons {
namespace {

using analysis::AccessBracket;

constexpr double kInf = std::numeric_limits<double>::infinity();

ir::Node
node(ir::NodeKind kind, const char *label)
{
    ir::Node n;
    n.kind = kind;
    n.label = label;
    return n;
}

std::string
configPath(const char *name)
{
    return std::string(LEMONS_CONFIG_DIR) + "/" + name;
}

/** A-severity tallies of a FileAnalysis, ignoring notes. */
struct ACounts
{
    size_t errors = 0;
    size_t warnings = 0;
};

ACounts
aCounts(const analysis::FileAnalysis &analysis)
{
    ACounts counts;
    for (const lint::Diagnostic &d : analysis.findings.diagnostics()) {
        if (d.severity == lint::Severity::Error)
            ++counts.errors;
        else if (d.severity == lint::Severity::Warning)
            ++counts.warnings;
    }
    return counts;
}

// --- the abstract domain ------------------------------------------------

TEST(AccessBracket, LatticeOperations)
{
    const AccessBracket a{10.0, 20.0};
    const AccessBracket b{5.0, 30.0};

    const AccessBracket sum = analysis::add(a, b);
    EXPECT_DOUBLE_EQ(sum.lo, 15.0);
    EXPECT_DOUBLE_EQ(sum.hi, 50.0);

    const AccessBracket scaled = analysis::scale(a, 3.0);
    EXPECT_DOUBLE_EQ(scaled.lo, 30.0);
    EXPECT_DOUBLE_EQ(scaled.hi, 60.0);

    const AccessBracket gated = analysis::meetMin(a, b);
    EXPECT_DOUBLE_EQ(gated.lo, 5.0);
    EXPECT_DOUBLE_EQ(gated.hi, 20.0);

    const AccessBracket hull = analysis::join(a, b);
    EXPECT_DOUBLE_EQ(hull.lo, 5.0);
    EXPECT_DOUBLE_EQ(hull.hi, 30.0);
}

TEST(AccessBracket, InfinityIsAbsorbedSoundly)
{
    // 0 * inf is 0 by convention: an empty replication consumes
    // nothing regardless of upstream capacity.
    const AccessBracket zero = analysis::scale(AccessBracket::top(), 0.0);
    EXPECT_DOUBLE_EQ(zero.lo, 0.0);
    EXPECT_DOUBLE_EQ(zero.hi, 0.0);

    // [inf, inf] is the identity of meetMin: a non-wearing node never
    // tightens a capacity bound.
    const AccessBracket identity{kInf, kInf};
    const AccessBracket a{10.0, 20.0};
    const AccessBracket gated = analysis::meetMin(identity, a);
    EXPECT_DOUBLE_EQ(gated.lo, a.lo);
    EXPECT_DOUBLE_EQ(gated.hi, a.hi);
}

TEST(AccessBracket, DegenerateInputsCollapseToTop)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(analysis::scale({1.0, 2.0}, nan).isTop());
    EXPECT_TRUE(analysis::scale({1.0, 2.0}, -1.0).isTop());
    EXPECT_TRUE(analysis::scale({1.0, 2.0}, kInf).isTop());
    EXPECT_TRUE(analysis::add({nan, nan}, {1.0, 2.0}).isTop());
}

TEST(AccessBracket, WideningStabilizesAscendingChains)
{
    // Endpoints that moved jump straight to the lattice bound...
    const AccessBracket widened =
        analysis::widen({10.0, 20.0}, {5.0, 25.0});
    EXPECT_DOUBLE_EQ(widened.lo, 0.0);
    EXPECT_TRUE(widened.unboundedAbove());

    // ...and endpoints that did not move stay put, so a second
    // application is a fixpoint.
    const AccessBracket stable = analysis::widen(widened, widened);
    EXPECT_DOUBLE_EQ(stable.lo, widened.lo);
    EXPECT_DOUBLE_EQ(stable.hi, widened.hi);
}

TEST(AccessBracket, WorkloadDemandEnvelopeIsCentered)
{
    lint::WorkloadSpec workload;
    workload.meanPerDay = 100.0;
    const AccessBracket demand = analysis::workloadDemand(workload, 365);

    // 36,500 expected accesses, +/- 6 sigma of sqrt(36,500).
    EXPECT_TRUE(demand.contains(36500.0));
    const double sigma = std::sqrt(36500.0);
    EXPECT_NEAR(demand.lo, 36500.0 - 6.0 * sigma, 1.0);
    EXPECT_NEAR(demand.hi, 36500.0 + 6.0 * sigma, 1.0);
}

TEST(AccessBracket, BurstMixtureWidensTheEnvelope)
{
    lint::WorkloadSpec plain;
    plain.meanPerDay = 50.0;
    lint::WorkloadSpec bursty = plain;
    bursty.burstProbability = 0.1;
    bursty.burstMultiplier = 3.0;

    const AccessBracket p = analysis::workloadDemand(plain, 365);
    const AccessBracket b = analysis::workloadDemand(bursty, 365);
    // Bursts raise both the mean and the spread.
    EXPECT_GT(b.hi, p.hi);
    EXPECT_GT(b.hi - b.lo, p.hi - p.lo);
}

TEST(AccessBracket, UnboundedHorizonWidensToInfinity)
{
    lint::WorkloadSpec workload;
    workload.meanPerDay = 50.0;
    const AccessBracket demand = analysis::unboundedHorizonDemand(workload);
    EXPECT_GT(demand.lo, 0.0);
    EXPECT_TRUE(std::isfinite(demand.lo));
    EXPECT_TRUE(demand.unboundedAbove());
}

TEST(AccessBracket, ChernoffTailsAreProbabilities)
{
    lint::WorkloadSpec workload;
    workload.meanPerDay = 50.0;
    workload.burstProbability = 0.1;
    workload.burstMultiplier = 3.0;

    // Far above the mean: negligible. At the mean: vacuous-ish but
    // still a probability. Far below (lower tail): negligible.
    const double mean365 = 365.0 * 50.0 * 1.2;
    const double farAbove =
        analysis::demandTailBound(workload, 365, 2.0 * mean365, true);
    const double atMean =
        analysis::demandTailBound(workload, 365, mean365, true);
    const double farBelow =
        analysis::demandTailBound(workload, 365, 0.5 * mean365, false);

    EXPECT_LT(farAbove, 1e-6);
    EXPECT_GE(atMean, 0.0);
    EXPECT_LE(atMean, 1.0);
    EXPECT_LT(farBelow, 1e-6);
}

TEST(AccessBracket, LockoutProbabilityRespectsTheBound)
{
    lint::MixtureSpec lifetime; // pure designed wearout
    lifetime.main = {150000.0, 12.0}; // fielded-unit scale
    // Demand past the access bound is a certain lockout.
    const verify::Interval certain = analysis::lockoutProbability(
        lifetime, AccessBracket::point(100000.0), 91250.0);
    EXPECT_DOUBLE_EQ(certain.lo, 1.0);
    // Tiny demand against a designed-wearout lot: negligible.
    const verify::Interval tiny = analysis::lockoutProbability(
        lifetime, AccessBracket::point(100.0), 91250.0);
    EXPECT_LT(tiny.hi, 1e-6);
}

// --- the dataflow over the IR -------------------------------------------

TEST(Propagate, DeviceChainCapacityMatchesCertifiedExpectation)
{
    ir::Graph graph("chain");
    const ir::NodeId src =
        graph.add(node(ir::NodeKind::SecretSource, "key"));
    ir::Node bank = node(ir::NodeKind::Device, "bank");
    bank.device = {10.0, 12.0};
    bank.n = 105;
    const ir::NodeId dev = graph.add(bank);
    const ir::NodeId sink = graph.add(node(ir::NodeKind::Sink, "out"));
    graph.connect(src, dev);
    graph.connect(dev, sink);

    const analysis::GraphBudget budget = analysis::propagateBudgets(graph);
    ASSERT_FALSE(budget.vacuous);
    const verify::Interval expected =
        verify::expectedStructureAccesses({10.0, 12.0}, 105, 1, 0);
    EXPECT_DOUBLE_EQ(budget.systemCapacity.lo, expected.lo);
    EXPECT_DOUBLE_EQ(budget.systemCapacity.hi, expected.hi);
}

TEST(Propagate, ReplicateMultipliesCapacityAndDividesDemand)
{
    ir::Graph graph("replicated");
    const ir::NodeId src =
        graph.add(node(ir::NodeKind::SecretSource, "key"));
    ir::Node bank = node(ir::NodeKind::Device, "bank");
    bank.device = {10.0, 12.0};
    bank.n = 105;
    const ir::NodeId dev = graph.add(bank);
    ir::Node copies = node(ir::NodeKind::Replicate, "copies");
    copies.count = 40;
    const ir::NodeId rep = graph.add(copies);
    const ir::NodeId sink = graph.add(node(ir::NodeKind::Sink, "out"));
    graph.connect(src, dev);
    graph.connect(dev, rep);
    graph.connect(rep, sink);

    const analysis::GraphBudget budget = analysis::propagateBudgets(
        graph, AccessBracket::point(400.0));
    ASSERT_FALSE(budget.vacuous);

    const verify::Interval per =
        verify::expectedStructureAccesses({10.0, 12.0}, 105, 1, 0);
    EXPECT_DOUBLE_EQ(budget.systemCapacity.lo, 40.0 * per.lo);
    EXPECT_DOUBLE_EQ(budget.systemCapacity.hi, 40.0 * per.hi);

    // 400 accesses across 40 serially consumed copies: 10 per copy
    // reach the feeding device.
    EXPECT_DOUBLE_EQ(budget.nodes.at(dev).demand.lo, 10.0);
    EXPECT_DOUBLE_EQ(budget.nodes.at(dev).demand.hi, 10.0);
    EXPECT_DOUBLE_EQ(budget.systemDemand.lo, 400.0);
}

TEST(Propagate, TightestGateBoundsTheSystem)
{
    // Two wearout stages in series: the system bracket cannot exceed
    // the weaker stage's upper endpoint.
    ir::Graph graph("gated");
    ir::Node weak = node(ir::NodeKind::Device, "weak");
    weak.device = {10.0, 12.0};
    weak.n = 1;
    const ir::NodeId a = graph.add(weak);
    ir::Node strong = node(ir::NodeKind::Device, "strong");
    strong.device = {10.0, 12.0};
    strong.n = 105;
    const ir::NodeId b = graph.add(strong);
    const ir::NodeId sink = graph.add(node(ir::NodeKind::Sink, "out"));
    graph.connect(a, b);
    graph.connect(b, sink);

    const analysis::GraphBudget budget = analysis::propagateBudgets(graph);
    ASSERT_FALSE(budget.vacuous);
    const verify::Interval weaker =
        verify::expectedStructureAccesses({10.0, 12.0}, 1, 1, 0);
    EXPECT_LE(budget.systemCapacity.hi, weaker.hi);
}

TEST(Propagate, CyclicGraphIsVacuous)
{
    ir::Graph graph("cyclic");
    const ir::NodeId a = graph.add(node(ir::NodeKind::Device, "a"));
    const ir::NodeId b = graph.add(node(ir::NodeKind::Device, "b"));
    graph.connect(a, b);
    graph.connect(b, a);

    const analysis::GraphBudget budget = analysis::propagateBudgets(graph);
    EXPECT_TRUE(budget.vacuous);
    EXPECT_TRUE(budget.systemCapacity.isTop());
}

TEST(Propagate, StoreOnlyPathIsUnbounded)
{
    ir::Graph graph("bare");
    const ir::NodeId src =
        graph.add(node(ir::NodeKind::SecretSource, "key"));
    const ir::NodeId store = graph.add(node(ir::NodeKind::Store, "htree"));
    const ir::NodeId sink = graph.add(node(ir::NodeKind::Sink, "out"));
    graph.connect(src, store);
    graph.connect(store, sink);

    const analysis::GraphBudget budget = analysis::propagateBudgets(graph);
    ASSERT_FALSE(budget.vacuous);
    EXPECT_TRUE(budget.systemCapacity.unboundedAbove());
}

// --- A-code goldens -----------------------------------------------------

TEST(Analyze, BudgetExhaustionRaisesA001)
{
    const analysis::FileAnalysis analysis = analysis::analyzeSpecFile(
        configPath("violations/budget_exhaustion.lemons"));
    EXPECT_TRUE(analysis.findings.hasCode(lint::Code::A001));
    EXPECT_EQ(aCounts(analysis).errors, 1u);
}

TEST(Analyze, PrematureFleetRaisesA002)
{
    const analysis::FileAnalysis analysis = analysis::analyzeSpecFile(
        configPath("violations/premature_fleet.lemons"));
    EXPECT_TRUE(analysis.findings.hasCode(lint::Code::A002));
    EXPECT_EQ(aCounts(analysis).errors, 1u);

    // The certified bracket that justifies the error is reported too.
    ASSERT_EQ(analysis.cohorts.size(), 1u);
    EXPECT_GT(analysis.cohorts[0].premature.lo, 0.05);
    EXPECT_LE(analysis.cohorts[0].premature.hi, 1.0);
}

TEST(Analyze, DeadWearRaisesA003)
{
    const analysis::FileAnalysis analysis = analysis::analyzeSpecFile(
        configPath("violations/dead_wear.lemons"));
    EXPECT_TRUE(analysis.findings.hasCode(lint::Code::A003));
    EXPECT_EQ(aCounts(analysis).errors, 0u);
    EXPECT_EQ(aCounts(analysis).warnings, 1u);
}

TEST(Analyze, GuessingAdversaryRaisesA101)
{
    const analysis::FileAnalysis analysis = analysis::analyzeSpecFile(
        configPath("violations/guessing_adversary.lemons"));
    EXPECT_TRUE(analysis.findings.hasCode(lint::Code::A101));
    ASSERT_EQ(analysis.adversaries.size(), 1u);
    EXPECT_GT(analysis.adversaries[0].success.lo, 0.01);
}

TEST(Analyze, UnguardedSharesRaiseA102)
{
    const analysis::FileAnalysis analysis = analysis::analyzeSpecFile(
        configPath("violations/unbounded_wearout.lemons"));
    EXPECT_TRUE(analysis.findings.hasCode(lint::Code::A102));
}

TEST(Analyze, StraddlingCeilingRaisesA103)
{
    // A ceiling inside the certified bracket: undecidable statically,
    // warned (A103) rather than condemned.
    const analysis::FileAnalysis analysis = analysis::analyzeSpecText(
        "[design]\n"
        "alpha = 10\nbeta = 12\nlab = 91250\nk_fraction = 0.1\n"
        "min_reliability = 0.99\nmax_residual_reliability = 0.01\n"
        "guess_space = 1e6\nguess_success_ceiling = 0.09131\n",
        "straddle.lemons");
    EXPECT_TRUE(analysis.findings.hasCode(lint::Code::A103));
    EXPECT_EQ(aCounts(analysis).errors, 0u);
}

TEST(Analyze, DischargedObligationRaisesA104)
{
    const analysis::FileAnalysis analysis = analysis::analyzeSpecText(
        "[design]\n"
        "alpha = 10\nbeta = 12\nlab = 91250\nk_fraction = 0.1\n"
        "min_reliability = 0.99\nmax_residual_reliability = 0.01\n"
        "guess_space = 1e9\nguess_success_ceiling = 0.001\n",
        "discharged.lemons");
    EXPECT_TRUE(analysis.findings.hasCode(lint::Code::A104));
    EXPECT_EQ(aCounts(analysis).errors, 0u);
    EXPECT_EQ(aCounts(analysis).warnings, 0u);
}

TEST(Analyze, ShippedConfigsAreClean)
{
    for (const char *name :
         {"fault_baseline.lemons", "fleet_smartphone.lemons",
          "otp_messaging.lemons", "paper_defaults.lemons",
          "smartphone_unlock.lemons", "targeting_mission.lemons"}) {
        const analysis::FileAnalysis analysis =
            analysis::analyzeSpecFile(configPath(name));
        const ACounts counts = aCounts(analysis);
        EXPECT_EQ(counts.errors, 0u) << name << ":\n"
                                     << analysis.findings.format();
        EXPECT_EQ(counts.warnings, 0u) << name << ":\n"
                                       << analysis.findings.format();
    }
}

TEST(Analyze, ShippedDesignBracketsStayTight)
{
    // The smartphone design's certified capacity bracket must stay a
    // sub-percent band around the paper's LAB = 91,250 architecture.
    const analysis::FileAnalysis analysis = analysis::analyzeSpecFile(
        configPath("smartphone_unlock.lemons"));
    bool sawDesign = false;
    for (const analysis::GraphBudget &g : analysis.graphs) {
        if (g.graph != "design")
            continue;
        sawDesign = true;
        EXPECT_FALSE(g.vacuous);
        EXPECT_GT(g.systemCapacity.lo, 85000.0);
        EXPECT_LT(g.systemCapacity.hi, 95000.0);
        EXPECT_LT(g.systemCapacity.hi - g.systemCapacity.lo,
                  0.01 * g.systemCapacity.lo);
    }
    EXPECT_TRUE(sawDesign);
}

TEST(Analyze, UnreadableFileYieldsEmptyAnalysis)
{
    const analysis::FileAnalysis analysis =
        analysis::analyzeSpecFile(configPath("no_such_file.lemons"));
    EXPECT_TRUE(analysis.graphs.empty());
    EXPECT_TRUE(analysis.findings.empty());
}

// --- the JSON report ----------------------------------------------------

TEST(AnalyzeJson, ReportCarriesSchemaAndBrackets)
{
    analysis::AnalyzedFile entry;
    entry.analysis = analysis::analyzeSpecFile(
        configPath("smartphone_unlock.lemons"));
    entry.findings = entry.analysis.findings;
    const std::string json = analysis::renderAnalysisJson({entry});

    EXPECT_NE(json.find("\"schema\":\"lemons-analyze/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"graphs\""), std::string::npos);
    EXPECT_NE(json.find("\"system_capacity\""), std::string::npos);
    EXPECT_NE(json.find("\"adversaries\""), std::string::npos);
    // Unbounded endpoints serialize as null, never as bare inf (which
    // would break every JSON parser downstream).
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

// --- the shared code registry -------------------------------------------

TEST(Registry, AnalyzerCodesAreCataloged)
{
    EXPECT_STREQ(lint::codeInfo(lint::Code::A001).id, "A001");
    EXPECT_STREQ(lint::codeInfo(lint::Code::A104).id, "A104");
    EXPECT_STREQ(lint::codeInfo(lint::Code::C105).id, "C105");
    EXPECT_EQ(lint::codeInfo(lint::Code::A003).severity,
              lint::Severity::Warning);
    EXPECT_EQ(lint::codeInfo(lint::Code::A004).severity,
              lint::Severity::Note);
    EXPECT_EQ(lint::codeInfo(lint::Code::A102).severity,
              lint::Severity::Error);

    // Every A/C row is reachable through the one shared catalog.
    size_t aRows = 0, cRows = 0;
    for (const lint::CodeInfo &info : lint::codeCatalog()) {
        if (info.id[0] == 'A')
            ++aRows;
        else if (info.id[0] == 'C')
            ++cRows;
    }
    EXPECT_EQ(aRows, 8u);
    EXPECT_EQ(cRows, 7u);
}

} // namespace
} // namespace lemons
