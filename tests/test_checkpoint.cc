/**
 * @file
 * Unit tests for the fleet-ckpt/1 checkpoint format: bit-exact
 * round-trips, the C1xx fault taxonomy (bad magic, future version,
 * truncation, checksum mismatch, malformed payload), forward-compat
 * extension records, atomic-write rotation, and the loud-fallback
 * loader semantics.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "fleet/checkpoint.h"
#include "util/checksum.h"
#include "util/stats.h"

namespace lemons::fleet {
namespace {

namespace fs = std::filesystem;

/** A throwaway directory per test, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        root = fs::temp_directory_path() /
               ("lemons-ckpt-test-" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "-" + std::to_string(counter()++));
        fs::create_directories(root);
    }
    ~TempDir()
    {
        std::error_code ignored;
        fs::remove_all(root, ignored);
    }
    std::string path(const std::string &name) const
    {
        return (root / name).string();
    }

  private:
    static int &counter()
    {
        static int value = 0;
        return value;
    }
    fs::path root;
};

FleetCheckpoint
sampleCheckpoint()
{
    FleetCheckpoint checkpoint;
    checkpoint.configFingerprint = 0xFEEDFACECAFEBEEFULL;

    CohortRecord retail;
    retail.name = "retail";
    retail.devices = 7000;
    retail.serviceDays = {.count = 7000,
                          .nonFiniteCount = 2,
                          .mean = 1422.75,
                          .m2 = 9881.5,
                          .min = 3.25,
                          .max = 1825.0};
    retail.replaced = 812;
    retail.premature = 31;
    retail.reprovisioned = 0;
    checkpoint.completed.push_back(retail);

    checkpoint.hasCursor = true;
    checkpoint.cursor.seed = 99;
    checkpoint.cursor.requestedTrials = 3000;
    checkpoint.cursor.chunkSize = 64;
    checkpoint.cursor.executedChunks = 17;
    checkpoint.cursor.streaming = {.count = 1086,
                                   .nonFiniteCount = 2,
                                   .mean = 901.5,
                                   .m2 = 4.5,
                                   .min = 1.0,
                                   .max = 1825.0};
    checkpoint.cursor.failures = {{12, "device model threw"},
                                  {407, "second failure"}};
    checkpoint.cursor.nonFiniteTrials = {44, 1011};
    checkpoint.partialReplaced = 120;
    checkpoint.partialPremature = 7;
    checkpoint.partialReprovisioned = 53;
    return checkpoint;
}

void
expectStatsEqual(const RunningStats::State &a,
                 const RunningStats::State &b)
{
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.nonFiniteCount, b.nonFiniteCount);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.mean),
              std::bit_cast<uint64_t>(b.mean));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.m2),
              std::bit_cast<uint64_t>(b.m2));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.min),
              std::bit_cast<uint64_t>(b.min));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.max),
              std::bit_cast<uint64_t>(b.max));
}

void
expectCheckpointsEqual(const FleetCheckpoint &a, const FleetCheckpoint &b)
{
    EXPECT_EQ(a.configFingerprint, b.configFingerprint);
    ASSERT_EQ(a.completed.size(), b.completed.size());
    for (size_t i = 0; i < a.completed.size(); ++i) {
        EXPECT_EQ(a.completed[i].name, b.completed[i].name);
        EXPECT_EQ(a.completed[i].devices, b.completed[i].devices);
        expectStatsEqual(a.completed[i].serviceDays,
                         b.completed[i].serviceDays);
        EXPECT_EQ(a.completed[i].replaced, b.completed[i].replaced);
        EXPECT_EQ(a.completed[i].premature, b.completed[i].premature);
        EXPECT_EQ(a.completed[i].reprovisioned,
                  b.completed[i].reprovisioned);
    }
    ASSERT_EQ(a.hasCursor, b.hasCursor);
    if (a.hasCursor) {
        EXPECT_EQ(a.cursor.seed, b.cursor.seed);
        EXPECT_EQ(a.cursor.requestedTrials, b.cursor.requestedTrials);
        EXPECT_EQ(a.cursor.chunkSize, b.cursor.chunkSize);
        EXPECT_EQ(a.cursor.executedChunks, b.cursor.executedChunks);
        expectStatsEqual(a.cursor.streaming, b.cursor.streaming);
        EXPECT_EQ(a.cursor.failures, b.cursor.failures);
        EXPECT_EQ(a.cursor.nonFiniteTrials, b.cursor.nonFiniteTrials);
        EXPECT_EQ(a.partialReplaced, b.partialReplaced);
        EXPECT_EQ(a.partialPremature, b.partialPremature);
        EXPECT_EQ(a.partialReprovisioned, b.partialReprovisioned);
    }
}

/** Little-endian u64 append, for handcrafting malformed payloads. */
void
pushU64(std::vector<uint8_t> &bytes, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        bytes.push_back(static_cast<uint8_t>((value >> shift) & 0xFFu));
}

TEST(CheckpointFormat, RoundTripIsExact)
{
    const FleetCheckpoint original = sampleCheckpoint();
    const std::vector<uint8_t> bytes = encodeCheckpoint(original);
    const FleetCheckpoint decoded =
        decodeCheckpoint(bytes.data(), bytes.size(), "mem");
    expectCheckpointsEqual(original, decoded);
}

TEST(CheckpointFormat, RoundTripPreservesNonFiniteExtrema)
{
    // The identity extrema of an empty shard (+inf / -inf) must
    // survive serialization bit-for-bit.
    FleetCheckpoint checkpoint;
    CohortRecord empty;
    empty.name = "empty";
    empty.serviceDays = RunningStats{}.state();
    checkpoint.completed.push_back(empty);
    const std::vector<uint8_t> bytes = encodeCheckpoint(checkpoint);
    const FleetCheckpoint decoded =
        decodeCheckpoint(bytes.data(), bytes.size(), "mem");
    ASSERT_EQ(decoded.completed.size(), 1u);
    EXPECT_EQ(decoded.completed[0].serviceDays.min,
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(decoded.completed[0].serviceDays.max,
              -std::numeric_limits<double>::infinity());
}

TEST(CheckpointFormat, UnknownTrailingExtensionsLoadCleanly)
{
    // A future fleet-ckpt/1 writer appends tagged records this build
    // has never heard of; they must decode cleanly and be preserved.
    FleetCheckpoint future = sampleCheckpoint();
    future.extensions.push_back(
        {.tag = 0xDEAD0001u, .bytes = {1, 2, 3, 4, 5}});
    future.extensions.push_back({.tag = 0xDEAD0002u, .bytes = {}});
    const std::vector<uint8_t> bytes = encodeCheckpoint(future);
    const FleetCheckpoint decoded =
        decodeCheckpoint(bytes.data(), bytes.size(), "mem");
    expectCheckpointsEqual(future, decoded);
    ASSERT_EQ(decoded.extensions.size(), 2u);
    EXPECT_EQ(decoded.extensions[0].tag, 0xDEAD0001u);
    EXPECT_EQ(decoded.extensions[0].bytes,
              (std::vector<uint8_t>{1, 2, 3, 4, 5}));
    EXPECT_EQ(decoded.extensions[1].tag, 0xDEAD0002u);
}

TEST(CheckpointFormat, WrongMagicFailsClearly)
{
    const std::string garbage = "definitely not a checkpoint file";
    try {
        static_cast<void>(decodeCheckpoint(garbage.data(),
                                           garbage.size(), "mem"));
        FAIL() << "bad magic must throw";
    } catch (const CheckpointError &error) {
        EXPECT_NE(std::string(error.what()).find("C101"),
                  std::string::npos)
            << error.what();
    }
}

TEST(CheckpointFormat, FutureVersionFailsWithVersionMessage)
{
    const std::string future = "fleet-ckpt/2\nwhatever follows";
    try {
        static_cast<void>(
            decodeCheckpoint(future.data(), future.size(), "mem"));
        FAIL() << "future version must throw";
    } catch (const CheckpointError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("C102"), std::string::npos) << what;
        EXPECT_NE(what.find("fleet-ckpt/2"), std::string::npos) << what;
    }
}

TEST(CheckpointFormat, TruncationFailsClearly)
{
    const std::vector<uint8_t> bytes =
        encodeCheckpoint(sampleCheckpoint());
    // Every proper prefix must fail loudly, never crash or mis-decode.
    for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{14}})
        EXPECT_THROW(static_cast<void>(
                         decodeCheckpoint(bytes.data(), keep, "mem")),
                     CheckpointError)
            << "prefix of " << keep << " bytes decoded";
}

TEST(CheckpointFormat, EveryFlippedByteIsDetected)
{
    const std::vector<uint8_t> bytes =
        encodeCheckpoint(sampleCheckpoint());
    // Exhaustive single-byte corruption: no flipped byte anywhere in
    // the file may decode successfully (C101/C102/C103/C104/C106 are
    // all acceptable rejections — silence is not).
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::vector<uint8_t> torn = bytes;
        torn[i] ^= 0x5A;
        EXPECT_THROW(static_cast<void>(decodeCheckpoint(
                         torn.data(), torn.size(), "mem")),
                     CheckpointError)
            << "flip at offset " << i << " went undetected";
    }
}

TEST(CheckpointFormat, ChecksummedGarbagePayloadFailsAsMalformed)
{
    // A payload whose CRC is valid but whose content lies about its
    // own sizes (a cohort count far beyond the bytes present) must be
    // rejected as malformed, not trusted into a huge allocation loop.
    std::vector<uint8_t> payload;
    pushU64(payload, 0x1234); // fingerprint
    pushU64(payload, std::numeric_limits<uint64_t>::max()); // cohorts
    std::vector<uint8_t> file(kCheckpointMagic,
                              kCheckpointMagic +
                                  sizeof(kCheckpointMagic) - 1);
    pushU64(file, payload.size());
    file.insert(file.end(), payload.begin(), payload.end());
    const uint32_t crc = crc32c(payload.data(), payload.size());
    for (int shift = 0; shift < 32; shift += 8)
        file.push_back(static_cast<uint8_t>((crc >> shift) & 0xFFu));
    try {
        static_cast<void>(
            decodeCheckpoint(file.data(), file.size(), "mem"));
        FAIL() << "malformed payload must throw";
    } catch (const CheckpointError &error) {
        EXPECT_NE(std::string(error.what()).find("C106"),
                  std::string::npos)
            << error.what();
    }
}

TEST(CheckpointFiles, AtomicWriteRotatesPrevious)
{
    const TempDir dir;
    const std::string path = dir.path("fleet.ckpt");

    FleetCheckpoint first = sampleCheckpoint();
    first.partialReplaced = 1;
    writeCheckpointAtomic(path, first);
    FleetCheckpoint second = sampleCheckpoint();
    second.partialReplaced = 2;
    writeCheckpointAtomic(path, second);

    // Primary holds the newest state, .prev the one before it, and no
    // temp file is left behind.
    expectCheckpointsEqual(second, readCheckpoint(path));
    expectCheckpointsEqual(first, readCheckpoint(path + ".prev"));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(CheckpointFiles, LoadWithFallbackFreshStart)
{
    const TempDir dir;
    const CheckpointLoadOutcome outcome =
        loadWithFallback(dir.path("missing.ckpt"));
    EXPECT_FALSE(outcome.checkpoint.has_value());
    EXPECT_FALSE(outcome.fellBack);
    EXPECT_TRUE(outcome.warning.empty());
}

TEST(CheckpointFiles, LoadWithFallbackRecoversFromCorruptPrimary)
{
    const TempDir dir;
    const std::string path = dir.path("fleet.ckpt");
    FleetCheckpoint good = sampleCheckpoint();
    good.partialReplaced = 10;
    writeCheckpointAtomic(path, good);
    FleetCheckpoint newer = sampleCheckpoint();
    newer.partialReplaced = 20;
    writeCheckpointAtomic(path, newer);

    // Corrupt the primary in place (torn write at rest).
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        file.seekp(40);
        const char zap = 0x7F;
        file.write(&zap, 1);
    }

    const CheckpointLoadOutcome outcome = loadWithFallback(path);
    ASSERT_TRUE(outcome.checkpoint.has_value());
    EXPECT_TRUE(outcome.fellBack);
    EXPECT_FALSE(outcome.warning.empty());
    // The fallback is the previous good checkpoint, not the newer,
    // corrupted one.
    expectCheckpointsEqual(good, *outcome.checkpoint);
}

TEST(CheckpointFiles, LoadWithFallbackUsesPreviousWhenPrimaryMissing)
{
    // Crash window between the rotate and the final rename: only
    // .prev exists.
    const TempDir dir;
    const std::string path = dir.path("fleet.ckpt");
    const FleetCheckpoint good = sampleCheckpoint();
    writeCheckpointAtomic(path + ".prev", good);
    fs::remove(path + ".prev.prev");

    const CheckpointLoadOutcome outcome = loadWithFallback(path);
    ASSERT_TRUE(outcome.checkpoint.has_value());
    EXPECT_FALSE(outcome.warning.empty());
    expectCheckpointsEqual(good, *outcome.checkpoint);
}

TEST(CheckpointFiles, LoadWithFallbackRethrowsWhenBothBad)
{
    const TempDir dir;
    const std::string path = dir.path("fleet.ckpt");
    writeCheckpointAtomic(path, sampleCheckpoint());
    writeCheckpointAtomic(path, sampleCheckpoint());
    // Truncate both copies: nothing trustworthy remains, so the
    // loader must refuse rather than resume from invented state.
    for (const std::string &victim : {path, path + ".prev"}) {
        std::ofstream file(victim,
                           std::ios::binary | std::ios::trunc);
        file << "fleet-ckpt/1\ntorn";
    }
    EXPECT_THROW(static_cast<void>(loadWithFallback(path)),
                 CheckpointError);
}

} // namespace
} // namespace lemons::fleet
