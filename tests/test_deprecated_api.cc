/**
 * @file
 * Compatibility tests for the deprecated MonteCarlo overload family.
 *
 * runStats / runSamples / runStatsParallel / runSamplesParallel /
 * runSamplesReport survive as [[deprecated]] wrappers over run(); this
 * suite pins each wrapper to the behaviour of its replacement so the
 * migration path stays safe until the wrappers are removed. This is
 * the only translation unit allowed to call them, hence the pragma.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/monte_carlo.h"
#include "util/rng.h"

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace lemons::sim {
namespace {

double
noisyMetric(Rng &rng)
{
    return std::sqrt(rng.nextDouble()) + 0.25 * rng.nextDouble();
}

TEST(DeprecatedApi, RunStatsMatchesRun)
{
    const MonteCarlo mc(42, 2000);
    const RunningStats legacy = mc.runStats(noisyMetric);
    const RunningStats current =
        mc.run(noisyMetric, {.faults = FaultPolicy::Rethrow}).stats;
    EXPECT_EQ(legacy.count(), current.count());
    EXPECT_EQ(std::bit_cast<uint64_t>(legacy.mean()),
              std::bit_cast<uint64_t>(current.mean()));
    EXPECT_EQ(std::bit_cast<uint64_t>(legacy.variance()),
              std::bit_cast<uint64_t>(current.variance()));
}

TEST(DeprecatedApi, RunSamplesMatchesRun)
{
    const MonteCarlo mc(7, 500);
    const std::vector<double> legacy = mc.runSamples(noisyMetric);
    const std::vector<double> current =
        mc.run(noisyMetric, {.faults = FaultPolicy::Rethrow}).samples;
    ASSERT_EQ(legacy.size(), current.size());
    for (size_t i = 0; i < legacy.size(); ++i)
        EXPECT_EQ(std::bit_cast<uint64_t>(legacy[i]),
                  std::bit_cast<uint64_t>(current[i]));
}

TEST(DeprecatedApi, RunSamplesParallelBitIdenticalToSerial)
{
    const MonteCarlo mc(1337, 1001);
    const std::vector<double> serial = mc.runSamples(noisyMetric);
    for (unsigned threads : {1u, 2u, 8u}) {
        const std::vector<double> parallel =
            mc.runSamplesParallel(noisyMetric, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(parallel[i], serial[i])
                << "threads=" << threads << " trial=" << i;
    }
}

TEST(DeprecatedApi, RunStatsParallelMatchesSerialAggregates)
{
    const MonteCarlo mc(99, 5000);
    const RunningStats serial = mc.runStats(noisyMetric);
    const RunningStats parallel = mc.runStatsParallel(noisyMetric, 4);
    EXPECT_EQ(parallel.count(), serial.count());
    EXPECT_EQ(parallel.min(), serial.min());
    EXPECT_EQ(parallel.max(), serial.max());
    EXPECT_NEAR(parallel.mean(), serial.mean(), 1e-12);
    EXPECT_NEAR(parallel.variance(), serial.variance(), 1e-12);
}

TEST(DeprecatedApi, RunSamplesParallelRethrows)
{
    const MonteCarlo mc(5, 64);
    const auto metric = [](Rng &rng) -> double {
        if (rng.nextDouble() > 0.9)
            throw std::runtime_error("boom");
        return 1.0;
    };
    EXPECT_THROW(static_cast<void>(mc.runSamplesParallel(metric, 2)),
                 std::runtime_error);
}

TEST(DeprecatedApi, RunSamplesReportCapturesFailures)
{
    const MonteCarlo mc(11, 100);
    const TrialReport report = mc.runSamplesReport(
        [](Rng &rng, uint64_t trial) -> double {
            if (trial == 19)
                throw std::runtime_error("trial 19 down");
            return rng.nextDouble();
        },
        3);
    ASSERT_EQ(report.failedTrials.size(), 1u);
    EXPECT_EQ(report.failedTrials[0], 19u);
    EXPECT_EQ(report.firstError, "trial 19 down");
    EXPECT_EQ(report.trials, 100u);
    EXPECT_EQ(report.cleanTrials(), 99u);
}

TEST(DeprecatedApi, RunSamplesReportIndexObliviousOverload)
{
    const MonteCarlo mc(13, 64);
    const TrialReport report = mc.runSamplesReport(
        [](Rng &rng) { return rng.nextDouble(); }, 2);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.samples.size(), 64u);
}

} // namespace
} // namespace lemons::sim

#pragma GCC diagnostic pop
