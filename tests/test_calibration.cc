/**
 * @file
 * Tests for the device-calibration workflow (fit field data, audit the
 * nominal design, re-solve).
 */

#include <gtest/gtest.h>

#include "core/calibration.h"
#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::core {
namespace {

DesignRequest
assumedRequest()
{
    DesignRequest request;
    request.device = {10.0, 12.0};
    request.legitimateAccessBound = 100;
    request.kFraction = 0.1;
    return request;
}

std::vector<double>
lotLifetimes(double alpha, double beta, size_t count, uint64_t seed)
{
    const wearout::Weibull truth(alpha, beta);
    Rng rng(seed);
    return truth.sampleMany(rng, count);
}

TEST(Calibration, OnSpecLotPassesAudit)
{
    const auto report = calibrateAndRedesign(
        lotLifetimes(10.0, 12.0, 20000, 1), assumedRequest());
    EXPECT_NEAR(report.fitted.alpha, 10.0, 0.1);
    EXPECT_NEAR(report.fitted.beta, 12.0, 0.5);
    ASSERT_TRUE(report.nominalDesign.feasible);
    EXPECT_TRUE(report.nominalStillMeetsCriteria);
    EXPECT_GE(report.nominalReliabilityAtBound, 0.99);
    ASSERT_TRUE(report.recalibratedDesign.feasible);
    // Cost ratio near 1: the lot matches the assumption.
    EXPECT_GT(report.redesignCostRatio, 0.5);
    EXPECT_LT(report.redesignCostRatio, 2.0);
}

TEST(Calibration, ShortLivedLotFailsTheMinimumBound)
{
    // Devices wearing out 30% early: the nominal design can no longer
    // deliver its access bound reliably.
    const auto report = calibrateAndRedesign(
        lotLifetimes(7.0, 12.0, 20000, 2), assumedRequest());
    EXPECT_NEAR(report.fitted.alpha, 7.0, 0.1);
    EXPECT_FALSE(report.nominalStillMeetsCriteria);
    EXPECT_LT(report.nominalReliabilityAtBound, 0.99);
    // The recalibrated design restores feasibility (more copies of
    // shorter-lived structures).
    EXPECT_TRUE(report.recalibratedDesign.feasible);
    EXPECT_GE(report.recalibratedDesign.reliabilityAtBound, 0.99);
}

TEST(Calibration, LongLivedLotFailsTheResidualBound)
{
    // Devices lasting 40% longer: the nominal design no longer dies on
    // schedule — an attacker gains accesses.
    const auto report = calibrateAndRedesign(
        lotLifetimes(14.0, 12.0, 20000, 3), assumedRequest());
    EXPECT_NEAR(report.fitted.alpha, 14.0, 0.15);
    EXPECT_FALSE(report.nominalStillMeetsCriteria);
    EXPECT_GT(report.nominalResidualPastBound, 0.01);
}

TEST(Calibration, SloppyShapeLotCostsMoreDevices)
{
    // A lot with much higher variation (beta 12 -> 6) needs a larger
    // recalibrated architecture — the fabrication-cost vs area-cost
    // trade-off made concrete.
    const auto report = calibrateAndRedesign(
        lotLifetimes(10.0, 6.0, 20000, 4), assumedRequest());
    EXPECT_NEAR(report.fitted.beta, 6.0, 0.3);
    ASSERT_TRUE(report.recalibratedDesign.feasible);
    EXPECT_GT(report.redesignCostRatio, 1.3);
}

TEST(Calibration, RejectsDegenerateData)
{
    EXPECT_THROW(calibrateAndRedesign({1.0}, assumedRequest()),
                 std::invalid_argument);
}

} // namespace
} // namespace lemons::core
