/**
 * @file
 * Pins the Prometheus text-exposition format behind GET /metrics
 * (obs/prometheus.h). Dashboards scrape this output, so the mapping —
 * counter -> counter, Timer -> summary in *seconds*, HistogramMetric
 * -> histogram with cumulative le buckets and a +Inf bucket equal to
 * _count — is contract, not implementation detail. These tests
 * compare whole rendered documents, so any format drift fails loudly.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace lemons::obs {
namespace {

TEST(Prometheus, NameSanitization)
{
    EXPECT_EQ(prometheusName("sim.mc.trials"), "sim_mc_trials");
    EXPECT_EQ(prometheusName("serve.responses.2xx"),
              "serve_responses_2xx");
    EXPECT_EQ(prometheusName("already_legal:name"),
              "already_legal:name");
    EXPECT_EQ(prometheusName("weird name/metric"),
              "weird_name_metric");
    // A leading digit gets a '_' prefix (Prometheus names cannot
    // start with a digit).
    EXPECT_EQ(prometheusName("2fast"), "_2fast");
    EXPECT_EQ(prometheusName(""), "");
}

TEST(Prometheus, CounterExposition)
{
    Registry registry;
    registry.counter("serve.requests").add(3);
    EXPECT_EQ(registry.toPrometheus(),
              "# HELP lemons_serve_requests lemons counter "
              "serve.requests\n"
              "# TYPE lemons_serve_requests counter\n"
              "lemons_serve_requests 3\n");
}

TEST(Prometheus, TimerBecomesSummaryInSeconds)
{
    Registry registry;
    // 1.5 ms and 0.5 ms -> 2 observations summing to 0.002 s.
    registry.timer("serve.request").record(1500000);
    registry.timer("serve.request").record(500000);
    EXPECT_EQ(registry.toPrometheus(),
              "# HELP lemons_serve_request_seconds lemons summary "
              "serve.request\n"
              "# TYPE lemons_serve_request_seconds summary\n"
              "lemons_serve_request_seconds_sum 0.002\n"
              "lemons_serve_request_seconds_count 2\n");
}

TEST(Prometheus, HistogramBucketsAreCumulative)
{
    Registry registry;
    HistogramMetric &metric =
        registry.histogram("api.latency", 0.0, 4.0, 2);
    metric.add(-1.0); // underflow: folds into every le bucket
    metric.add(0.5);  // first bin [0, 2)
    metric.add(2.5);  // second bin [2, 4)
    metric.add(9.0);  // overflow: visible only in +Inf and _count
    EXPECT_EQ(registry.toPrometheus(),
              "# HELP lemons_api_latency lemons histogram api.latency\n"
              "# TYPE lemons_api_latency histogram\n"
              "lemons_api_latency_bucket{le=\"2\"} 2\n"
              "lemons_api_latency_bucket{le=\"4\"} 3\n"
              "lemons_api_latency_bucket{le=\"+Inf\"} 4\n"
              "lemons_api_latency_sum 11\n"
              "lemons_api_latency_count 4\n");
}

TEST(Prometheus, MetricsRenderInNameOrder)
{
    // Snapshot order is name-sorted, so the exposition is stable
    // across runs regardless of registration order.
    Registry registry;
    registry.counter("b.second").add(2);
    registry.counter("a.first").add(1);
    const std::string text = registry.toPrometheus();
    const size_t first = text.find("lemons_a_first 1");
    const size_t second = text.find("lemons_b_second 2");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
}

TEST(Prometheus, HelpLineEscapesNewlines)
{
    Registry registry;
    registry.counter("odd\nname").add(1);
    const std::string text = registry.toPrometheus();
    EXPECT_NE(text.find("# HELP lemons_odd_name lemons counter "
                        "odd\\nname\n"),
              std::string::npos);
    EXPECT_NE(text.find("lemons_odd_name 1\n"), std::string::npos);
}

} // namespace
} // namespace lemons::obs
