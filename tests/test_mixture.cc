/**
 * @file
 * Tests for the bathtub-curve lifetime mixture and its effect on
 * structures designed under the pure-Weibull assumption (Section 7
 * model-sensitivity).
 */

#include <gtest/gtest.h>

#include "arch/structures_sim.h"
#include "sim/empirical.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"
#include "wearout/mixture.h"

namespace lemons::wearout {
namespace {

TEST(BathtubModel, RejectsBadWeight)
{
    const Weibull w(10.0, 8.0);
    EXPECT_THROW(BathtubModel(-0.1, w, w), std::invalid_argument);
    EXPECT_THROW(BathtubModel(1.1, w, w), std::invalid_argument);
}

TEST(BathtubModel, ZeroWeightIsTheMainModel)
{
    const Weibull main(10.0, 8.0);
    const BathtubModel mix(0.0, Weibull(1.0, 0.8), main);
    for (double x : {1.0, 5.0, 10.0, 15.0})
        EXPECT_DOUBLE_EQ(mix.reliability(x), main.reliability(x));
    EXPECT_DOUBLE_EQ(mix.mttf(), main.mttf());
}

TEST(BathtubModel, FullWeightIsTheInfantModel)
{
    const Weibull infant(1.0, 0.8);
    const BathtubModel mix(1.0, infant, Weibull(10.0, 8.0));
    for (double x : {0.5, 1.0, 2.0})
        EXPECT_DOUBLE_EQ(mix.reliability(x), infant.reliability(x));
}

TEST(BathtubModel, ReliabilityIsConvexCombination)
{
    const Weibull infant(1.0, 0.8);
    const Weibull main(10.0, 8.0);
    const BathtubModel mix(0.3, infant, main);
    for (double x : {0.5, 2.0, 8.0, 12.0}) {
        EXPECT_NEAR(mix.reliability(x),
                    0.3 * infant.reliability(x) +
                        0.7 * main.reliability(x),
                    1e-12);
    }
}

TEST(BathtubModel, CdfComplementsReliability)
{
    const BathtubModel mix =
        BathtubModel::withInfantMortality(Weibull(10.0, 8.0), 0.1);
    for (double x : {0.1, 1.0, 5.0, 10.0, 20.0})
        EXPECT_NEAR(mix.cdf(x) + mix.reliability(x), 1.0, 1e-12);
}

TEST(BathtubModel, SamplesMatchAnalyticCdf)
{
    const BathtubModel mix =
        BathtubModel::withInfantMortality(Weibull(10.0, 8.0), 0.15);
    Rng rng(1);
    std::vector<double> lifetimes;
    lifetimes.reserve(50000);
    for (int i = 0; i < 50000; ++i)
        lifetimes.push_back(mix.sample(rng));
    const sim::SurvivalCurve curve(std::move(lifetimes));
    EXPECT_LT(curve.ksDistance([&](double x) { return mix.cdf(x); }),
              0.0073);
}

TEST(BathtubModel, MttfMatchesSampleMean)
{
    const BathtubModel mix =
        BathtubModel::withInfantMortality(Weibull(10.0, 8.0), 0.2);
    Rng rng(2);
    double sum = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i)
        sum += mix.sample(rng);
    EXPECT_NEAR(sum / trials, mix.mttf(), 0.02 * mix.mttf());
}

TEST(BathtubModel, InfantMortalityHurtsEarlyReliability)
{
    const Weibull main(10.0, 8.0);
    const BathtubModel mix = BathtubModel::withInfantMortality(main, 0.1);
    // At 10% of the scale, the pure model is near-perfect; the mixture
    // loses roughly the infant fraction.
    EXPECT_GT(main.reliability(1.0), 0.999);
    EXPECT_LT(mix.reliability(1.0), 0.95);
}

TEST(BathtubMixture, KOutOfNStructuresAbsorbModerateInfantMortality)
{
    // A 60-wide k=6 structure designed for Weibull(10, 8) still meets
    // its 10-access bound when 5% of devices are infant-mortal: the
    // redundancy absorbs them (the design margin is n/k = 10x).
    const Weibull main(10.0, 12.0);
    const BathtubModel mix = BathtubModel::withInfantMortality(main, 0.05);
    const arch::LifetimeSampler sampler = [&](Rng &rng) {
        return mix.sample(rng);
    };
    const sim::MonteCarlo engine(3, 20000);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        return arch::sampleParallelSurvivedAccesses(sampler, 60, 6, rng) >=
               9;
    });
    EXPECT_GT(ci.estimate, 0.97);
}

TEST(BathtubMixture, HeavyInfantMortalityBreaksTheBound)
{
    // At 40% infant mortality the same structure misses its bound
    // badly — the fabrication-quality floor the paper's Section 7
    // caveat implies.
    const Weibull main(10.0, 12.0);
    const BathtubModel mix = BathtubModel::withInfantMortality(main, 0.4);
    const arch::LifetimeSampler sampler = [&](Rng &rng) {
        return mix.sample(rng);
    };
    const sim::MonteCarlo engine(4, 5000);
    const auto ci = engine.estimateProbability([&](Rng &rng) {
        return arch::sampleParallelSurvivedAccesses(sampler, 60, 30,
                                                    rng) >= 9;
    });
    EXPECT_LT(ci.estimate, 0.5);
}

TEST(GenericSampler, MatchesFactoryPath)
{
    // The std::function overload and the DeviceFactory overload must
    // produce identical draws for the same seed.
    const DeviceFactory factory({10.0, 8.0}, ProcessVariation::none());
    const arch::LifetimeSampler sampler = [&](Rng &rng) {
        return factory.sampleLifetime(rng);
    };
    for (uint64_t seed = 0; seed < 20; ++seed) {
        Rng a(seed);
        Rng b(seed);
        EXPECT_EQ(arch::sampleParallelSurvivedAccesses(factory, 40, 4, a),
                  arch::sampleParallelSurvivedAccesses(sampler, 40, 4, b));
    }
}

} // namespace
} // namespace lemons::wearout
