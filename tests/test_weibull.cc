/**
 * @file
 * Unit and property tests for the Weibull wearout model (paper Sec 2.2,
 * Figure 1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/empirical.h"
#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::wearout {
namespace {

TEST(Weibull, RejectsBadParameters)
{
    EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(Weibull(-1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(Weibull(1.0, -2.0), std::invalid_argument);
}

TEST(Weibull, BetaOneIsExponential)
{
    // Weibull(alpha, 1) is Exponential(1/alpha).
    const Weibull w(10.0, 1.0);
    EXPECT_NEAR(w.reliability(10.0), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(w.cdf(10.0), 1.0 - std::exp(-1.0), 1e-12);
    EXPECT_NEAR(w.pdf(0.0), 0.1, 1e-12);
    EXPECT_NEAR(w.mttf(), 10.0, 1e-9);
}

TEST(Weibull, ReliabilityAtAlphaIsEOverMinusOne)
{
    // R(alpha) = 1/e for every shape (Figure 1 curves all cross here).
    for (double beta : {1.0, 6.0, 12.0})
        EXPECT_NEAR(Weibull(1e6, beta).reliability(1e6), std::exp(-1.0),
                    1e-12)
            << "beta = " << beta;
}

TEST(Weibull, CdfPlusReliabilityIsOne)
{
    const Weibull w(5.0, 3.0);
    for (double x : {0.1, 1.0, 3.0, 5.0, 8.0, 20.0})
        EXPECT_NEAR(w.cdf(x) + w.reliability(x), 1.0, 1e-12);
}

TEST(Weibull, ReliabilityIsMonotoneDecreasing)
{
    const Weibull w(14.0, 8.0);
    double prev = 1.0;
    for (int t = 1; t <= 40; ++t) {
        const double r = w.reliability(t);
        EXPECT_LE(r, prev);
        prev = r;
    }
}

TEST(Weibull, LargerBetaSharpensDegradation)
{
    // At 0.8 alpha, high-beta devices are more reliable; at 1.2 alpha,
    // less. That is the "tight wearout bounds" property the paper
    // exploits (Figure 1).
    const Weibull loose(10.0, 1.0);
    const Weibull tight(10.0, 12.0);
    EXPECT_GT(tight.reliability(8.0), loose.reliability(8.0));
    EXPECT_LT(tight.reliability(12.0), loose.reliability(12.0));
}

TEST(Weibull, PdfIntegratesToOne)
{
    const Weibull w(7.0, 2.5);
    double integral = 0.0;
    const double dx = 0.001;
    for (double x = 0.0; x < 40.0; x += dx)
        integral += w.pdf(x + dx / 2) * dx;
    EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(Weibull, PdfMatchesCdfDerivative)
{
    const Weibull w(14.0, 8.0);
    const double h = 1e-6;
    for (double x : {5.0, 10.0, 14.0, 18.0}) {
        const double numeric = (w.cdf(x + h) - w.cdf(x - h)) / (2 * h);
        EXPECT_NEAR(w.pdf(x), numeric, 1e-4 * std::max(1.0, w.pdf(x)));
    }
}

TEST(Weibull, QuantileInvertsCdf)
{
    const Weibull w(20.0, 12.0);
    for (double p : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99})
        EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-10) << "p = " << p;
}

TEST(Weibull, QuantileRejectsOne)
{
    EXPECT_THROW(Weibull(1.0, 1.0).quantile(1.0), std::invalid_argument);
}

TEST(Weibull, LogReliabilityStableDeepInTail)
{
    const Weibull w(14.0, 8.0);
    // At x = 40, (40/14)^8 ~ 4467: reliability underflows but its log
    // must stay exact.
    EXPECT_EQ(w.reliability(40.0), 0.0);
    EXPECT_NEAR(w.logReliability(40.0), -std::pow(40.0 / 14.0, 8.0), 1e-6);
}

TEST(Weibull, HazardIncreasesForBetaAboveOne)
{
    const Weibull w(10.0, 8.0);
    EXPECT_LT(w.hazard(5.0), w.hazard(10.0));
    EXPECT_LT(w.hazard(10.0), w.hazard(15.0));
}

TEST(Weibull, MttfMatchesSampleMean)
{
    const Weibull w(14.0, 8.0);
    Rng rng(99);
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        sum += w.sample(rng);
    EXPECT_NEAR(sum / trials, w.mttf(), 0.02);
}

TEST(Weibull, SampleDistributionMatchesCdf)
{
    const Weibull w(10.0, 3.0);
    Rng rng(7);
    const sim::SurvivalCurve curve(w.sampleMany(rng, 50000));
    const double ks =
        curve.ksDistance([&](double x) { return w.cdf(x); });
    // KS critical value at 1 % for n = 50,000 is ~0.0073.
    EXPECT_LT(ks, 0.0073);
}

TEST(Weibull, SamplesAreNonNegative)
{
    const Weibull w(1.0, 0.5);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(w.sample(rng), 0.0);
}

TEST(WeibullFit, RecoversGeneratingParameters)
{
    const Weibull truth(14.0, 8.0);
    Rng rng(12345);
    const Weibull fitted = Weibull::fit(truth.sampleMany(rng, 20000));
    EXPECT_NEAR(fitted.alpha(), 14.0, 0.15);
    EXPECT_NEAR(fitted.beta(), 8.0, 0.25);
}

TEST(WeibullFit, RecoversLowShape)
{
    const Weibull truth(10.0, 1.0);
    Rng rng(777);
    const Weibull fitted = Weibull::fit(truth.sampleMany(rng, 20000));
    EXPECT_NEAR(fitted.alpha(), 10.0, 0.3);
    EXPECT_NEAR(fitted.beta(), 1.0, 0.05);
}

TEST(WeibullFit, RejectsDegenerateInput)
{
    EXPECT_THROW(Weibull::fit({1.0}), std::invalid_argument);
    EXPECT_THROW(Weibull::fit({1.0, -2.0}), std::invalid_argument);
    EXPECT_THROW(Weibull::fit({1.0, 0.0}), std::invalid_argument);
}

TEST(Weibull, LifetimeVarianceMatchesSamples)
{
    const Weibull w(10.0, 2.0);
    Rng rng(55);
    double sum = 0.0, sumSq = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i) {
        const double x = w.sample(rng);
        sum += x;
        sumSq += x * x;
    }
    const double mean = sum / trials;
    const double var = sumSq / trials - mean * mean;
    EXPECT_NEAR(var, w.lifetimeVariance(), 0.02 * w.lifetimeVariance());
}

} // namespace
} // namespace lemons::wearout
