/**
 * @file
 * Cost-model tests against the paper's quoted numbers (Table 1 area
 * methodology, Fig 10 density, Section 6.5.2 latency/energy).
 */

#include <gtest/gtest.h>

#include "arch/cost_model.h"

namespace lemons::arch {
namespace {

TEST(CostModel, Figure10TreeDensities)
{
    // Fig 10 reports trees per mm^2 for H = 2..11:
    // 5e6, 2e6, 6e5, 2e5, 1e5, 4e4, 2e4, 9e3, 4e3, 2e3.
    const CostModel model;
    const double expected[] = {5e6, 2e6, 6e5, 2e5, 1e5,
                               4e4, 2e4, 9e3, 4e3, 2e3};
    for (unsigned h = 2; h <= 11; ++h) {
        const double actual =
            static_cast<double>(model.treesPerMm2(h));
        const double paper = expected[h - 2];
        // The figure rounds to one significant digit; allow 2x band.
        EXPECT_GT(actual, paper / 2.0) << "H = " << h;
        EXPECT_LT(actual, paper * 2.0) << "H = " << h;
    }
}

TEST(CostModel, PaperPadCountExample)
{
    // Section 6.5.1: H = 4, N = 128 -> ~4,687 pads per mm^2.
    const CostModel model;
    const uint64_t pads = model.padsPerMm2(4, 128);
    EXPECT_GT(pads, 4200u);
    EXPECT_LT(pads, 5200u);
}

TEST(CostModel, PaperLatencyExample)
{
    // Section 6.5.2: path 0.00512 ms + read 0.08 ms = 0.08512 ms.
    const CostModel model;
    EXPECT_NEAR(model.padRetrievalLatencyMs(4, 128), 0.08512, 1e-6);
}

TEST(CostModel, PaperEnergyExample)
{
    // Section 6.5.2: 5.12e-18 J worst case on the path.
    const CostModel model;
    EXPECT_NEAR(model.padRetrievalEnergyJ(4, 128), 5.12e-18, 1e-21);
}

TEST(CostModel, ConnectionAreaScalesLinearly)
{
    const CostModel model;
    const double one = model.connectionAreaMm2(1);
    EXPECT_NEAR(model.connectionAreaMm2(1000000), 1e6 * one, 1e-12);
    // 100 nm^2 contact + 1 nm^2 spacing per switch.
    EXPECT_NEAR(one, 101.0 * 1e-12, 1e-18);
}

TEST(CostModel, PaperAreaMagnitudeTable1)
{
    // Table 1 without encoding, (alpha, beta) = (10.51, 16):
    // 1.27e-4 mm^2, which at ~100 nm^2/switch is ~1.26e6 switches.
    const CostModel model;
    const double area = model.connectionAreaMm2(1'257'000);
    EXPECT_NEAR(area, 1.27e-4, 0.2e-4);
}

TEST(CostModel, EncodedAreaIncludesComponentKeyStorage)
{
    const CostModel model;
    const double bare = model.connectionAreaMm2(1000);
    const double encoded =
        model.encodedConnectionAreaMm2(1000, 100, 10, 10);
    EXPECT_GT(encoded, bare);
    // RS-chunked components: 256 * 100/10 bits per copy, 10 copies,
    // 50 nm^2 per bit = 1.28e6 nm^2 extra.
    EXPECT_NEAR(encoded - bare, 1.28e6 * 1e-12, 1e-10);
}

TEST(CostModel, EncodedAreaRejectsZeroThreshold)
{
    EXPECT_THROW(CostModel().encodedConnectionAreaMm2(10, 10, 0, 1),
                 std::invalid_argument);
}

TEST(CostModel, AccessEnergyMatchesPaperExample)
{
    // Section 4.3.2: 141-wide structure -> 1.41e-18 J per access.
    const CostModel model;
    EXPECT_NEAR(model.accessEnergyJ(141), 1.41e-18, 1e-24);
}

TEST(CostModel, AccessLatencyIsOneSwitchDelay)
{
    const CostModel model;
    EXPECT_DOUBLE_EQ(model.accessLatencyNs(), 10.0);
}

TEST(CostModel, TreeAreaDoublesPerLevelAsymptotically)
{
    const CostModel model;
    // Leaves double with each level and registers dominate, so the
    // ratio approaches 2 (h+1)/h as strings also lengthen with H.
    for (unsigned h = 3; h <= 10; ++h) {
        const double ratio = model.decisionTreeAreaMm2(h + 1) /
                             model.decisionTreeAreaMm2(h);
        EXPECT_GT(ratio, 2.0) << "H = " << h;
        EXPECT_LT(ratio, 2.0 * (h + 1.0) / h + 0.01) << "H = " << h;
    }
}

TEST(CostModel, CustomTechnologyParameters)
{
    TechnologyParams tech;
    tech.contactAreaNm2 = 200.0;
    tech.switchEnergyJ = 2e-20;
    const CostModel model(tech);
    EXPECT_NEAR(model.accessEnergyJ(10), 2e-19, 1e-26);
    EXPECT_GT(model.connectionAreaMm2(100),
              CostModel().connectionAreaMm2(100));
}

TEST(CostModel, RejectsBadArguments)
{
    const CostModel model;
    EXPECT_THROW(model.decisionTreeAreaMm2(0), std::invalid_argument);
    EXPECT_THROW(model.padsPerMm2(4, 0), std::invalid_argument);
}

} // namespace
} // namespace lemons::arch
