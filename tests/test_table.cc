/**
 * @file
 * Unit tests for the ASCII table renderer and number formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace lemons {
namespace {

TEST(Format, General)
{
    EXPECT_EQ(formatGeneral(1.5), "1.5");
    EXPECT_EQ(formatGeneral(0.25, 2), "0.25");
    EXPECT_EQ(formatGeneral(1234567.0, 3), "1.23e+06");
}

TEST(Format, Scientific)
{
    EXPECT_EQ(formatSci(12345.0, 2), "1.23e+04");
    EXPECT_EQ(formatSci(0.00123, 1), "1.2e-03");
}

TEST(Format, CountWithSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(91250), "91,250");
    EXPECT_EQ(formatCount(4000000000ULL), "4,000,000,000");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"alpha", "count"});
    t.addRow({"14", "800000"});
    t.addRow({"20", "9"});
    std::ostringstream out;
    t.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("800000"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(text.find("---"), std::string::npos);
    // Four lines: header, rule, two rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, RowCountTracksRows)
{
    Table t({"x"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), std::invalid_argument);
}

} // namespace
} // namespace lemons
