/**
 * @file
 * Cross-module consistency checks: independent implementations of the
 * same quantity must agree (two password models at the shared paper
 * anchors, analytic vs layout-derived areas, solver caps, Poisson
 * branch boundary, and the two Shamir fields on identical semantics).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/cost_model.h"
#include "arch/htree.h"
#include "core/design_solver.h"
#include "crypto/guess_curve.h"
#include "crypto/password_model.h"
#include "shamir/shamir.h"
#include "shamir/shamir16.h"
#include "sim/workload.h"
#include "util/stats.h"

namespace lemons {
namespace {

TEST(CrossConsistency, PasswordModelsAgreeAtPaperAnchors)
{
    // The power-law PasswordModel and the piecewise EmpiricalGuessCurve
    // are independently anchored at the paper's quoted points; they
    // must agree there exactly and stay within a small band between.
    const crypto::PasswordModel powerLaw;
    const auto curve = crypto::EmpiricalGuessCurve::blaseUr8Char4Class();
    EXPECT_NEAR(powerLaw.crackedFraction(1e5),
                curve.crackedFraction(1e5), 1e-12);
    EXPECT_NEAR(powerLaw.crackedFraction(2e5),
                curve.crackedFraction(2e5), 1e-12);
    for (double g = 1.1e5; g < 2e5; g += 1e4) {
        EXPECT_NEAR(powerLaw.crackedFraction(g), curve.crackedFraction(g),
                    0.1 * powerLaw.crackedFraction(g))
            << "g = " << g;
    }
}

TEST(CrossConsistency, LayoutAndCostModelSwitchAreasMatchScale)
{
    // The closed-form cost model charges ~101 nm^2 per switch; the
    // H-tree layout at an 11 nm leaf pitch spends 121 nm^2 per *leaf*
    // (the internal nodes ride along the wiring channels). The two
    // must stay within a small constant factor at every height.
    const arch::CostModel model;
    for (unsigned h = 2; h <= 12; ++h) {
        const arch::HTreeLayout layout(h, 11.0);
        const double layoutArea = layout.areaNm2();
        const double modelArea =
            101.0 * static_cast<double>(layout.nodeCount());
        const double ratio = layoutArea / modelArea;
        EXPECT_GT(ratio, 0.4) << "H = " << h;
        EXPECT_LT(ratio, 1.5) << "H = " << h;
    }
}

TEST(CrossConsistency, SolverRespectsMaxWidthCap)
{
    core::DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    request.maxWidth = 100; // below the 175-wide optimum
    const core::Design d = core::DesignSolver(request).solve();
    if (d.feasible) {
        EXPECT_LE(d.width, 100u);
    }
}

TEST(CrossConsistency, SolverRespectsMaxPerCopyBound)
{
    // (14, 8, k=10%) is only feasible at t = 15 — the per-device
    // survival must straddle the 10 % fraction between t and t+1.
    core::DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;

    request.maxPerCopyBound = 14; // excludes the only feasible t
    EXPECT_FALSE(core::DesignSolver(request).solve().feasible);

    request.maxPerCopyBound = 25; // generous cap: same as default
    const core::Design capped = core::DesignSolver(request).solve();
    request.maxPerCopyBound = 0;
    const core::Design free = core::DesignSolver(request).solve();
    ASSERT_TRUE(capped.feasible);
    EXPECT_EQ(capped.totalDevices, free.totalDevices);
    EXPECT_EQ(capped.perCopyBound, 15u);
}

TEST(CrossConsistency, PoissonBranchesAgreeAtTheBoundary)
{
    // The exact (Knuth) branch below mean 64 and the normal
    // approximation above must produce statistically indistinguishable
    // moments near the switch-over.
    Rng rngLow(1);
    Rng rngHigh(1);
    RunningStats low, high;
    for (int i = 0; i < 200000; ++i) {
        low.add(static_cast<double>(sim::poissonSample(rngLow, 63.9)));
        high.add(static_cast<double>(sim::poissonSample(rngHigh, 64.1)));
    }
    EXPECT_NEAR(low.mean(), 63.9, 0.15);
    EXPECT_NEAR(high.mean(), 64.1, 0.15);
    EXPECT_NEAR(low.variance(), 63.9, 1.5);
    EXPECT_NEAR(high.variance(), 64.1, 1.5);
}

TEST(CrossConsistency, NarrowAndWideShamirAgreeOnSemantics)
{
    // For n <= 255 both fields implement the same contract: any k
    // shares reconstruct, k-1 do not (statistically — here just the
    // reconstruction side on identical inputs).
    Rng rng(7);
    std::vector<uint8_t> secret(20);
    for (auto &b : secret)
        b = static_cast<uint8_t>(rng.nextBelow(256));

    const shamir::Scheme narrow(5, 12);
    const shamir::WideScheme wide(5, 12);
    auto narrowShares = narrow.split(secret, rng);
    auto wideShares = wide.split(secret, rng);
    narrowShares.resize(5);
    wideShares.resize(5);
    const auto fromNarrow = narrow.combine(narrowShares);
    const auto fromWide = wide.combine(wideShares, secret.size());
    ASSERT_TRUE(fromNarrow.has_value());
    ASSERT_TRUE(fromWide.has_value());
    EXPECT_EQ(*fromNarrow, secret);
    EXPECT_EQ(*fromWide, secret);
}

TEST(CrossConsistency, ExpectedOvershootMatchesDirectSummation)
{
    // The solver's expectedOvershoot is a truncated sum of structure
    // reliabilities; recompute it directly.
    core::DesignRequest request;
    request.device = {14.0, 8.0};
    request.legitimateAccessBound = 91250;
    request.kFraction = 0.1;
    const core::DesignSolver solver(request);
    const uint64_t n = 175, k = 18, t = 15;
    double direct = 0.0;
    for (uint64_t j = t + 1; j <= t + 60; ++j) {
        direct += solver.copyReliability(n, k, static_cast<double>(j));
    }
    EXPECT_NEAR(solver.expectedOvershoot(n, k, t), direct, 1e-9);
}

} // namespace
} // namespace lemons
