file(REMOVE_RECURSE
  "CMakeFiles/field_provisioning.dir/field_provisioning.cpp.o"
  "CMakeFiles/field_provisioning.dir/field_provisioning.cpp.o.d"
  "field_provisioning"
  "field_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
