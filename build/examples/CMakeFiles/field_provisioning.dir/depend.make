# Empty dependencies file for field_provisioning.
# This may be replaced when dependencies are built.
