file(REMOVE_RECURSE
  "CMakeFiles/forward_secrecy_archive.dir/forward_secrecy_archive.cpp.o"
  "CMakeFiles/forward_secrecy_archive.dir/forward_secrecy_archive.cpp.o.d"
  "forward_secrecy_archive"
  "forward_secrecy_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_secrecy_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
