# Empty dependencies file for forward_secrecy_archive.
# This may be replaced when dependencies are built.
