file(REMOVE_RECURSE
  "CMakeFiles/one_time_pad_messaging.dir/one_time_pad_messaging.cpp.o"
  "CMakeFiles/one_time_pad_messaging.dir/one_time_pad_messaging.cpp.o.d"
  "one_time_pad_messaging"
  "one_time_pad_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_time_pad_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
