# Empty compiler generated dependencies file for one_time_pad_messaging.
# This may be replaced when dependencies are built.
