file(REMOVE_RECURSE
  "CMakeFiles/targeting_mission.dir/targeting_mission.cpp.o"
  "CMakeFiles/targeting_mission.dir/targeting_mission.cpp.o.d"
  "targeting_mission"
  "targeting_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targeting_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
