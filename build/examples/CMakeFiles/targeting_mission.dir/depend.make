# Empty dependencies file for targeting_mission.
# This may be replaced when dependencies are built.
