file(REMOVE_RECURSE
  "CMakeFiles/smartphone_unlock.dir/smartphone_unlock.cpp.o"
  "CMakeFiles/smartphone_unlock.dir/smartphone_unlock.cpp.o.d"
  "smartphone_unlock"
  "smartphone_unlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartphone_unlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
