# Empty compiler generated dependencies file for smartphone_unlock.
# This may be replaced when dependencies are built.
