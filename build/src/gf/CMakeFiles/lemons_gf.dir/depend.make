# Empty dependencies file for lemons_gf.
# This may be replaced when dependencies are built.
