file(REMOVE_RECURSE
  "CMakeFiles/lemons_gf.dir/gf256.cc.o"
  "CMakeFiles/lemons_gf.dir/gf256.cc.o.d"
  "CMakeFiles/lemons_gf.dir/gf65536.cc.o"
  "CMakeFiles/lemons_gf.dir/gf65536.cc.o.d"
  "CMakeFiles/lemons_gf.dir/poly.cc.o"
  "CMakeFiles/lemons_gf.dir/poly.cc.o.d"
  "liblemons_gf.a"
  "liblemons_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
