file(REMOVE_RECURSE
  "liblemons_gf.a"
)
