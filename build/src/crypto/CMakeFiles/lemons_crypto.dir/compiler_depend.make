# Empty compiler generated dependencies file for lemons_crypto.
# This may be replaced when dependencies are built.
