file(REMOVE_RECURSE
  "CMakeFiles/lemons_crypto.dir/guess_curve.cc.o"
  "CMakeFiles/lemons_crypto.dir/guess_curve.cc.o.d"
  "CMakeFiles/lemons_crypto.dir/hmac.cc.o"
  "CMakeFiles/lemons_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/lemons_crypto.dir/otp.cc.o"
  "CMakeFiles/lemons_crypto.dir/otp.cc.o.d"
  "CMakeFiles/lemons_crypto.dir/password_model.cc.o"
  "CMakeFiles/lemons_crypto.dir/password_model.cc.o.d"
  "CMakeFiles/lemons_crypto.dir/sha256.cc.o"
  "CMakeFiles/lemons_crypto.dir/sha256.cc.o.d"
  "liblemons_crypto.a"
  "liblemons_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
