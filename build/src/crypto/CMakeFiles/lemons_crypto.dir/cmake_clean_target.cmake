file(REMOVE_RECURSE
  "liblemons_crypto.a"
)
