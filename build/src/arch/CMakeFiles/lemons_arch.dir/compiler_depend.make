# Empty compiler generated dependencies file for lemons_arch.
# This may be replaced when dependencies are built.
