file(REMOVE_RECURSE
  "liblemons_arch.a"
)
