
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cost_model.cc" "src/arch/CMakeFiles/lemons_arch.dir/cost_model.cc.o" "gcc" "src/arch/CMakeFiles/lemons_arch.dir/cost_model.cc.o.d"
  "/root/repo/src/arch/htree.cc" "src/arch/CMakeFiles/lemons_arch.dir/htree.cc.o" "gcc" "src/arch/CMakeFiles/lemons_arch.dir/htree.cc.o.d"
  "/root/repo/src/arch/share_store.cc" "src/arch/CMakeFiles/lemons_arch.dir/share_store.cc.o" "gcc" "src/arch/CMakeFiles/lemons_arch.dir/share_store.cc.o.d"
  "/root/repo/src/arch/shift_register.cc" "src/arch/CMakeFiles/lemons_arch.dir/shift_register.cc.o" "gcc" "src/arch/CMakeFiles/lemons_arch.dir/shift_register.cc.o.d"
  "/root/repo/src/arch/structures.cc" "src/arch/CMakeFiles/lemons_arch.dir/structures.cc.o" "gcc" "src/arch/CMakeFiles/lemons_arch.dir/structures.cc.o.d"
  "/root/repo/src/arch/structures_sim.cc" "src/arch/CMakeFiles/lemons_arch.dir/structures_sim.cc.o" "gcc" "src/arch/CMakeFiles/lemons_arch.dir/structures_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/lemons_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/wearout/CMakeFiles/lemons_wearout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lemons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
