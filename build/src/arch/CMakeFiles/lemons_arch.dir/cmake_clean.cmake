file(REMOVE_RECURSE
  "CMakeFiles/lemons_arch.dir/cost_model.cc.o"
  "CMakeFiles/lemons_arch.dir/cost_model.cc.o.d"
  "CMakeFiles/lemons_arch.dir/htree.cc.o"
  "CMakeFiles/lemons_arch.dir/htree.cc.o.d"
  "CMakeFiles/lemons_arch.dir/share_store.cc.o"
  "CMakeFiles/lemons_arch.dir/share_store.cc.o.d"
  "CMakeFiles/lemons_arch.dir/shift_register.cc.o"
  "CMakeFiles/lemons_arch.dir/shift_register.cc.o.d"
  "CMakeFiles/lemons_arch.dir/structures.cc.o"
  "CMakeFiles/lemons_arch.dir/structures.cc.o.d"
  "CMakeFiles/lemons_arch.dir/structures_sim.cc.o"
  "CMakeFiles/lemons_arch.dir/structures_sim.cc.o.d"
  "liblemons_arch.a"
  "liblemons_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
