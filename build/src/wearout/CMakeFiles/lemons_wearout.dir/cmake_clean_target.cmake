file(REMOVE_RECURSE
  "liblemons_wearout.a"
)
