# Empty dependencies file for lemons_wearout.
# This may be replaced when dependencies are built.
