file(REMOVE_RECURSE
  "CMakeFiles/lemons_wearout.dir/device.cc.o"
  "CMakeFiles/lemons_wearout.dir/device.cc.o.d"
  "CMakeFiles/lemons_wearout.dir/environment.cc.o"
  "CMakeFiles/lemons_wearout.dir/environment.cc.o.d"
  "CMakeFiles/lemons_wearout.dir/mixture.cc.o"
  "CMakeFiles/lemons_wearout.dir/mixture.cc.o.d"
  "CMakeFiles/lemons_wearout.dir/population.cc.o"
  "CMakeFiles/lemons_wearout.dir/population.cc.o.d"
  "CMakeFiles/lemons_wearout.dir/weibull.cc.o"
  "CMakeFiles/lemons_wearout.dir/weibull.cc.o.d"
  "liblemons_wearout.a"
  "liblemons_wearout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_wearout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
