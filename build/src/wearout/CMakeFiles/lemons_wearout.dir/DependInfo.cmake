
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wearout/device.cc" "src/wearout/CMakeFiles/lemons_wearout.dir/device.cc.o" "gcc" "src/wearout/CMakeFiles/lemons_wearout.dir/device.cc.o.d"
  "/root/repo/src/wearout/environment.cc" "src/wearout/CMakeFiles/lemons_wearout.dir/environment.cc.o" "gcc" "src/wearout/CMakeFiles/lemons_wearout.dir/environment.cc.o.d"
  "/root/repo/src/wearout/mixture.cc" "src/wearout/CMakeFiles/lemons_wearout.dir/mixture.cc.o" "gcc" "src/wearout/CMakeFiles/lemons_wearout.dir/mixture.cc.o.d"
  "/root/repo/src/wearout/population.cc" "src/wearout/CMakeFiles/lemons_wearout.dir/population.cc.o" "gcc" "src/wearout/CMakeFiles/lemons_wearout.dir/population.cc.o.d"
  "/root/repo/src/wearout/weibull.cc" "src/wearout/CMakeFiles/lemons_wearout.dir/weibull.cc.o" "gcc" "src/wearout/CMakeFiles/lemons_wearout.dir/weibull.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lemons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
