file(REMOVE_RECURSE
  "liblemons_rs.a"
)
