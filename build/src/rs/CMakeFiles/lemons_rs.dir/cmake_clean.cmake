file(REMOVE_RECURSE
  "CMakeFiles/lemons_rs.dir/classic_rs.cc.o"
  "CMakeFiles/lemons_rs.dir/classic_rs.cc.o.d"
  "CMakeFiles/lemons_rs.dir/reed_solomon.cc.o"
  "CMakeFiles/lemons_rs.dir/reed_solomon.cc.o.d"
  "liblemons_rs.a"
  "liblemons_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
