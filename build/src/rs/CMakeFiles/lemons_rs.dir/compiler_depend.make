# Empty compiler generated dependencies file for lemons_rs.
# This may be replaced when dependencies are built.
