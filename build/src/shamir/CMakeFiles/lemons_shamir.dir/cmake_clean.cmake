file(REMOVE_RECURSE
  "CMakeFiles/lemons_shamir.dir/shamir.cc.o"
  "CMakeFiles/lemons_shamir.dir/shamir.cc.o.d"
  "CMakeFiles/lemons_shamir.dir/shamir16.cc.o"
  "CMakeFiles/lemons_shamir.dir/shamir16.cc.o.d"
  "liblemons_shamir.a"
  "liblemons_shamir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_shamir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
