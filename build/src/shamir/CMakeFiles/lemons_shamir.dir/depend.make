# Empty dependencies file for lemons_shamir.
# This may be replaced when dependencies are built.
