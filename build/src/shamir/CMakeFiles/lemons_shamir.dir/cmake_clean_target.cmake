file(REMOVE_RECURSE
  "liblemons_shamir.a"
)
