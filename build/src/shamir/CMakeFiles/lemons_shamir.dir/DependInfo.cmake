
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shamir/shamir.cc" "src/shamir/CMakeFiles/lemons_shamir.dir/shamir.cc.o" "gcc" "src/shamir/CMakeFiles/lemons_shamir.dir/shamir.cc.o.d"
  "/root/repo/src/shamir/shamir16.cc" "src/shamir/CMakeFiles/lemons_shamir.dir/shamir16.cc.o" "gcc" "src/shamir/CMakeFiles/lemons_shamir.dir/shamir16.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/lemons_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lemons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
