file(REMOVE_RECURSE
  "liblemons_util.a"
)
