# Empty compiler generated dependencies file for lemons_util.
# This may be replaced when dependencies are built.
