file(REMOVE_RECURSE
  "CMakeFiles/lemons_util.dir/csv.cc.o"
  "CMakeFiles/lemons_util.dir/csv.cc.o.d"
  "CMakeFiles/lemons_util.dir/histogram.cc.o"
  "CMakeFiles/lemons_util.dir/histogram.cc.o.d"
  "CMakeFiles/lemons_util.dir/math.cc.o"
  "CMakeFiles/lemons_util.dir/math.cc.o.d"
  "CMakeFiles/lemons_util.dir/rng.cc.o"
  "CMakeFiles/lemons_util.dir/rng.cc.o.d"
  "CMakeFiles/lemons_util.dir/stats.cc.o"
  "CMakeFiles/lemons_util.dir/stats.cc.o.d"
  "CMakeFiles/lemons_util.dir/table.cc.o"
  "CMakeFiles/lemons_util.dir/table.cc.o.d"
  "liblemons_util.a"
  "liblemons_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
