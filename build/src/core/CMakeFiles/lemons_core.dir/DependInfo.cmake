
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cc" "src/core/CMakeFiles/lemons_core.dir/calibration.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/calibration.cc.o.d"
  "/root/repo/src/core/connection.cc" "src/core/CMakeFiles/lemons_core.dir/connection.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/connection.cc.o.d"
  "/root/repo/src/core/decision_tree.cc" "src/core/CMakeFiles/lemons_core.dir/decision_tree.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/decision_tree.cc.o.d"
  "/root/repo/src/core/design_solver.cc" "src/core/CMakeFiles/lemons_core.dir/design_solver.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/design_solver.cc.o.d"
  "/root/repo/src/core/explorer.cc" "src/core/CMakeFiles/lemons_core.dir/explorer.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/explorer.cc.o.d"
  "/root/repo/src/core/forward_secrecy.cc" "src/core/CMakeFiles/lemons_core.dir/forward_secrecy.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/forward_secrecy.cc.o.d"
  "/root/repo/src/core/gate.cc" "src/core/CMakeFiles/lemons_core.dir/gate.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/gate.cc.o.d"
  "/root/repo/src/core/mway.cc" "src/core/CMakeFiles/lemons_core.dir/mway.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/mway.cc.o.d"
  "/root/repo/src/core/otp_chip.cc" "src/core/CMakeFiles/lemons_core.dir/otp_chip.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/otp_chip.cc.o.d"
  "/root/repo/src/core/programmable_gate.cc" "src/core/CMakeFiles/lemons_core.dir/programmable_gate.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/programmable_gate.cc.o.d"
  "/root/repo/src/core/software_baseline.cc" "src/core/CMakeFiles/lemons_core.dir/software_baseline.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/software_baseline.cc.o.d"
  "/root/repo/src/core/targeting.cc" "src/core/CMakeFiles/lemons_core.dir/targeting.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/targeting.cc.o.d"
  "/root/repo/src/core/usage_bounds.cc" "src/core/CMakeFiles/lemons_core.dir/usage_bounds.cc.o" "gcc" "src/core/CMakeFiles/lemons_core.dir/usage_bounds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/lemons_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lemons_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/lemons_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/shamir/CMakeFiles/lemons_shamir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lemons_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wearout/CMakeFiles/lemons_wearout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lemons_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/lemons_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/lemons_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
