# Empty compiler generated dependencies file for lemons_core.
# This may be replaced when dependencies are built.
