file(REMOVE_RECURSE
  "liblemons_core.a"
)
