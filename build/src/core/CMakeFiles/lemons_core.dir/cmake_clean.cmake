file(REMOVE_RECURSE
  "CMakeFiles/lemons_core.dir/calibration.cc.o"
  "CMakeFiles/lemons_core.dir/calibration.cc.o.d"
  "CMakeFiles/lemons_core.dir/connection.cc.o"
  "CMakeFiles/lemons_core.dir/connection.cc.o.d"
  "CMakeFiles/lemons_core.dir/decision_tree.cc.o"
  "CMakeFiles/lemons_core.dir/decision_tree.cc.o.d"
  "CMakeFiles/lemons_core.dir/design_solver.cc.o"
  "CMakeFiles/lemons_core.dir/design_solver.cc.o.d"
  "CMakeFiles/lemons_core.dir/explorer.cc.o"
  "CMakeFiles/lemons_core.dir/explorer.cc.o.d"
  "CMakeFiles/lemons_core.dir/forward_secrecy.cc.o"
  "CMakeFiles/lemons_core.dir/forward_secrecy.cc.o.d"
  "CMakeFiles/lemons_core.dir/gate.cc.o"
  "CMakeFiles/lemons_core.dir/gate.cc.o.d"
  "CMakeFiles/lemons_core.dir/mway.cc.o"
  "CMakeFiles/lemons_core.dir/mway.cc.o.d"
  "CMakeFiles/lemons_core.dir/otp_chip.cc.o"
  "CMakeFiles/lemons_core.dir/otp_chip.cc.o.d"
  "CMakeFiles/lemons_core.dir/programmable_gate.cc.o"
  "CMakeFiles/lemons_core.dir/programmable_gate.cc.o.d"
  "CMakeFiles/lemons_core.dir/software_baseline.cc.o"
  "CMakeFiles/lemons_core.dir/software_baseline.cc.o.d"
  "CMakeFiles/lemons_core.dir/targeting.cc.o"
  "CMakeFiles/lemons_core.dir/targeting.cc.o.d"
  "CMakeFiles/lemons_core.dir/usage_bounds.cc.o"
  "CMakeFiles/lemons_core.dir/usage_bounds.cc.o.d"
  "liblemons_core.a"
  "liblemons_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
