
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/empirical.cc" "src/sim/CMakeFiles/lemons_sim.dir/empirical.cc.o" "gcc" "src/sim/CMakeFiles/lemons_sim.dir/empirical.cc.o.d"
  "/root/repo/src/sim/monte_carlo.cc" "src/sim/CMakeFiles/lemons_sim.dir/monte_carlo.cc.o" "gcc" "src/sim/CMakeFiles/lemons_sim.dir/monte_carlo.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/lemons_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/lemons_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lemons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
