# Empty dependencies file for lemons_sim.
# This may be replaced when dependencies are built.
