file(REMOVE_RECURSE
  "CMakeFiles/lemons_sim.dir/empirical.cc.o"
  "CMakeFiles/lemons_sim.dir/empirical.cc.o.d"
  "CMakeFiles/lemons_sim.dir/monte_carlo.cc.o"
  "CMakeFiles/lemons_sim.dir/monte_carlo.cc.o.d"
  "CMakeFiles/lemons_sim.dir/workload.cc.o"
  "CMakeFiles/lemons_sim.dir/workload.cc.o.d"
  "liblemons_sim.a"
  "liblemons_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemons_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
