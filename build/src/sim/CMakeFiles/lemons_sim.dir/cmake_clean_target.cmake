file(REMOVE_RECURSE
  "liblemons_sim.a"
)
