# Empty dependencies file for test_programmable_gate.
# This may be replaced when dependencies are built.
