file(REMOVE_RECURSE
  "CMakeFiles/test_programmable_gate.dir/test_programmable_gate.cc.o"
  "CMakeFiles/test_programmable_gate.dir/test_programmable_gate.cc.o.d"
  "test_programmable_gate"
  "test_programmable_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_programmable_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
