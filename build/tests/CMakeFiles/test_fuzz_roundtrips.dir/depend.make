# Empty dependencies file for test_fuzz_roundtrips.
# This may be replaced when dependencies are built.
