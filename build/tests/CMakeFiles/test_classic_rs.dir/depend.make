# Empty dependencies file for test_classic_rs.
# This may be replaced when dependencies are built.
