file(REMOVE_RECURSE
  "CMakeFiles/test_classic_rs.dir/test_classic_rs.cc.o"
  "CMakeFiles/test_classic_rs.dir/test_classic_rs.cc.o.d"
  "test_classic_rs"
  "test_classic_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classic_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
