file(REMOVE_RECURSE
  "CMakeFiles/test_weibull.dir/test_weibull.cc.o"
  "CMakeFiles/test_weibull.dir/test_weibull.cc.o.d"
  "test_weibull"
  "test_weibull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
