# Empty dependencies file for test_mway.
# This may be replaced when dependencies are built.
