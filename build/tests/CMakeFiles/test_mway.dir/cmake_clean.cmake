file(REMOVE_RECURSE
  "CMakeFiles/test_mway.dir/test_mway.cc.o"
  "CMakeFiles/test_mway.dir/test_mway.cc.o.d"
  "test_mway"
  "test_mway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
