# Empty dependencies file for test_share_store.
# This may be replaced when dependencies are built.
