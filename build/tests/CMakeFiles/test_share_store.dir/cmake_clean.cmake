file(REMOVE_RECURSE
  "CMakeFiles/test_share_store.dir/test_share_store.cc.o"
  "CMakeFiles/test_share_store.dir/test_share_store.cc.o.d"
  "test_share_store"
  "test_share_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_share_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
