file(REMOVE_RECURSE
  "CMakeFiles/test_otp.dir/test_otp.cc.o"
  "CMakeFiles/test_otp.dir/test_otp.cc.o.d"
  "test_otp"
  "test_otp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
