# Empty compiler generated dependencies file for test_otp.
# This may be replaced when dependencies are built.
