file(REMOVE_RECURSE
  "CMakeFiles/test_shamir.dir/test_shamir.cc.o"
  "CMakeFiles/test_shamir.dir/test_shamir.cc.o.d"
  "test_shamir"
  "test_shamir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shamir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
