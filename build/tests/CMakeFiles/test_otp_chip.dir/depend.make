# Empty dependencies file for test_otp_chip.
# This may be replaced when dependencies are built.
