file(REMOVE_RECURSE
  "CMakeFiles/test_otp_chip.dir/test_otp_chip.cc.o"
  "CMakeFiles/test_otp_chip.dir/test_otp_chip.cc.o.d"
  "test_otp_chip"
  "test_otp_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otp_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
