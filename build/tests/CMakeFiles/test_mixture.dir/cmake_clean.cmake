file(REMOVE_RECURSE
  "CMakeFiles/test_mixture.dir/test_mixture.cc.o"
  "CMakeFiles/test_mixture.dir/test_mixture.cc.o.d"
  "test_mixture"
  "test_mixture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
