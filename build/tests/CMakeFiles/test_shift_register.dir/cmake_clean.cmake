file(REMOVE_RECURSE
  "CMakeFiles/test_shift_register.dir/test_shift_register.cc.o"
  "CMakeFiles/test_shift_register.dir/test_shift_register.cc.o.d"
  "test_shift_register"
  "test_shift_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shift_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
