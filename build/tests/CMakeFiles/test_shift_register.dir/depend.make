# Empty dependencies file for test_shift_register.
# This may be replaced when dependencies are built.
