file(REMOVE_RECURSE
  "CMakeFiles/test_design_solver.dir/test_design_solver.cc.o"
  "CMakeFiles/test_design_solver.dir/test_design_solver.cc.o.d"
  "test_design_solver"
  "test_design_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
