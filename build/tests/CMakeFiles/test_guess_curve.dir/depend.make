# Empty dependencies file for test_guess_curve.
# This may be replaced when dependencies are built.
