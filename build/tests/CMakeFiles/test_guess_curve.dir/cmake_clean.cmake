file(REMOVE_RECURSE
  "CMakeFiles/test_guess_curve.dir/test_guess_curve.cc.o"
  "CMakeFiles/test_guess_curve.dir/test_guess_curve.cc.o.d"
  "test_guess_curve"
  "test_guess_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guess_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
