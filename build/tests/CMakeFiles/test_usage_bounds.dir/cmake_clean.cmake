file(REMOVE_RECURSE
  "CMakeFiles/test_usage_bounds.dir/test_usage_bounds.cc.o"
  "CMakeFiles/test_usage_bounds.dir/test_usage_bounds.cc.o.d"
  "test_usage_bounds"
  "test_usage_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usage_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
