# Empty compiler generated dependencies file for test_usage_bounds.
# This may be replaced when dependencies are built.
