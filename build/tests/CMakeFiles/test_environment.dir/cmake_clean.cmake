file(REMOVE_RECURSE
  "CMakeFiles/test_environment.dir/test_environment.cc.o"
  "CMakeFiles/test_environment.dir/test_environment.cc.o.d"
  "test_environment"
  "test_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
