file(REMOVE_RECURSE
  "CMakeFiles/test_password_model.dir/test_password_model.cc.o"
  "CMakeFiles/test_password_model.dir/test_password_model.cc.o.d"
  "test_password_model"
  "test_password_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_password_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
