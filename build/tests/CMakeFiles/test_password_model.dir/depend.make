# Empty dependencies file for test_password_model.
# This may be replaced when dependencies are built.
