# Empty compiler generated dependencies file for test_shamir16.
# This may be replaced when dependencies are built.
