file(REMOVE_RECURSE
  "CMakeFiles/test_shamir16.dir/test_shamir16.cc.o"
  "CMakeFiles/test_shamir16.dir/test_shamir16.cc.o.d"
  "test_shamir16"
  "test_shamir16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shamir16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
