# Empty dependencies file for test_software_baseline.
# This may be replaced when dependencies are built.
