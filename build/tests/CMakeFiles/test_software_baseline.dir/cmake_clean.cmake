file(REMOVE_RECURSE
  "CMakeFiles/test_software_baseline.dir/test_software_baseline.cc.o"
  "CMakeFiles/test_software_baseline.dir/test_software_baseline.cc.o.d"
  "test_software_baseline"
  "test_software_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_software_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
