file(REMOVE_RECURSE
  "CMakeFiles/test_forward_secrecy.dir/test_forward_secrecy.cc.o"
  "CMakeFiles/test_forward_secrecy.dir/test_forward_secrecy.cc.o.d"
  "test_forward_secrecy"
  "test_forward_secrecy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forward_secrecy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
