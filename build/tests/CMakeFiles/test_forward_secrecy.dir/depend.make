# Empty dependencies file for test_forward_secrecy.
# This may be replaced when dependencies are built.
