file(REMOVE_RECURSE
  "CMakeFiles/test_gf65536.dir/test_gf65536.cc.o"
  "CMakeFiles/test_gf65536.dir/test_gf65536.cc.o.d"
  "test_gf65536"
  "test_gf65536.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf65536.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
