# Empty dependencies file for test_gf65536.
# This may be replaced when dependencies are built.
