file(REMOVE_RECURSE
  "CMakeFiles/test_targeting.dir/test_targeting.cc.o"
  "CMakeFiles/test_targeting.dir/test_targeting.cc.o.d"
  "test_targeting"
  "test_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
