# Empty dependencies file for test_targeting.
# This may be replaced when dependencies are built.
