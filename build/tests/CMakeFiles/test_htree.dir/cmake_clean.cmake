file(REMOVE_RECURSE
  "CMakeFiles/test_htree.dir/test_htree.cc.o"
  "CMakeFiles/test_htree.dir/test_htree.cc.o.d"
  "test_htree"
  "test_htree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
