# Empty compiler generated dependencies file for test_regression_figures.
# This may be replaced when dependencies are built.
