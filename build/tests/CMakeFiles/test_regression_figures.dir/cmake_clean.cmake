file(REMOVE_RECURSE
  "CMakeFiles/test_regression_figures.dir/test_regression_figures.cc.o"
  "CMakeFiles/test_regression_figures.dir/test_regression_figures.cc.o.d"
  "test_regression_figures"
  "test_regression_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regression_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
