file(REMOVE_RECURSE
  "../bench/bench_fig3_techniques"
  "../bench/bench_fig3_techniques.pdb"
  "CMakeFiles/bench_fig3_techniques.dir/bench_fig3_techniques.cc.o"
  "CMakeFiles/bench_fig3_techniques.dir/bench_fig3_techniques.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
