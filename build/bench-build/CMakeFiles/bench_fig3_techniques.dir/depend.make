# Empty dependencies file for bench_fig3_techniques.
# This may be replaced when dependencies are built.
