# Empty dependencies file for bench_baseline_bypass.
# This may be replaced when dependencies are built.
