file(REMOVE_RECURSE
  "../bench/bench_baseline_bypass"
  "../bench/bench_baseline_bypass.pdb"
  "CMakeFiles/bench_baseline_bypass.dir/bench_baseline_bypass.cc.o"
  "CMakeFiles/bench_baseline_bypass.dir/bench_baseline_bypass.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
