# Empty compiler generated dependencies file for bench_fig8_otp_kh.
# This may be replaced when dependencies are built.
