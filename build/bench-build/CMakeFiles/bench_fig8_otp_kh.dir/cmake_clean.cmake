file(REMOVE_RECURSE
  "../bench/bench_fig8_otp_kh"
  "../bench/bench_fig8_otp_kh.pdb"
  "CMakeFiles/bench_fig8_otp_kh.dir/bench_fig8_otp_kh.cc.o"
  "CMakeFiles/bench_fig8_otp_kh.dir/bench_fig8_otp_kh.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_otp_kh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
