file(REMOVE_RECURSE
  "../bench/bench_rs_shamir"
  "../bench/bench_rs_shamir.pdb"
  "CMakeFiles/bench_rs_shamir.dir/bench_rs_shamir.cc.o"
  "CMakeFiles/bench_rs_shamir.dir/bench_rs_shamir.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rs_shamir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
