# Empty dependencies file for bench_rs_shamir.
# This may be replaced when dependencies are built.
