file(REMOVE_RECURSE
  "../bench/bench_mway_replication"
  "../bench/bench_mway_replication.pdb"
  "CMakeFiles/bench_mway_replication.dir/bench_mway_replication.cc.o"
  "CMakeFiles/bench_mway_replication.dir/bench_mway_replication.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mway_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
