# Empty dependencies file for bench_mway_replication.
# This may be replaced when dependencies are built.
