file(REMOVE_RECURSE
  "../bench/bench_fig5_targeting"
  "../bench/bench_fig5_targeting.pdb"
  "CMakeFiles/bench_fig5_targeting.dir/bench_fig5_targeting.cc.o"
  "CMakeFiles/bench_fig5_targeting.dir/bench_fig5_targeting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
