file(REMOVE_RECURSE
  "../bench/bench_fig1_weibull"
  "../bench/bench_fig1_weibull.pdb"
  "CMakeFiles/bench_fig1_weibull.dir/bench_fig1_weibull.cc.o"
  "CMakeFiles/bench_fig1_weibull.dir/bench_fig1_weibull.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
