file(REMOVE_RECURSE
  "../bench/bench_attack_simulation"
  "../bench/bench_attack_simulation.pdb"
  "CMakeFiles/bench_attack_simulation.dir/bench_attack_simulation.cc.o"
  "CMakeFiles/bench_attack_simulation.dir/bench_attack_simulation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
