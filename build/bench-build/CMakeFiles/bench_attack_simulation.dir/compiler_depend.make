# Empty compiler generated dependencies file for bench_attack_simulation.
# This may be replaced when dependencies are built.
