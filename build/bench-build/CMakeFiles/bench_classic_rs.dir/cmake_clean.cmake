file(REMOVE_RECURSE
  "../bench/bench_classic_rs"
  "../bench/bench_classic_rs.pdb"
  "CMakeFiles/bench_classic_rs.dir/bench_classic_rs.cc.o"
  "CMakeFiles/bench_classic_rs.dir/bench_classic_rs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classic_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
