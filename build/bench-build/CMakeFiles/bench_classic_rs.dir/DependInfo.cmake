
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_classic_rs.cc" "bench-build/CMakeFiles/bench_classic_rs.dir/bench_classic_rs.cc.o" "gcc" "bench-build/CMakeFiles/bench_classic_rs.dir/bench_classic_rs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lemons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lemons_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/lemons_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lemons_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lemons_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/shamir/CMakeFiles/lemons_shamir.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/lemons_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/lemons_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/wearout/CMakeFiles/lemons_wearout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lemons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
