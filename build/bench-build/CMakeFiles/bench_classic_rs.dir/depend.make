# Empty dependencies file for bench_classic_rs.
# This may be replaced when dependencies are built.
