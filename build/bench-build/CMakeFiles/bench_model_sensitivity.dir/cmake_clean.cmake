file(REMOVE_RECURSE
  "../bench/bench_model_sensitivity"
  "../bench/bench_model_sensitivity.pdb"
  "CMakeFiles/bench_model_sensitivity.dir/bench_model_sensitivity.cc.o"
  "CMakeFiles/bench_model_sensitivity.dir/bench_model_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
