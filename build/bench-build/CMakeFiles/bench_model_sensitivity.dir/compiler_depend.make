# Empty compiler generated dependencies file for bench_model_sensitivity.
# This may be replaced when dependencies are built.
