# Empty dependencies file for bench_variation_ablation.
# This may be replaced when dependencies are built.
