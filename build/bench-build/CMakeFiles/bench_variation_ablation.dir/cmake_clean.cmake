file(REMOVE_RECURSE
  "../bench/bench_variation_ablation"
  "../bench/bench_variation_ablation.pdb"
  "CMakeFiles/bench_variation_ablation.dir/bench_variation_ablation.cc.o"
  "CMakeFiles/bench_variation_ablation.dir/bench_variation_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
