file(REMOVE_RECURSE
  "../bench/bench_otp_cost"
  "../bench/bench_otp_cost.pdb"
  "CMakeFiles/bench_otp_cost.dir/bench_otp_cost.cc.o"
  "CMakeFiles/bench_otp_cost.dir/bench_otp_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_otp_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
