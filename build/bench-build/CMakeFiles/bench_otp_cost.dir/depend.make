# Empty dependencies file for bench_otp_cost.
# This may be replaced when dependencies are built.
