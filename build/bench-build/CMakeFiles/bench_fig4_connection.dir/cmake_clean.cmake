file(REMOVE_RECURSE
  "../bench/bench_fig4_connection"
  "../bench/bench_fig4_connection.pdb"
  "CMakeFiles/bench_fig4_connection.dir/bench_fig4_connection.cc.o"
  "CMakeFiles/bench_fig4_connection.dir/bench_fig4_connection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_connection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
