# Empty dependencies file for bench_fig4_connection.
# This may be replaced when dependencies are built.
