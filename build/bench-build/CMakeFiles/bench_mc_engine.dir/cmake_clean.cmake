file(REMOVE_RECURSE
  "../bench/bench_mc_engine"
  "../bench/bench_mc_engine.pdb"
  "CMakeFiles/bench_mc_engine.dir/bench_mc_engine.cc.o"
  "CMakeFiles/bench_mc_engine.dir/bench_mc_engine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
