# Empty compiler generated dependencies file for bench_mc_engine.
# This may be replaced when dependencies are built.
