# Empty compiler generated dependencies file for bench_htree_layout.
# This may be replaced when dependencies are built.
