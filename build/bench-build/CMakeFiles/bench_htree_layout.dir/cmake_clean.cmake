file(REMOVE_RECURSE
  "../bench/bench_htree_layout"
  "../bench/bench_htree_layout.pdb"
  "CMakeFiles/bench_htree_layout.dir/bench_htree_layout.cc.o"
  "CMakeFiles/bench_htree_layout.dir/bench_htree_layout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_htree_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
