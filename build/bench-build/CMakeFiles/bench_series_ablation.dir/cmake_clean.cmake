file(REMOVE_RECURSE
  "../bench/bench_series_ablation"
  "../bench/bench_series_ablation.pdb"
  "CMakeFiles/bench_series_ablation.dir/bench_series_ablation.cc.o"
  "CMakeFiles/bench_series_ablation.dir/bench_series_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_series_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
