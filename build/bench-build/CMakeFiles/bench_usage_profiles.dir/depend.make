# Empty dependencies file for bench_usage_profiles.
# This may be replaced when dependencies are built.
