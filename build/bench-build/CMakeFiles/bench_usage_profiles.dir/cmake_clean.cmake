file(REMOVE_RECURSE
  "../bench/bench_usage_profiles"
  "../bench/bench_usage_profiles.pdb"
  "CMakeFiles/bench_usage_profiles.dir/bench_usage_profiles.cc.o"
  "CMakeFiles/bench_usage_profiles.dir/bench_usage_profiles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usage_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
