file(REMOVE_RECURSE
  "../bench/bench_criteria_ablation"
  "../bench/bench_criteria_ablation.pdb"
  "CMakeFiles/bench_criteria_ablation.dir/bench_criteria_ablation.cc.o"
  "CMakeFiles/bench_criteria_ablation.dir/bench_criteria_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_criteria_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
