# Empty dependencies file for bench_criteria_ablation.
# This may be replaced when dependencies are built.
